"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP-517 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the
setuptools develop path, which needs neither network nor wheel.
"""

from setuptools import setup

setup()
