"""Time and size units.

Simulated time is kept as **integer nanoseconds** throughout the package:
integers make the event queue deterministic (no floating-point tie
ambiguity) and nanosecond resolution is far below any cost the models
charge (the smallest calibrated costs are tens of nanoseconds).

Sizes are plain byte counts.  Following the paper (§5.1), bandwidth is
reported in megabytes of 10^6 bytes per second.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time: all helpers return integer nanoseconds.
# ---------------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SECOND = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds as an integer tick count."""
    return round(value)


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return round(value * SECOND)


def to_us(ticks: int) -> float:
    """Integer nanoseconds -> microseconds (float, for reporting)."""
    return ticks / US


def to_seconds(ticks: int) -> float:
    """Integer nanoseconds -> seconds (float, for reporting)."""
    return ticks / SECOND


# ---------------------------------------------------------------------------
# Sizes.  The paper uses 1 MB = 10^6 bytes for bandwidth reporting but
# binary KB for message sizes ("64 KB switch point"), so both are provided.
# ---------------------------------------------------------------------------

KB = 1024
MB_BINARY = 1024 * 1024
MB_DECIMAL = 1_000_000


def kib(value: float) -> int:
    """Binary kilobytes -> bytes (the paper's "KB")."""
    return round(value * KB)


def mib(value: float) -> int:
    """Binary megabytes -> bytes."""
    return round(value * MB_BINARY)


def bandwidth_mb_s(size_bytes: int, elapsed_ns: int) -> float:
    """Bandwidth in the paper's MB/s (10^6 bytes per second).

    ``size_bytes`` transferred in ``elapsed_ns`` simulated nanoseconds.
    Returns 0.0 for a zero-duration transfer of zero bytes.
    """
    if elapsed_ns <= 0:
        if size_bytes == 0:
            return 0.0
        raise ValueError(f"non-empty transfer with elapsed_ns={elapsed_ns}")
    return (size_bytes / MB_DECIMAL) / (elapsed_ns / SECOND)


def per_byte_ns(mb_per_s: float) -> float:
    """Serialization cost in ns/byte for a bandwidth given in MB/s (10^6)."""
    if mb_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return SECOND / (mb_per_s * MB_DECIMAL)
