"""The online MPI semantics checker (opt-in, zero-cost when disabled).

The checker is an :class:`~repro.sim.metrics.Instrumentation`-style
facade: every hook site in the stack guards with ``if checker.enabled:``
against the :data:`NULL_CHECKER` singleton, so a run with the checker off
pays one attribute load per hook and nothing else.  Enabled via
``EngineConfig(checker=True)`` or ``install_checker(engine)``, it shadows the protocol state of the whole
simulated cluster (the checker is engine-wide, exactly like the tracer)
and raises a structured :class:`~repro.errors.CheckViolation` the moment
an invariant breaks:

==================  =====================================================
``non-overtaking``  Messages of one (context, source, dest, tag) stream
                    matched out of send order (MPI 3.0 §3.5).
``rendezvous-       A REQUEST/SENDOK/RNDV packet observed out of the
handshake``         §4.2.2 three-way handshake order, or referencing an
                    unknown send/sync id.
``express-          A ch_mad wire message whose first block is not
ordering``          receive_EXPRESS or with a non-CHEAPER trailing block
                    (§4.2.1: the header drives subsequent unpacking).
``polling-send``    A registered polling thread performed a connection
                    send itself — the paper's §4.2.3 deadlock rule.
``reliable-         A duplicate or out-of-window sequence delivered past
window``            the transport's dedup, or an ack for a sequence that
                    was never sent (madeleine/reliable.py).
``finalize-leak``   Requests, unexpected messages, sync structures, gate
                    tickets or rendezvous transactions still live at
                    MPI_Finalize.
``revoked-          A message on a revoked communicator was matched to a
delivery``          receive (delivered to user code) after the revocation
                    reached that rank.
``dead-rank-leak``  A request referencing a dead rank (a posted receive
                    from it, or a rendezvous send towards it) survived to
                    MPI_Finalize — the FT layer failed to resolve it.
``rma-epoch``       A one-sided operation (Put/Get/Accumulate) issued
                    outside a fence epoch, or on a freed window
                    (MPI 3.0 §11.5: active target synchronization).
``rma-unfenced-     A fence completed at a target while an operation of
completion``        the closing epoch targeting it was still unapplied —
                    the fence's completion guarantee broke.
``registration-     Explicitly registered (pinned) memory — a window —
leak``              still registered at MPI_Finalize, or deregistration
                    of memory that was never registered.
==================  =====================================================

The RDMA rendezvous control packets (MAD_RDMA_REQ/ACK/DATA) shadow the
same three-way handshake state machine as their packetized counterparts
— the zero-copy path earns no slack from the checker.

This module is imported by :mod:`repro.sim.engine` at module level, so it
must not import anything from ``repro.sim`` / ``repro.madeleine`` /
``repro.mpi`` at module scope (the enum used by the EXPRESS check is
imported lazily).  The wait-for-graph lives in
:mod:`repro.check.waitgraph` and the fuzzing harness in
:mod:`repro.check.fuzz`, both imported only by their consumers.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CheckViolation


class NullChecker:
    """Disabled checker: every hook site sees ``enabled`` False and skips.

    The no-op methods exist so direct calls (tests, defensive code) stay
    harmless even without the ``enabled`` guard.
    """

    enabled = False
    violations: tuple = ()

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._noop

    @staticmethod
    def _noop(*_args: Any, **_kwargs: Any) -> None:
        return None


NULL_CHECKER = NullChecker()


class Checker:
    """Live per-engine protocol checker (one per simulated cluster)."""

    enabled = True

    def __init__(self, engine: Any, raise_on_violation: bool = True):
        self.engine = engine
        #: When False, violations are recorded in :attr:`violations` but
        #: the simulation keeps running (the fuzz harness uses this to
        #: collect every violation of a seed in one run).
        self.raise_on_violation = raise_on_violation
        self.violations: list[CheckViolation] = []
        # Non-overtaking: per-stream send counters, a side table mapping
        # the in-flight envelope (by identity — envelopes travel by
        # reference end-to-end) to its stream position, and per-stream
        # match counters.  Stream key: (context, src, dst, tag).
        self._sent_next: dict[tuple, int] = {}
        self._in_flight: dict[int, tuple] = {}   # id(env) -> (env, key, seq)
        self._matched_next: dict[tuple, int] = {}
        # Rendezvous handshake: send_id -> (state, sender, receiver), plus
        # the sync_id -> send_id map learned from SENDOK packets.
        self._rndv: dict[int, tuple[str, int, int]] = {}
        self._sync_to_send: dict[int, int] = {}
        # §4.2.3 polling discipline: registered polling-thread tasks.
        self._pollers: dict[Any, str] = {}
        # Reliable transport shadow window:
        # (channel_id, src_rank, dst_rank) -> next sequence expected to be
        # posted into the port's incoming queue.
        self._recv_window: dict[tuple[int, int, int], int] = {}
        #: Packets observed per MadPktType name (diagnostics).
        self.packets_seen: dict[str, int] = {}
        # Fault tolerance: ranks killed by the DeathController, and the
        # base context ids each rank has seen revoked (rank -> set).
        self.dead_ranks: set[int] = set()
        self._revoked: dict[int, set[int]] = {}
        # One-sided (RMA) shadow state: explicitly pinned regions
        # ((rank, key) -> nbytes), per-(rank, window) fence counts,
        # freed windows, and outstanding operations
        # (op_uid -> (win_id, origin, target, issue_epoch)).
        self._registrations: dict[tuple, int] = {}
        self._win_epochs: dict[tuple[int, int], int] = {}
        self._win_freed: set[tuple[int, int]] = set()
        self._rma_outstanding: dict[Any, tuple[int, int, int, int]] = {}

    # -- violation plumbing ------------------------------------------------

    def _violate(self, invariant: str, rank: int | None, details: str,
                 connection: str | None = None) -> None:
        violation = CheckViolation(invariant, rank, details,
                                   connection=connection,
                                   time=self.engine.now)
        self.violations.append(violation)
        self.engine.tracer.emit(
            "check.violation", invariant=invariant,
            rank=-1 if rank is None else rank,
            connection=connection or "", details=details,
        )
        if self.raise_on_violation:
            raise violation

    # -- non-overtaking (ADI / point2point) --------------------------------

    def on_send(self, envelope: Any, dest_world: int) -> None:
        """A message entered the wire-order stream (send gate passed)."""
        key = (envelope.context_id, envelope.source, dest_world,
               envelope.tag)
        seq = self._sent_next.get(key, 0)
        self._sent_next[key] = seq + 1
        self._in_flight[id(envelope)] = (envelope, key, seq)

    def on_match(self, envelope: Any, rank: int) -> None:
        """A message was matched to a receive (posted or unexpected)."""
        revoked = self._revoked.get(rank)
        if revoked:
            from repro.mpi.constants import (CONTEXTS_PER_COMM,
                                             FT_CONTROL_CONTEXT)
            ctx = envelope.context_id
            if ctx < FT_CONTROL_CONTEXT \
                    and ctx - (ctx % CONTEXTS_PER_COMM) in revoked:
                self._violate(
                    "revoked-delivery", rank,
                    f"message src={envelope.source} tag={envelope.tag} "
                    f"ctx={ctx} delivered to user code after rank {rank} "
                    "saw the communicator revoked")
                return
        entry = self._in_flight.pop(id(envelope), None)
        if entry is None:
            # A device that clones envelopes (none today) or a message the
            # checker never saw sent — nothing to verify.
            return
        _env, key, seq = entry
        expected = self._matched_next.get(key, 0)
        self._matched_next[key] = max(expected, seq) + 1
        if seq != expected:
            ctx, src, dst, tag = key
            self._violate(
                "non-overtaking", rank,
                f"message #{seq} of stream src={src} dst={dst} tag={tag} "
                f"ctx={ctx} matched before message #{expected}",
                connection=f"{src}->{dst}/tag{tag}",
            )

    # -- rendezvous handshake (ch_mad) -------------------------------------

    #: The RDMA rendezvous packets play the same handshake roles as the
    #: packetized ones: request, acknowledgement, data.
    _RNDV_KIND_ALIASES = {
        "MAD_RDMA_REQ_PKT": "MAD_REQUEST_PKT",
        "MAD_RDMA_ACK_PKT": "MAD_SENDOK_PKT",
        "MAD_RDMA_DATA_PKT": "MAD_RNDV_PKT",
    }

    def on_chmad_send(self, src: int, dst: int, header: Any) -> None:
        """A ch_mad packet leaves its origin (once, pre-forwarding)."""
        kind = header.pkt_type.name
        self.packets_seen[kind] = self.packets_seen.get(kind, 0) + 1
        kind = self._RNDV_KIND_ALIASES.get(kind, kind)
        conn = f"{src}->{dst}"
        if kind == "MAD_REQUEST_PKT":
            if header.send_id in self._rndv:
                self._violate("rendezvous-handshake", src,
                              f"duplicate MAD_REQUEST_PKT for send_id "
                              f"{header.send_id}", connection=conn)
                return
            self._rndv[header.send_id] = ("requested", src, dst)
        elif kind == "MAD_SENDOK_PKT":
            entry = self._rndv.get(header.send_id)
            if entry is None:
                self._violate("rendezvous-handshake", src,
                              f"MAD_SENDOK_PKT for unknown send_id "
                              f"{header.send_id}", connection=conn)
                return
            state, sender, receiver = entry
            if state != "request-received" or src != receiver:
                self._violate(
                    "rendezvous-handshake", src,
                    f"MAD_SENDOK_PKT for send_id {header.send_id} in state "
                    f"{state!r} (expected 'request-received' acked by rank "
                    f"{receiver})", connection=conn)
                return
            self._rndv[header.send_id] = ("acked", sender, receiver)
            self._sync_to_send[header.sync_id] = header.send_id
        elif kind == "MAD_RNDV_PKT":
            send_id = self._sync_to_send.get(header.sync_id)
            entry = self._rndv.get(send_id) if send_id is not None else None
            if entry is None:
                self._violate("rendezvous-handshake", src,
                              f"MAD_RNDV_PKT for unknown sync_id "
                              f"{header.sync_id}", connection=conn)
                return
            state, sender, receiver = entry
            if state != "ack-received":
                self._violate(
                    "rendezvous-handshake", src,
                    f"MAD_RNDV_PKT for send_id {send_id} in state {state!r} "
                    "(data sent before the acknowledgement arrived)",
                    connection=conn)
                return
            self._rndv[send_id] = ("data-sent", sender, receiver)

    def on_chmad_recv(self, rank: int, header: Any) -> None:
        """A ch_mad packet reached its final destination's dispatcher."""
        kind = self._RNDV_KIND_ALIASES.get(header.pkt_type.name,
                                           header.pkt_type.name)
        if kind == "MAD_REQUEST_PKT":
            entry = self._rndv.get(header.send_id)
            if entry is None or entry[0] != "requested":
                state = entry[0] if entry else "unknown"
                self._violate("rendezvous-handshake", rank,
                              f"MAD_REQUEST_PKT for send_id {header.send_id} "
                              f"received in state {state!r}")
                return
            self._rndv[header.send_id] = ("request-received",
                                          entry[1], entry[2])
        elif kind == "MAD_SENDOK_PKT":
            entry = self._rndv.get(header.send_id)
            if entry is None or entry[0] != "acked":
                state = entry[0] if entry else "unknown"
                self._violate("rendezvous-handshake", rank,
                              f"MAD_SENDOK_PKT for send_id {header.send_id} "
                              f"received in state {state!r}")
                return
            self._rndv[header.send_id] = ("ack-received",
                                          entry[1], entry[2])
        elif kind == "MAD_RNDV_PKT":
            send_id = self._sync_to_send.get(header.sync_id)
            entry = self._rndv.get(send_id) if send_id is not None else None
            if entry is None or entry[0] != "data-sent":
                state = entry[0] if entry else "unknown"
                self._violate("rendezvous-handshake", rank,
                              f"MAD_RNDV_PKT for sync_id {header.sync_id} "
                              f"received in state {state!r}")
                return
            del self._rndv[send_id]
            del self._sync_to_send[header.sync_id]

    # -- EXPRESS/CHEAPER flag discipline (ch_mad wire format) --------------

    def on_chmad_wire(self, rank: int, protocol: str, wire: Any) -> None:
        """Block-mode layout of one ch_mad wire message (§4.2.1).

        Scoped to ch_mad: raw Madeleine applications may legally pack any
        block layout; the *device's* wire contract is EXPRESS header then
        CHEAPER body.
        """
        from repro.madeleine.constants import ReceiveMode
        blocks = wire.blocks
        conn = f"{protocol}:{wire.source_rank}->{rank}"
        if not blocks:
            self._violate("express-ordering", rank,
                          "ch_mad wire message with no blocks",
                          connection=conn)
            return
        if blocks[0].receive_mode is not ReceiveMode.EXPRESS:
            self._violate(
                "express-ordering", rank,
                f"header block sent {blocks[0].receive_mode.value}, ch_mad "
                "requires receive_EXPRESS (the header drives unpacking)",
                connection=conn)
            return
        for index, block in enumerate(blocks[1:], start=1):
            if block.receive_mode is not ReceiveMode.CHEAPER:
                self._violate(
                    "express-ordering", rank,
                    f"body block #{index} sent {block.receive_mode.value}, "
                    "ch_mad bodies must be receive_CHEAPER",
                    connection=conn)
                return

    # -- polling-thread send discipline (§4.2.3) ---------------------------

    def register_poller(self, task: Any, source_name: str) -> None:
        """Record a persistent polling thread (PollingThread spawn)."""
        self._pollers[task] = source_name

    def on_transmit(self, conn: Any, task: Any) -> None:
        """A Madeleine connection transmission, charged to ``task``."""
        if task is None:
            return
        source = self._pollers.get(task)
        if source is not None:
            channel = conn.port.channel
            self._violate(
                "polling-send", conn.port.rank,
                f"polling thread of source {source!r} performed a send "
                "itself — §4.2.3: a polling thread must never proceed to a "
                "send operation (spawn a temporary thread)",
                connection=f"{channel.name}:{conn.port.rank}->"
                           f"{conn.remote_rank}")

    # -- reliable transport window (madeleine/reliable.py) -----------------

    def on_wire_deliver(self, port: Any, src: int, seq: int) -> None:
        """The transport is about to post ``seq`` to the port's queue."""
        key = (port.channel.id, src, port.rank)
        expected = self._recv_window.get(key, 0)
        self._recv_window[key] = max(expected, seq + 1)
        if seq != expected:
            kind = ("duplicate delivery" if seq < expected
                    else f"gap (skipped {seq - expected} message(s))")
            self._violate(
                "reliable-window", port.rank,
                f"sequence {seq} posted where {expected} was expected: "
                f"{kind}",
                connection=f"{port.channel.name}:{src}->{port.rank}")

    def on_ack(self, conn: Any, ack_seq: int) -> None:
        """An acknowledgement reached the sender-side connection."""
        if ack_seq >= conn._send_seq:
            channel = conn.port.channel
            self._violate(
                "reliable-window", conn.port.rank,
                f"ack for sequence {ack_seq}, but only {conn._send_seq} "
                "message(s) were ever sent on this connection",
                connection=f"{channel.name}:{conn.remote_rank}->"
                           f"{conn.port.rank}")

    # -- fault-tolerance bookkeeping ---------------------------------------

    def on_rank_dead(self, rank: int) -> None:
        """The DeathController killed ``rank``: its state is unauditable
        (finalize skips it) and survivors' references to it must resolve."""
        self.dead_ranks.add(rank)

    def on_revoke(self, rank: int, contexts: Any) -> None:
        """``rank`` learned of a revocation covering ``contexts`` (the
        base context id and the hidden collective context)."""
        from repro.mpi.constants import CONTEXTS_PER_COMM
        revoked = self._revoked.setdefault(rank, set())
        for ctx in contexts:
            revoked.add(ctx - (ctx % CONTEXTS_PER_COMM))

    def on_ft_discard(self, rank: int, envelope: Any, send_id: int = 0) -> None:
        """The FT layer dropped an arrival (dead source / revoked or
        failed context) before user code could see it: retire the shadow
        state so the discard is not reported as a leak."""
        self._in_flight.pop(id(envelope), None)
        self._drop_rndv(send_id)

    def on_ft_abort_send(self, rank: int, send_id: int) -> None:
        """The FT layer aborted an in-flight rendezvous send."""
        self._drop_rndv(send_id)

    def _drop_rndv(self, send_id: int) -> None:
        if not send_id:
            return
        self._rndv.pop(send_id, None)
        for sync_id, mapped in list(self._sync_to_send.items()):
            if mapped == send_id:
                del self._sync_to_send[sync_id]

    # -- one-sided (RMA) epoch discipline and registration audit -----------

    def on_mem_register(self, rank: int | None, key: Any, nbytes: int) -> None:
        """Memory pinned explicitly (window lifetime; not the LRU cache).

        Registration-cache entries are deregistered lazily by eviction —
        their lifetime is the cache's business, so they are *not*
        reported here and their owners must not call this hook."""
        self._registrations[(rank, key)] = nbytes

    def on_mem_deregister(self, rank: int | None, key: Any) -> None:
        """Explicitly pinned memory released."""
        if self._registrations.pop((rank, key), None) is None:
            self._violate(
                "registration-leak", rank,
                f"deregistration of memory {key!r} that was never "
                "registered")

    def on_win_create(self, rank: int, win_id: int) -> None:
        """One rank's side of a window came up (MPI_Win_create)."""
        self._win_epochs[(rank, win_id)] = 0
        self._win_freed.discard((rank, win_id))

    def on_win_fence(self, rank: int, win_id: int) -> None:
        """``rank`` opened a new fence epoch on ``win_id``."""
        state = self._win_epochs.get((rank, win_id))
        if state is None or (rank, win_id) in self._win_freed:
            self._violate("rma-epoch", rank,
                          f"fence on unknown or freed window {win_id}")
            return
        self._win_epochs[(rank, win_id)] = state + 1

    def on_rma_op(self, origin: int, win_id: int, op: str, target: int,
                  op_uid: Any) -> None:
        """``origin`` issued one Put/Get/Accumulate towards ``target``."""
        epoch = self._win_epochs.get((origin, win_id))
        if epoch is None or (origin, win_id) in self._win_freed or epoch == 0:
            self._violate(
                "rma-epoch", origin,
                f"{op} on window {win_id} towards rank {target} issued "
                + ("outside any fence epoch" if epoch == 0
                   else "on an unknown or freed window"),
                connection=f"{origin}->{target}")
            return
        self._rma_outstanding[op_uid] = (win_id, origin, target, epoch)

    def on_rma_apply(self, rank: int, win_id: int, op_uid: Any) -> None:
        """The operation took effect (target applied it, or origin's get
        landed)."""
        self._rma_outstanding.pop(op_uid, None)

    def on_win_fence_complete(self, rank: int, win_id: int) -> None:
        """``rank``'s fence returned: every op of the epoch it closes that
        targets ``rank`` must already be applied (fence-ordered
        completion).  Ops of the *next* epoch, issued by origins that
        already passed their own fence, are legitimately in flight."""
        epoch = self._win_epochs.get((rank, win_id), 0)
        for op_uid, entry in sorted(self._rma_outstanding.items(),
                                    key=lambda item: str(item[0])):
            wid, origin, target, issue_epoch = entry
            if wid == win_id and target == rank and issue_epoch <= epoch \
                    and origin not in self.dead_ranks:
                self._violate(
                    "rma-unfenced-completion", rank,
                    f"fence on window {win_id} completed with op {op_uid} "
                    f"from rank {origin} (epoch {issue_epoch}) not yet "
                    "applied", connection=f"{origin}->{rank}")

    def on_win_free(self, rank: int, win_id: int) -> None:
        """One rank's side of a window went down (MPI_Win_free)."""
        self._win_freed.add((rank, win_id))

    # -- finalize leak checks ----------------------------------------------

    def on_finalize(self, env: Any) -> None:
        """Per-rank leak audit, run by MPI_Finalize before teardown."""
        progress = env.progress
        rank = env.rank
        if rank in self.dead_ranks:
            # A killed rank's queues hold whatever the death interrupted;
            # there is no leak discipline to audit on a corpse.
            return
        if self.dead_ranks:
            # FT invariant first, with its own name: nothing still alive
            # may reference a dead rank.
            for handle in progress.posted:
                if handle.source_pattern in self.dead_ranks:
                    self._violate(
                        "dead-rank-leak", rank,
                        f"receive from dead rank {handle.source_pattern} "
                        f"(ctx={handle.context_id}) still posted at "
                        "MPI_Finalize — never failed with "
                        "MPI_ERR_PROC_FAILED")
            for device in (env.smp_device, env.inter_device):
                pending = getattr(device, "_pending_sends", None) or {}
                for send_id, shandle in pending.items():
                    if shandle.dest_world in self.dead_ranks:
                        self._violate(
                            "dead-rank-leak", rank,
                            f"rendezvous send {send_id} towards dead rank "
                            f"{shandle.dest_world} still pending at "
                            "MPI_Finalize")
            for sync in progress.sync_registry.values():
                source = getattr(sync.rhandle, "rndv_source", None)
                if source in self.dead_ranks:
                    self._violate(
                        "dead-rank-leak", rank,
                        f"rendezvous sync for dead sender {source} still "
                        "armed at MPI_Finalize")
        posted = len(progress.posted)
        if posted:
            self._violate("finalize-leak", rank,
                          f"{posted} receive(s) still posted at "
                          "MPI_Finalize (irecv never completed)")
        unexpected = len(progress.unexpected)
        if unexpected:
            self._violate(
                "finalize-leak", rank,
                f"{unexpected} unexpected message(s) never received "
                f"({progress.unexpected.buffered_bytes} buffered byte(s))")
        if progress.sync_registry:
            self._violate("finalize-leak", rank,
                          f"{len(progress.sync_registry)} rendezvous sync "
                          "structure(s) leaked (data packet never arrived)")
        from repro.mpi.constants import FT_CONTROL_CONTEXT
        for (context_id, dest), gate in progress.send_gates.items():
            if gate.depth and context_id < FT_CONTROL_CONTEXT:
                # FT control floods are asynchronous by design: one may
                # legitimately still be mid-send when the job completes.
                self._violate(
                    "finalize-leak", rank,
                    f"send gate ctx={context_id} dest={dest} still holds "
                    f"{gate.depth} unreleased ticket(s)")
        pending = getattr(env.inter_device, "_pending_sends", None)
        if pending:
            self._violate("finalize-leak", rank,
                          f"{len(pending)} rendezvous send(s) never "
                          "acknowledged (send_ids "
                          f"{sorted(pending)})")
        leaked = sorted(((key, nbytes) for (reg_rank, key), nbytes
                         in self._registrations.items()
                         if reg_rank == rank),
                        key=lambda item: str(item[0]))
        for key, nbytes in leaked:
            self._violate(
                "registration-leak", rank,
                f"{nbytes}-byte registration {key!r} still pinned at "
                "MPI_Finalize (window never freed?)")

    def on_world_finalize(self) -> None:
        """Cluster-wide residue audit after every rank finalized.

        Shadow state touching a dead rank is exempt: a handshake or an
        in-flight message the death interrupted is the *expected* residue
        of a kill, and the per-rank audits already proved no live request
        still references the corpse.
        """
        live_rndv = {
            send_id: entry for send_id, entry in self._rndv.items()
            if entry[1] not in self.dead_ranks
            and entry[2] not in self.dead_ranks
        }
        if live_rndv:
            send_id, (state, sender, receiver) = next(iter(
                sorted(live_rndv.items())))
            self._violate(
                "finalize-leak", sender,
                f"{len(live_rndv)} rendezvous handshake(s) incomplete at "
                f"finalize (first: send_id {send_id} in state {state!r})",
                connection=f"{sender}->{receiver}")
        from repro.mpi.constants import FT_CONTROL_CONTEXT
        live_flight = [
            (key, seq) for _env, key, seq in self._in_flight.values()
            if key[1] not in self.dead_ranks and key[2] not in self.dead_ranks
            and key[0] < FT_CONTROL_CONTEXT
        ]
        if live_flight:
            (ctx, src, dst, tag), seq = sorted(live_flight)[0]
            self._violate(
                "finalize-leak", src,
                f"{len(live_flight)} message(s) sent but never matched "
                f"to a receive (first: stream src={src} dst={dst} tag={tag} "
                f"ctx={ctx} message #{seq})",
                connection=f"{src}->{dst}/tag{tag}")
