"""repro.check — online MPI semantics checking + schedule fuzzing.

Three pieces (see DESIGN.md "Correctness checking"):

- :mod:`repro.check.checker` — the opt-in online invariant checker
  (``EngineConfig(checker=True)`` / ``install_checker``), zero-cost
  when disabled;
- :mod:`repro.check.waitgraph` — rank-level wait-for-graph diagnosis for
  hung jobs (powers :class:`~repro.errors.DeadlockError`'s cycle report);
- :mod:`repro.check.fuzz` — the deterministic schedule-fuzzing harness
  (``python -m repro fuzz``) over the unified workload registry
  (:mod:`repro.workloads`).

Import discipline: this package's ``__init__`` may only import
:mod:`.checker` (the sim engine imports it at module level); the
waitgraph and fuzz modules import the simulator/cluster layers and are
pulled in lazily by their consumers.
"""

from repro.check.checker import NULL_CHECKER, Checker, CheckViolation, NullChecker

__all__ = ["NULL_CHECKER", "Checker", "CheckViolation", "NullChecker"]
