"""Rank-level wait-for-graph diagnosis for hung MPI jobs.

The queue-drained heuristic in :mod:`repro.cluster.session` knows *that*
the job hung; this module says *why*, rank by rank.  Blocking primitives
annotate their waitables with two ad-hoc attributes:

- ``rank_dep`` — the world rank whose action would release the waiter
  (``None`` when unknown, e.g. an ``MPI_ANY_SOURCE`` receive);
- ``dep_describe`` — a human-readable description of the dependency.

The annotations are always on (two attribute stores per blocking
operation — far off any hot path) so a hang is diagnosable even when the
checker was never enabled.  :func:`diagnose` collects one edge per
blocked non-daemon task (daemons with no rank dependency are polling
threads parked on empty mailboxes — noise, skipped), builds the
rank-level adjacency, and searches for a cycle; the resulting
:class:`Diagnosis` feeds :class:`~repro.errors.DeadlockError`'s
``cycle``/``diagnosis`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.cpu import TaskState


@dataclass(frozen=True)
class WaitEdge:
    """One blocked task: ``rank`` waits on ``dep_rank`` (None = unknown)."""

    rank: int
    task_name: str
    description: str
    dep_rank: int | None


@dataclass
class Diagnosis:
    """The wait-for-graph report attached to a DeadlockError."""

    edges: list[WaitEdge] = field(default_factory=list)
    #: Ranks forming a cycle, in wait order (empty when none found).
    cycle_ranks: list[int] = field(default_factory=list)
    #: Human-readable report, one line per edge plus the cycle summary.
    text: str = ""


def collect_edges(envs: Iterable[Any]) -> list[WaitEdge]:
    """One edge per blocked task whose dependency is worth reporting."""
    edges: list[WaitEdge] = []
    for env in envs:
        for task in env.process.runtime.cpu.tasks():
            if task.finished or task.state is not TaskState.BLOCKED:
                continue
            waitable = task.waiting_on
            dep = getattr(waitable, "rank_dep", None)
            if task.daemon and dep is None:
                continue  # a poller parked on its empty mailbox
            description = (getattr(waitable, "dep_describe", None)
                           or task.waiting_description())
            edges.append(WaitEdge(env.rank, task.name, description, dep))
    return edges


def find_cycle(edges: Iterable[WaitEdge]) -> list[int]:
    """A rank cycle in the wait-for graph, or [] when none exists.

    DFS over the rank-level adjacency; deterministic (neighbours visited
    in sorted order) so the reported cycle is stable across runs.
    """
    adjacency: dict[int, list[int]] = {}
    for edge in edges:
        if edge.dep_rank is not None and edge.dep_rank != edge.rank:
            deps = adjacency.setdefault(edge.rank, [])
            if edge.dep_rank not in deps:
                deps.append(edge.dep_rank)
    for deps in adjacency.values():
        deps.sort()

    done: set[int] = set()
    for start in sorted(adjacency):
        if start in done:
            continue
        path: list[int] = []
        on_path: set[int] = set()

        def visit(rank: int) -> list[int]:
            if rank in on_path:
                return path[path.index(rank):]
            if rank in done:
                return []
            path.append(rank)
            on_path.add(rank)
            for dep in adjacency.get(rank, ()):
                cycle = visit(dep)
                if cycle:
                    return cycle
            path.pop()
            on_path.discard(rank)
            done.add(rank)
            return []

        cycle = visit(start)
        if cycle:
            return cycle
    return []


def diagnose(envs: Iterable[Any]) -> Diagnosis:
    """Build the full wait-for-graph report for a hung world."""
    edges = collect_edges(envs)
    cycle = find_cycle(edges)
    lines = []
    for edge in sorted(edges, key=lambda e: (e.rank, e.task_name)):
        target = (f"rank {edge.dep_rank}" if edge.dep_rank is not None
                  else "<unknown>")
        lines.append(f"  rank {edge.rank} waits on {target}: "
                     f"{edge.description} [{edge.task_name}]")
    if cycle:
        chain = " -> ".join(f"rank {r}" for r in cycle + cycle[:1])
        lines.insert(0, f"wait-for cycle: {chain}")
    elif lines:
        lines.insert(0, "wait-for graph (no cycle found):")
    return Diagnosis(edges=edges, cycle_ranks=cycle,
                     text="\n".join(lines))
