"""Fuzz workloads — thin re-export of the unified workload registry.

The workload catalogue moved to :mod:`repro.workloads` (one registry
shared by ``python -m repro run``, the batch runner, the fuzzer and the
macro-benchmarks).  This module re-exports the same objects — the
``WORKLOADS`` dict here *is* the registry dict, so tests that plant
throwaway workloads keep working — and the builders moved verbatim
(:mod:`repro.workloads.micro`), so every historical fuzz-seed digest
still reproduces bit for bit.
"""

from __future__ import annotations

from repro.workloads import WORKLOADS, Workload
from repro.workloads.micro import Builder

__all__ = ["Builder", "WORKLOADS", "Workload"]
