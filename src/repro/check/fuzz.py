"""Schedule fuzzing: perturb legal scheduling choices, keep semantics.

The simulator is deterministic: a run is a pure function of
``(configuration, seed)``.  That is great for reproducibility and
terrible for coverage — every test run exercises exactly one
interleaving of the many the MPI/Madeleine stack must tolerate.
:class:`ScheduleFuzz` widens the net by perturbing *scheduling* degrees
of freedom the specification leaves open, without touching modelled
costs:

- **ready-queue tie-breaking** — when several threads of one process
  are runnable, rotate the ready queue (any dispatch order is legal);
- **temporary-thread spawn jitter** — delay a freshly spawned temporary
  thread (isend bodies, rendezvous acks, forwarding relays) by a few
  nanoseconds before its first statement runs;
- **polling-thread phase offsets** — start each periodic poller at a
  random phase within its period.

All draws come from :meth:`Engine.rng` namespaces under
``fuzz/{seed}/…``, so one fuzz seed reproduces one schedule exactly:

    python -m repro.check.fuzz --workload mixed --seed 17

The sweep harness (:func:`run_sweep`, also the ``__main__`` CLI) runs
the :mod:`repro.check.workloads` programs across many fuzz seeds with
the online checker enabled, and fails a seed when a checker invariant
trips, the run deadlocks, or the user-visible results differ from the
other seeds' — printing the one-line repro command above.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError

_READY_RATE = 0.25
_SPAWN_JITTER_NS = 2_000
_POLLER_PHASE_NS = 5_000


class ScheduleFuzz:
    """Seeded scheduling perturbations, installed as ``engine.fuzz``."""

    def __init__(self, engine, seed: int, *, ready_rate: float = _READY_RATE,
                 spawn_jitter_ns: int = _SPAWN_JITTER_NS,
                 poller_phase_ns: int = _POLLER_PHASE_NS):
        self.engine = engine
        self.seed = int(seed)
        self.ready_rate = ready_rate
        self.spawn_jitter_ns = int(spawn_jitter_ns)
        self.poller_phase_ns = int(poller_phase_ns)
        #: Number of perturbations actually applied (diagnostic; two
        #: seeds producing different interleavings usually differ here).
        self.decisions = 0
        base = f"fuzz/{self.seed}"
        self._ready_rng = engine.rng(f"{base}/ready")
        self._spawn_rng = engine.rng(f"{base}/spawn")

    def perturb_ready(self, ready) -> None:
        """Maybe rotate a multi-entry ready deque (dispatch tie-break)."""
        if self._ready_rng.random() < self.ready_rate:
            ready.rotate(-1)
            self.decisions += 1

    def spawn_jitter(self) -> int:
        """Nanoseconds to delay a temporary thread's first statement."""
        jitter = self._spawn_rng.randrange(self.spawn_jitter_ns + 1)
        if jitter:
            self.decisions += 1
        return jitter

    def poller_phase(self, name: str) -> int:
        """Phase offset for periodic poller ``name`` (drawn per name, so
        poller construction order cannot shift the streams)."""
        rng = self.engine.rng(f"fuzz/{self.seed}/phase/{name}")
        offset = rng.randrange(self.poller_phase_ns + 1)
        if offset:
            self.decisions += 1
        return offset


def install_fuzz(engine, seed: int, **params) -> ScheduleFuzz:
    """Attach a :class:`ScheduleFuzz` to ``engine`` (before ``run``)."""
    fuzz = ScheduleFuzz(engine, seed, **params)
    engine.fuzz = fuzz
    return fuzz


def trace_digest(records: Iterable) -> str:
    """Canonical digest of an instrumentation record stream."""
    digest = sha256()
    for rec in records:
        digest.update(repr((rec.time, rec.category,
                            tuple(sorted(rec.fields.items())))).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# one workload run
# ---------------------------------------------------------------------------

@dataclass
class WorkloadRun:
    """Outcome of one (workload, fuzz seed) execution."""

    workload: str
    fuzz_seed: int | None
    workload_seed: int = 0
    results: Any = None
    error: ReproError | None = None
    digest: str = ""
    time_ns: int = 0
    decisions: int = 0
    violations: tuple = ()
    trace_records: Sequence = ()

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def repro(self) -> str:
        cmd = (f"python -m repro.check.fuzz --workload {self.workload} "
               f"--seed {self.fuzz_seed}")
        if self.workload_seed:
            cmd += f" --workload-seed {self.workload_seed}"
        return cmd


def run_workload(name: str, fuzz_seed: int | None, *, workload_seed: int = 0,
                 check: bool = True, raise_on_violation: bool = True,
                 fuzz_params: dict | None = None) -> WorkloadRun:
    """Run one bundled workload under the checker (and optionally the
    fuzzer); never raises — failures land in ``run.error``."""
    from repro.check.workloads import WORKLOADS
    from repro.cluster.session import MPIWorld

    config, program = WORKLOADS[name].build(workload_seed)
    world = MPIWorld(config)
    ins = world.engine.enable_instrumentation()
    checker = None
    if check:
        checker = world.engine.enable_checker(
            raise_on_violation=raise_on_violation)
    if fuzz_seed is not None:
        install_fuzz(world.engine, fuzz_seed, **(fuzz_params or {}))
    run = WorkloadRun(name, fuzz_seed, workload_seed)
    try:
        run.results = world.run(program)
    except ReproError as exc:
        run.error = exc
    run.digest = trace_digest(ins.tracer.records)
    run.trace_records = ins.tracer.records
    run.time_ns = world.engine.now
    if world.engine.fuzz is not None:
        run.decisions = world.engine.fuzz.decisions
    if checker is not None:
        run.violations = tuple(checker.violations)
    return run


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

@dataclass
class FuzzFailure:
    workload: str
    fuzz_seed: int
    kind: str  # "violation" | "results-diverge"
    detail: str
    repro: str
    artifact: str | None = None


def _write_artifact(directory: str, run: WorkloadRun,
                    failure: FuzzFailure) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory,
                        f"{run.workload}-seed{run.fuzz_seed}.txt")
    with open(path, "w") as fh:
        fh.write(f"workload:  {run.workload}\n"
                 f"fuzz seed: {run.fuzz_seed}\n"
                 f"kind:      {failure.kind}\n"
                 f"detail:    {failure.detail}\n"
                 f"REPRO:     {failure.repro}\n\n"
                 f"trace ({len(run.trace_records)} records):\n")
        for rec in run.trace_records:
            fh.write(f"  {rec.time} {rec.category} "
                     f"{sorted(rec.fields.items())}\n")
    return path


def run_sweep(workloads: Sequence[str], seeds: Iterable[int], *,
              workload_seed: int = 0, artifacts_dir: str | None = None,
              out: Callable[[str], None] = print) -> list[FuzzFailure]:
    """Run each workload across every fuzz seed; return the failures.

    A seed fails when the run raises (checker violation, deadlock, any
    :class:`~repro.errors.ReproError`) or when its user-visible results
    differ from the first seed's — the results of a correct MPI program
    must not depend on which legal schedule the fuzzer picked.
    """
    failures: list[FuzzFailure] = []
    seeds = list(seeds)
    for name in workloads:
        baseline: WorkloadRun | None = None
        for seed in seeds:
            run = run_workload(name, seed, workload_seed=workload_seed)
            failure = None
            if run.error is not None:
                failure = FuzzFailure(
                    name, seed, "violation",
                    f"{type(run.error).__name__}: {run.error}", run.repro)
            elif baseline is None:
                baseline = run
            elif run.results != baseline.results:
                failure = FuzzFailure(
                    name, seed, "results-diverge",
                    f"user-visible results changed with the schedule "
                    f"(fuzz seed {seed} vs {baseline.fuzz_seed}): "
                    f"{run.results!r} != {baseline.results!r}",
                    run.repro)
            if failure is None:
                out(f"ok   {name} seed={seed} t={run.time_ns}ns "
                    f"decisions={run.decisions} digest={run.digest[:12]}")
                continue
            if artifacts_dir:
                failure.artifact = _write_artifact(artifacts_dir, run,
                                                   failure)
            failures.append(failure)
            out(f"FAIL {name} seed={seed}: {failure.detail}")
            out(f"REPRO: {failure.repro}")
            if failure.artifact:
                out(f"artifact: {failure.artifact}")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Sequence[str] | None = None) -> int:
    from repro.check.workloads import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro.check.fuzz",
        description="Fuzz MPI schedules under the online semantics checker.")
    parser.add_argument("--workload", action="append", dest="workloads",
                        choices=sorted(WORKLOADS),
                        help="workload(s) to run (default: all)")
    parser.add_argument("--seed", type=int, default=None,
                        help="run this single fuzz seed (repro mode)")
    parser.add_argument("--seeds", type=int, default=25,
                        help="sweep this many fuzz seeds (default 25)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first fuzz seed of the sweep (default 0)")
    parser.add_argument("--workload-seed", type=int, default=0,
                        help="seed for the workload's own traffic schedule")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write a trace artifact per failure into DIR")
    parser.add_argument("--list", action="store_true",
                        help="list bundled workloads and exit")
    args = parser.parse_args(argv)

    if args.list:
        for workload in WORKLOADS.values():
            print(f"{workload.name:12s} {workload.description}")
        return 0

    workloads = args.workloads or sorted(WORKLOADS)
    if args.seed is not None:
        seeds: Sequence[int] = [args.seed]
    else:
        seeds = range(args.base_seed, args.base_seed + args.seeds)
    failures = run_sweep(workloads, seeds, workload_seed=args.workload_seed,
                         artifacts_dir=args.artifacts)
    total = len(workloads) * len(list(seeds))
    if failures:
        print(f"\n{len(failures)}/{total} runs failed")
        return 1
    print(f"\nall {total} runs clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
