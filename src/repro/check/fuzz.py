"""Schedule fuzzing: perturb legal scheduling choices, keep semantics.

The simulator is deterministic: a run is a pure function of
``(configuration, seed)``.  That is great for reproducibility and
terrible for coverage — every test run exercises exactly one
interleaving of the many the MPI/Madeleine stack must tolerate.
:class:`ScheduleFuzz` widens the net by perturbing *scheduling* degrees
of freedom the specification leaves open, without touching modelled
costs:

- **ready-queue tie-breaking** — when several threads of one process
  are runnable, rotate the ready queue (any dispatch order is legal);
- **temporary-thread spawn jitter** — delay a freshly spawned temporary
  thread (isend bodies, rendezvous acks, forwarding relays) by a few
  nanoseconds before its first statement runs;
- **polling-thread phase offsets** — start each periodic poller at a
  random phase within its period.

All draws come from :meth:`Engine.rng` namespaces under
``fuzz/{seed}/…``, so one fuzz seed reproduces one schedule exactly:

    python -m repro fuzz --workload mixed --seed 17

The sweep harness (:func:`run_sweep`) runs the
:mod:`repro.check.workloads` programs across many fuzz seeds with the
online checker enabled, and fails a seed when a checker invariant
trips, the run deadlocks, or the user-visible results differ from the
other seeds' — printing the one-line repro command above.  Each
``(workload, seed)`` pair is one :class:`~repro.runner.spec.JobSpec`
(kind ``fuzz_workload``) executed through the batch
:class:`~repro.runner.runner.Runner`, so sweeps parallelize across
worker processes and cache their per-seed results content-addressed.

Workloads resolve through the unified registry
(:mod:`repro.workloads`): anything registered there with the ``fuzz``
tag — micro protocol storms and the ``ml_training``/``cfd_halo``
macro-workloads alike — is sweepable here with no extra wiring.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.sim.engine import EngineConfig, seed_namespace

_READY_RATE = 0.25
_SPAWN_JITTER_NS = 2_000
_POLLER_PHASE_NS = 5_000


class ScheduleFuzz:
    """Seeded scheduling perturbations, installed as ``engine.fuzz``."""

    def __init__(self, engine, seed: int, *, ready_rate: float = _READY_RATE,
                 spawn_jitter_ns: int = _SPAWN_JITTER_NS,
                 poller_phase_ns: int = _POLLER_PHASE_NS):
        self.engine = engine
        self.seed = int(seed)
        self.ready_rate = ready_rate
        self.spawn_jitter_ns = int(spawn_jitter_ns)
        self.poller_phase_ns = int(poller_phase_ns)
        #: Number of perturbations actually applied (diagnostic; two
        #: seeds producing different interleavings usually differ here).
        self.decisions = 0
        base = seed_namespace("fuzz", self.seed)
        self._ready_rng = engine.rng(seed_namespace(base, "ready"))
        self._spawn_rng = engine.rng(seed_namespace(base, "spawn"))

    def perturb_ready(self, ready) -> None:
        """Maybe rotate a multi-entry ready deque (dispatch tie-break)."""
        if self._ready_rng.random() < self.ready_rate:
            ready.rotate(-1)
            self.decisions += 1

    def spawn_jitter(self) -> int:
        """Nanoseconds to delay a temporary thread's first statement."""
        jitter = self._spawn_rng.randrange(self.spawn_jitter_ns + 1)
        if jitter:
            self.decisions += 1
        return jitter

    def poller_phase(self, name: str) -> int:
        """Phase offset for periodic poller ``name`` (drawn per name, so
        poller construction order cannot shift the streams)."""
        rng = self.engine.rng(seed_namespace("fuzz", self.seed, "phase", name))
        offset = rng.randrange(self.poller_phase_ns + 1)
        if offset:
            self.decisions += 1
        return offset


def install_fuzz(engine, seed: int, **params) -> ScheduleFuzz:
    """Attach a :class:`ScheduleFuzz` to ``engine`` (before ``run``)."""
    fuzz = ScheduleFuzz(engine, seed, **params)
    engine.fuzz = fuzz
    return fuzz


def trace_digest(records: Iterable) -> str:
    """Canonical digest of an instrumentation record stream."""
    digest = sha256()
    for rec in records:
        digest.update(repr((rec.time, rec.category,
                            tuple(sorted(rec.fields.items())))).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# one workload run
# ---------------------------------------------------------------------------

@dataclass
class WorkloadRun:
    """Outcome of one (workload, fuzz seed) execution."""

    workload: str
    fuzz_seed: int | None
    workload_seed: int = 0
    results: Any = None
    error: ReproError | None = None
    digest: str = ""
    time_ns: int = 0
    decisions: int = 0
    violations: tuple = ()
    trace_records: Sequence = ()

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def repro(self) -> str:
        cmd = (f"python -m repro fuzz --workload {self.workload} "
               f"--seed {self.fuzz_seed}")
        if self.workload_seed:
            cmd += f" --workload-seed {self.workload_seed}"
        return cmd


def run_workload(name: str, fuzz_seed: int | None, *, workload_seed: int = 0,
                 check: bool = True, raise_on_violation: bool = True,
                 fuzz_params: dict | None = None) -> WorkloadRun:
    """Run one bundled workload under the checker (and optionally the
    fuzzer); never raises — failures land in ``run.error``."""
    import repro.workloads as workloads
    from repro.cluster.session import MPIWorld

    config, program = workloads.get(name).instantiate(workload_seed)
    world = MPIWorld(config, engine_config=EngineConfig(
        instrumentation=True, checker=check,
        checker_raise=raise_on_violation, fuzz_seed=fuzz_seed,
        fuzz_params=fuzz_params or {}))
    ins = world.engine.instruments
    checker = world.engine.checker if check else None
    run = WorkloadRun(name, fuzz_seed, workload_seed)
    try:
        run.results = world.run(program)
    except ReproError as exc:
        run.error = exc
    run.digest = trace_digest(ins.tracer.records)
    run.trace_records = ins.tracer.records
    run.time_ns = world.engine.now
    if world.engine.fuzz is not None:
        run.decisions = world.engine.fuzz.decisions
    if checker is not None:
        run.violations = tuple(checker.violations)
    return run


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

@dataclass
class FuzzFailure:
    workload: str
    fuzz_seed: int
    kind: str  # "violation" | "results-diverge"
    detail: str
    repro: str
    artifact: str | None = None


def sweep_jobs(workloads: Sequence[str], seeds: Iterable[int], *,
               workload_seed: int = 0) -> list:
    """One ``fuzz_workload`` :class:`JobSpec` per (workload, fuzz seed)."""
    from repro.runner import JobSpec

    return [
        JobSpec(kind="fuzz_workload",
                params={"workload": name, "fuzz_seed": seed,
                        "workload_seed": workload_seed, "check": True},
                label=f"fuzz:{name}:seed{seed}")
        for name in workloads for seed in seeds
    ]


def _write_artifact(directory: str, payload: Mapping[str, Any],
                    failure: FuzzFailure) -> str:
    os.makedirs(directory, exist_ok=True)
    trace = payload.get("trace") or ()
    path = os.path.join(
        directory, f"{failure.workload}-seed{failure.fuzz_seed}.txt")
    with open(path, "w") as fh:
        fh.write(f"workload:  {failure.workload}\n"
                 f"fuzz seed: {failure.fuzz_seed}\n"
                 f"kind:      {failure.kind}\n"
                 f"detail:    {failure.detail}\n"
                 f"REPRO:     {failure.repro}\n\n"
                 f"trace ({len(trace)} records):\n")
        for line in trace:
            fh.write(f"  {line}\n")
        if not trace:
            fh.write("  (run the REPRO command above for the full trace)\n")
    return path


def run_sweep(workloads: Sequence[str], seeds: Iterable[int], *,
              workload_seed: int = 0, artifacts_dir: str | None = None,
              out: Callable[[str], None] = print, workers: int = 1,
              cache=None,
              progress: Callable[[str], None] | None = None
              ) -> list[FuzzFailure]:
    """Run each workload across every fuzz seed; return the failures.

    A seed fails when the run raises (checker violation, deadlock, any
    :class:`~repro.errors.ReproError`) or when its user-visible results
    differ from the first seed's — the results of a correct MPI program
    must not depend on which legal schedule the fuzzer picked.

    The (workload, seed) grid is executed through the batch
    :class:`~repro.runner.runner.Runner`: ``workers > 1`` fans seeds out
    across processes, ``cache`` (a directory or
    :class:`~repro.runner.cache.ResultCache`) makes re-sweeps of
    already-seen seeds instant.  Results and failure reports are
    identical whichever way the grid was executed.
    """
    from repro.runner import Runner

    seeds = list(seeds)
    workloads = list(workloads)
    specs = sweep_jobs(workloads, seeds, workload_seed=workload_seed)
    runner = Runner(workers=workers, cache=cache, out=progress)
    payloads = {}
    for spec, result in zip(specs, runner.run(specs)):
        if not result.ok:  # infrastructure failure, not a checker verdict
            raise ReproError(
                f"fuzz job {spec.display} failed to execute: {result.error}")
        payloads[(spec.params["workload"], spec.params["fuzz_seed"])] = \
            result.payload

    failures: list[FuzzFailure] = []
    for name in workloads:
        baseline: Mapping[str, Any] | None = None
        for seed in seeds:
            payload = payloads[(name, seed)]
            failure = None
            if not payload["ok"]:
                failure = FuzzFailure(
                    name, seed, "violation",
                    f"{payload['error_type']}: {payload['error']}",
                    payload["repro"])
            elif baseline is None:
                baseline = payload
            elif payload["results_repr"] != baseline["results_repr"]:
                failure = FuzzFailure(
                    name, seed, "results-diverge",
                    f"user-visible results changed with the schedule "
                    f"(fuzz seed {seed} vs {baseline['fuzz_seed']}): "
                    f"{payload['results_repr']} != "
                    f"{baseline['results_repr']}",
                    payload["repro"])
            if failure is None:
                out(f"ok   {name} seed={seed} t={payload['time_ns']}ns "
                    f"decisions={payload['decisions']} "
                    f"digest={payload['digest'][:12]}")
                continue
            if artifacts_dir:
                failure.artifact = _write_artifact(artifacts_dir, payload,
                                                   failure)
            failures.append(failure)
            out(f"FAIL {name} seed={seed}: {failure.detail}")
            out(f"REPRO: {failure.repro}")
            if failure.artifact:
                out(f"artifact: {failure.artifact}")
    return failures


