"""MPICH-PM/SCore — RWCP's zero-copy MPI over PM (paper ref [13]).

Calibrated to Figure 8 (measured on RWC PC Cluster II, Pentium Pro 200,
§5.4): ~5 us ahead of ch_mad at small sizes, ahead below 4 KB and above
256 KB, roughly equal in between, with a ~118 MB/s zero-copy asymptote.
"""

from repro.baselines.model import AnalyticMPIModel, Segment

MPICH_PM = AnalyticMPIModel(
    name="MPICH-PM",
    network="bip",
    segments=[
        # small: lean eager path, ~5 us below ch_mad's 20 us
        Segment(upto=4 * 1024, overhead_us=15.0, per_byte_ns=10.0),
        # middle: comparable to ch_mad's rendezvous
        Segment(upto=256 * 1024, overhead_us=40.0, per_byte_ns=8.9),
        # large: slightly ahead again (~118 MB/s)
        Segment(upto=2**62, overhead_us=60.0, per_byte_ns=8.4),
    ],
    source="paper Figure 8 (a) and (b)",
)
