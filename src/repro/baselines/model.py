"""Piecewise analytic ping-pong model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.units import MB_DECIMAL, SECOND, to_us


@dataclass(frozen=True)
class Segment:
    """One size regime: t(n) = overhead_us + n * per_byte_ns, n <= upto."""

    upto: int            # inclusive upper bound in bytes (use 2**62 for inf)
    overhead_us: float
    per_byte_ns: float


class AnalyticMPIModel:
    """One comparator MPI as a one-way-time curve over message size."""

    def __init__(self, name: str, network: str, segments: Sequence[Segment],
                 source: str):
        if not segments:
            raise ValueError("need at least one segment")
        bounds = [s.upto for s in segments]
        if bounds != sorted(bounds):
            raise ValueError("segments must be sorted by upper bound")
        self.name = name
        #: Which paper network this model rides ("sisci" or "bip").
        self.network = network
        self.segments = tuple(segments)
        #: Provenance note (which figure the calibration came from).
        self.source = source

    def segment_for(self, size: int) -> Segment:
        for segment in self.segments:
            if size <= segment.upto:
                return segment
        return self.segments[-1]

    def one_way_ns(self, size: int) -> int:
        """Modelled one-way transfer time for a ``size``-byte message."""
        if size < 0:
            raise ValueError("negative message size")
        segment = self.segment_for(size)
        return round(segment.overhead_us * 1000 + size * segment.per_byte_ns)

    def latency_us(self, size: int) -> float:
        return to_us(self.one_way_ns(size))

    def bandwidth_mb_s(self, size: int) -> float:
        """Bandwidth in the paper's MB/s (10^6 bytes)."""
        if size == 0:
            return 0.0
        return (size / MB_DECIMAL) / (self.one_way_ns(size) / SECOND)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AnalyticMPIModel {self.name} over {self.network}>"
