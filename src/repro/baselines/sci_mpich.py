"""SCI-MPICH — RWTH Aachen's ch_smi device over SCI (paper ref [17]).

Calibrated to Figure 7: latency between ScaMPI's and ch_mad's (~12 us),
bandwidth ceiling slightly below ScaMPI's (~57 MB/s), also overtaken by
ch_mad's rendezvous beyond 16 KB.
"""

from repro.baselines.model import AnalyticMPIModel, Segment

SCI_MPICH = AnalyticMPIModel(
    name="SCI-MPICH",
    network="sisci",
    segments=[
        Segment(upto=1024, overhead_us=12.0, per_byte_ns=19.0),
        Segment(upto=64 * 1024, overhead_us=15.0, per_byte_ns=17.5),
        Segment(upto=2**62, overhead_us=30.0, per_byte_ns=17.3),
    ],
    source="paper Figure 7 (a) and (b)",
)
