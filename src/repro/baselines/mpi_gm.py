"""MPI-GM (MPICH-GM) — Myricom's MPI over GM 1.2.3 (paper ref [1]).

Calibrated to Figure 8 on the paper's 32-bit LANai-4 hardware: moderate
small-message latency (~25 us, worse than ch_mad below 512 B), flat
per-byte cost that wins the 512 B–1 KB latency range once ch_mad hits
BIP's 1 KB long-message handshake, but a weak large-message path
("definitely outperformed by both ch_mad and MPICH-PM") topping out
around 47 MB/s.
"""

from repro.baselines.model import AnalyticMPIModel, Segment

MPI_GM = AnalyticMPIModel(
    name="MPI-GM",
    network="bip",
    segments=[
        Segment(upto=4 * 1024, overhead_us=25.0, per_byte_ns=19.0),
        Segment(upto=2**62, overhead_us=35.0, per_byte_ns=21.0),
    ],
    source="paper Figure 8 (a) and (b)",
)
