"""Analytic models of the paper's closed-source comparator MPIs.

ScaMPI and SCI-MPICH (Figure 7) and MPI-GM and MPICH-PM (Figure 8) are
proprietary or unbuildable stacks whose curves the paper itself obtained
from their vendors ("several performance figures have been furnished by
the developing teams", §5.1).  We therefore model each as a piecewise
LogGP-style ping-pong curve calibrated to the paper's published figures
— see DESIGN.md §2 for the substitution rationale.  The comparative
*shape* statements of §5.3–§5.4 (who wins where) are asserted against
these models by the Figure 7/8 benchmarks.
"""

from repro.baselines.model import AnalyticMPIModel, Segment
from repro.baselines.scampi import SCAMPI
from repro.baselines.sci_mpich import SCI_MPICH
from repro.baselines.mpi_gm import MPI_GM
from repro.baselines.mpich_pm import MPICH_PM

ALL_BASELINES = {
    model.name: model for model in (SCAMPI, SCI_MPICH, MPI_GM, MPICH_PM)
}

__all__ = [
    "ALL_BASELINES",
    "AnalyticMPIModel",
    "MPICH_PM",
    "MPI_GM",
    "SCAMPI",
    "SCI_MPICH",
    "Segment",
]
