"""ScaMPI — Scali's commercial MPI over SCI (paper ref [2]).

Calibrated to Figure 7: very low small-message latency (~6 us, it is
implemented directly on the SCI hardware), solid mid-range bandwidth,
but a large-message ceiling near 62 MB/s that ch_mad's zero-copy
rendezvous overtakes from 16 KB upwards.
"""

from repro.baselines.model import AnalyticMPIModel, Segment

SCAMPI = AnalyticMPIModel(
    name="ScaMPI",
    network="sisci",
    segments=[
        # tiny messages: hardware-tuned fast path
        Segment(upto=512, overhead_us=6.0, per_byte_ns=18.0),
        # eager with copies
        Segment(upto=32 * 1024, overhead_us=7.5, per_byte_ns=16.2),
        # large: pipelined, ~62 MB/s asymptote
        Segment(upto=2**62, overhead_us=20.0, per_byte_ns=16.0),
    ],
    source="paper Figure 7 (a) and (b)",
)
