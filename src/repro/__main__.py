"""Entry point: ``python -m repro`` (see :mod:`repro.cli`)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
