"""Content-addressed on-disk result cache for the batch runner.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one envelope per job
digest.  The envelope carries the job's canonical description alongside
the payload, so a cache directory is self-describing (and auditable
with nothing but ``jq``).  Writes are atomic (temp file + ``os.replace``)
so a crashed worker can never leave a half-written entry; reads verify
the stored ``result_digest`` against the payload and treat any mismatch
or parse error as a miss — corruption costs a re-run, never a wrong
result.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.runner.spec import CACHE_SCHEMA, JobSpec, canonical_json, payload_digest

#: Environment override for the default cache location.
CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_ENV, ".repro-cache"))


class ResultCache:
    """Content-addressed store of job results, keyed by job digest."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, spec: JobSpec) -> dict[str, Any] | None:
        """The stored envelope for ``spec``, or None (a verified miss)."""
        path = self.path(spec.digest)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (envelope.get("schema") != CACHE_SCHEMA
                or envelope.get("job") != spec.canonical()
                or envelope.get("result_digest")
                != payload_digest(envelope.get("payload"))):
            self.misses += 1
            return None
        self.hits += 1
        return envelope

    # -- store -------------------------------------------------------------

    def put(self, spec: JobSpec, payload: Any, *,
            wall_s: float = 0.0) -> dict[str, Any]:
        """Atomically persist ``payload`` under ``spec``'s digest."""
        envelope = {
            "schema": CACHE_SCHEMA,
            "job": spec.canonical(),
            "label": spec.label,
            "payload": payload,
            "result_digest": payload_digest(payload),
            "wall_s": wall_s,
            "created": time.time(),
        }
        path = self.path(spec.digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(envelope))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return envelope

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache {self.root} entries={len(self)} "
                f"hits={self.hits} misses={self.misses}>")
