"""Job descriptions and canonical digests for the batch runner.

A :class:`JobSpec` is a *complete, serializable* description of one
simulation job: the executor kind (see :mod:`repro.runner.jobs`), its
code-relevant parameters, and the seed.  Two specs that would produce
the same simulation produce the same :attr:`JobSpec.digest` — the
content address under which the result cache files the outcome.  The
digest deliberately excludes anything cosmetic (the display ``label``),
and includes a schema version so a change to the payload format
invalidates every stale entry at once.

Determinism makes this sound: a simulation run is a pure function of
``(configuration, seed)`` (see DESIGN.md), so the digest of the inputs
is a valid address for the outputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Mapping

#: Bumped whenever a payload format (or an executor's meaning) changes
#: incompatibly; part of every job digest, so old cache entries simply
#: stop matching instead of being misread.
CACHE_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering: sorted keys, no whitespace.

    The same value always renders to the same byte string, which is what
    makes digests over it content addresses.  Only JSON-safe values are
    accepted (tuples degrade to lists, like ``json`` always does).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """Content digest of a JSON-safe result payload."""
    return sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One batch job: an executor kind plus its parameters and seed.

    ``params`` must be JSON-safe (the spec crosses process boundaries
    and is persisted next to cached results).  ``label`` is display-only
    and excluded from the digest.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    label: str = ""

    def canonical(self) -> dict[str, Any]:
        """The code-relevant content of this job, digest-ready."""
        return {
            "schema": CACHE_SCHEMA,
            "kind": self.kind,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @property
    def digest(self) -> str:
        """Content address of this job (sha256 of :meth:`canonical`)."""
        return sha256(canonical_json(self.canonical()).encode()).hexdigest()

    @property
    def display(self) -> str:
        return self.label or f"{self.kind}:{self.digest[:10]}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobSpec {self.display} digest={self.digest[:12]}>"


@dataclass
class JobResult:
    """Outcome of one job execution (or cache hit).

    ``payload`` is the executor's JSON-safe return value;
    ``result_digest`` is its content digest — bit-identical reruns
    produce bit-identical digests, which is what the parallel-vs-serial
    and warm-cache acceptance checks compare.
    """

    spec: JobSpec
    digest: str
    payload: Any = None
    result_digest: str = ""
    wall_s: float = 0.0
    attempts: int = 1
    cached: bool = False
    error: str | None = None
    artifacts: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None
