"""Job executors — thin re-export of :mod:`repro.workloads.executors`.

The executor registry moved next to the unified workload registry so a
workload registered once is schedulable as a job without a second
registration.  ``EXECUTORS``/``register``/``execute`` here are the same
objects, so ad-hoc kinds registered by tests and every historical
JobSpec digest keep working unchanged.
"""

from __future__ import annotations

from repro.workloads.executors import (
    EXECUTORS,
    execute,
    pingpong_result,
    register,
)

__all__ = ["EXECUTORS", "execute", "pingpong_result", "register"]
