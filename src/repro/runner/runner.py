"""The process-pool batch runner.

``Runner.run(specs)`` takes a list of :class:`JobSpec`s and returns one
:class:`JobResult` per spec, in order.  Between the two it:

- answers what it can from the content-addressed
  :class:`~repro.runner.cache.ResultCache` (warm re-runs never touch a
  worker);
- fans the misses out across ``workers`` processes
  (``concurrent.futures.ProcessPoolExecutor``), falling back to inline
  execution for ``workers <= 1`` so serial callers pay no pool tax and
  see ad-hoc executor kinds registered in *this* process;
- retries failed jobs with exponential backoff, and survives outright
  worker crashes (``BrokenProcessPool``) by rebuilding the pool and
  requeueing whatever was in flight;
- reports live progress and an ETA through a
  :class:`~repro.sim.metrics.MetricsRegistry` (counters/gauges/histogram
  under ``runner.*``) plus an optional line-printer callback.

Every simulation job is a pure function of its spec, so caching and
retry are semantically invisible: the payload (and its content digest)
is bit-identical however many times, in whichever process, a job runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.jobs import execute
from repro.runner.spec import JobResult, JobSpec, payload_digest
from repro.sim.metrics import MetricsRegistry


def _execute_timed(spec: JobSpec) -> tuple[Any, float]:
    """Worker entry point: run one spec, return (payload, wall seconds)."""
    start = time.perf_counter()
    payload = execute(spec)
    return payload, time.perf_counter() - start


def default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class Runner:
    """Batch executor with caching, retry and progress reporting.

    ``cache`` may be a :class:`ResultCache`, a directory path, or None
    (no caching).  ``out`` receives one human-readable line per job
    completion; pass ``print`` for CLI use, leave None for silence.
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | str | os.PathLike | None = None,
                 retries: int = 2, backoff_s: float = 0.05,
                 out: Callable[[str], None] | None = None,
                 metrics: MetricsRegistry | None = None):
        self.workers = max(1, int(workers))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.out = out
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- public ------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        specs = list(specs)
        results: list[JobResult | None] = [None] * len(specs)
        self.metrics.counter("runner.jobs", status="submitted").inc(len(specs))
        self._done = 0
        self._total = len(specs)
        self._wall_done = 0.0
        self._start = time.perf_counter()

        pending: list[int] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[index] = JobResult(
                    spec=spec, digest=spec.digest, payload=hit["payload"],
                    result_digest=hit["result_digest"],
                    wall_s=hit.get("wall_s", 0.0), cached=True, attempts=0,
                )
                self._progress(results[index])
            else:
                pending.append(index)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                self._run_inline(specs, pending, results)
            else:
                self._run_pool(specs, pending, results)
        return [r for r in results if r is not None]

    # -- execution strategies ----------------------------------------------

    def _run_inline(self, specs, pending, results) -> None:
        for index in pending:
            spec = specs[index]
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload, wall = _execute_timed(spec)
                except Exception as exc:  # noqa: BLE001 - reported upward
                    if attempts <= self.retries:
                        self._note_retry(spec, attempts, exc)
                        continue
                    results[index] = self._failure(spec, attempts, exc)
                    break
                results[index] = self._success(spec, payload, wall, attempts)
                break

    def _run_pool(self, specs, pending, results) -> None:
        queue = [(index, 1) for index in pending]  # (spec index, attempt)
        inflight: dict[Any, tuple[int, int]] = {}
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(queue)))
        gauge = self.metrics.gauge("runner.inflight")
        try:
            while queue or inflight:
                while queue and len(inflight) < self.workers:
                    index, attempt = queue.pop(0)
                    future = pool.submit(_execute_timed, specs[index])
                    inflight[future] = (index, attempt)
                    gauge.set(len(inflight))
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index, attempt = inflight.pop(future)
                    spec = specs[index]
                    exc = future.exception()
                    if exc is None:
                        payload, wall = future.result()
                        results[index] = self._success(
                            spec, payload, wall, attempt)
                    elif isinstance(exc, BrokenProcessPool):
                        # The worker died under this job (or a neighbour);
                        # the pool is unusable — rebuild and requeue.
                        broken = True
                        self._requeue_or_fail(queue, results, spec, index,
                                              attempt, exc)
                    elif attempt <= self.retries:
                        self._note_retry(spec, attempt, exc)
                        time.sleep(self.backoff_s * (2 ** (attempt - 1)))
                        queue.append((index, attempt + 1))
                    else:
                        results[index] = self._failure(spec, attempt, exc)
                if broken:
                    # Jobs stranded in the dead pool get requeued too.
                    for future, (index, attempt) in list(inflight.items()):
                        self._requeue_or_fail(
                            queue, results, specs[index], index, attempt,
                            BrokenProcessPool("worker pool died"))
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.workers, max(1, len(queue))))
                gauge.set(len(inflight))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _requeue_or_fail(self, queue, results, spec, index, attempt,
                         exc) -> None:
        if attempt <= self.retries:
            self._note_retry(spec, attempt, exc)
            time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            queue.append((index, attempt + 1))
        else:
            results[index] = self._failure(spec, attempt, exc)

    # -- bookkeeping -------------------------------------------------------

    def _success(self, spec: JobSpec, payload: Any, wall: float,
                 attempts: int) -> JobResult:
        digest = payload_digest(payload)
        if self.cache is not None:
            self.cache.put(spec, payload, wall_s=wall)
        result = JobResult(spec=spec, digest=spec.digest, payload=payload,
                           result_digest=digest, wall_s=wall,
                           attempts=attempts)
        self.metrics.counter("runner.jobs", status="ok").inc()
        self.metrics.histogram("runner.wall_s").observe(wall)
        self._progress(result)
        return result

    def _failure(self, spec: JobSpec, attempts: int,
                 exc: BaseException) -> JobResult:
        result = JobResult(spec=spec, digest=spec.digest, attempts=attempts,
                           error=f"{type(exc).__name__}: {exc}")
        self.metrics.counter("runner.jobs", status="failed").inc()
        self._progress(result)
        return result

    def _note_retry(self, spec: JobSpec, attempt: int,
                    exc: BaseException) -> None:
        self.metrics.counter("runner.jobs", status="retried").inc()
        if self.out:
            self.out(f"retry {spec.display} (attempt {attempt} failed: "
                     f"{type(exc).__name__}: {exc})")

    def _progress(self, result: JobResult) -> None:
        self._done += 1
        self.metrics.gauge("runner.done").set(self._done)
        if not result.cached:
            self._wall_done += result.wall_s
        if not self.out:
            return
        state = ("cached" if result.cached
                 else "ok" if result.ok else "FAIL")
        line = (f"[{self._done}/{self._total}] {state:6s} "
                f"{result.spec.display}")
        if result.ok:
            line += f" result={result.result_digest[:12]}"
        if not result.cached:
            line += f" {result.wall_s:.2f}s"
        remaining = self._total - self._done
        if remaining and self._done:
            elapsed = time.perf_counter() - self._start
            eta = elapsed / self._done * remaining
            line += f" eta={eta:.0f}s"
        if result.error:
            line += f" error={result.error}"
        self.out(line)


def run_specs(specs: Sequence[JobSpec], *, workers: int = 1,
              cache: ResultCache | str | os.PathLike | None = None,
              out: Callable[[str], None] | None = None,
              **kwargs: Any) -> list[JobResult]:
    """One-shot convenience wrapper around :class:`Runner`."""
    return Runner(workers=workers, cache=cache, out=out, **kwargs).run(specs)
