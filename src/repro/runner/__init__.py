"""Batch execution: fan simulation jobs across worker processes.

The experiment pipeline (paper-figure sweeps, fuzz seed sweeps, soak
workloads) is embarrassingly parallel — every job is a pure function of
a :class:`JobSpec` — so this package turns the old inline for-loops
into batch workloads:

- :mod:`repro.runner.spec` — serializable job descriptions and their
  canonical content digests;
- :mod:`repro.runner.jobs` — the executor registry (what a job *does*);
- :mod:`repro.runner.cache` — content-addressed on-disk result cache
  (same spec → instant, bit-identical re-run);
- :mod:`repro.runner.runner` — the process pool with crash retry and
  live progress/ETA via :mod:`repro.sim.metrics`.

Front ends: ``python -m repro`` (the unified CLI),
:func:`repro.bench.figures.build_figure` and
:func:`repro.check.fuzz.run_sweep`.
"""

from repro.runner.cache import CACHE_ENV, ResultCache, default_cache_dir
from repro.runner.jobs import EXECUTORS, execute, register
from repro.runner.runner import Runner, default_workers, run_specs
from repro.runner.spec import (
    CACHE_SCHEMA,
    JobResult,
    JobSpec,
    canonical_json,
    payload_digest,
)

__all__ = [
    "CACHE_ENV",
    "CACHE_SCHEMA",
    "EXECUTORS",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "Runner",
    "canonical_json",
    "default_cache_dir",
    "default_workers",
    "execute",
    "payload_digest",
    "register",
    "run_specs",
]
