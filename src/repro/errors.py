"""Exception hierarchy for the repro package.

Every layer of the stack raises a subclass of :class:`ReproError`, so user
code can catch failures from the simulator, Madeleine, or the MPI layer
either individually or wholesale.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the repro package."""


class SimulationError(ReproError):
    """Raised for discrete-event kernel misuse (e.g. scheduling in the past)."""


class DeadlockError(SimulationError):
    """Raised when the simulation ends while coroutines are still blocked.

    This is the simulator's equivalent of a hung MPI job: the event queue
    drained but at least one thread is waiting on a condition that can no
    longer be signalled.  ``waiting`` maps each blocked thread to a
    description of *what* it is blocked on (the condition/mailbox/flag
    name) — fault bugs surface as hangs, and knowing the waitable is
    usually enough to find the lost message.

    ``cycle`` and ``diagnosis`` come from the rank-level wait-for-graph
    (see :mod:`repro.check.waitgraph`): when the blocked waits form a
    cycle (rank 0 waits on rank 1 waits on rank 0...), ``cycle`` lists
    the ranks in cycle order and ``diagnosis`` names each edge.
    """

    def __init__(self, message: str, blocked: list[str] | None = None,
                 waiting: dict[str, str] | None = None,
                 cycle: list[int] | None = None,
                 diagnosis: str | None = None):
        #: Names of the threads that were still blocked, for diagnostics.
        self.blocked = list(blocked or [])
        #: thread name -> description of the waitable it blocks on.
        self.waiting = dict(waiting or {})
        #: Ranks forming the wait-for cycle (empty when none was found).
        self.cycle = list(cycle or [])
        #: Human-readable wait-for-graph report (one line per edge).
        self.diagnosis = diagnosis or ""
        if self.waiting:
            detail = "; ".join(f"{name} <- {what}"
                               for name, what in self.waiting.items())
            message = f"{message} [{detail}]"
        if self.diagnosis:
            message = f"{message}\n{self.diagnosis}"
        super().__init__(message)


class CheckViolation(ReproError):
    """A protocol invariant broke (the online checker, repro.check).

    Structured so a failing fuzz seed yields an actionable report: the
    invariant name, the world rank that observed it, the
    connection/stream it happened on, and the virtual time.
    """

    def __init__(self, invariant: str, rank: int | None, details: str,
                 connection: str | None = None, time: int = 0):
        #: Invariant name (see the table in DESIGN.md "Correctness checking").
        self.invariant = invariant
        #: World rank at which the violation was observed (None = global).
        self.rank = rank
        #: Connection/stream the violation happened on, when one exists.
        self.connection = connection
        #: Virtual time (ns) of the observation.
        self.time = time
        self.details = details
        where = f"rank {rank}" if rank is not None else "world"
        conn = f" ({connection})" if connection else ""
        super().__init__(f"[{invariant}] {where}{conn} t={time}ns: {details}")


class NetworkError(ReproError):
    """Raised by the network substrate (bad routes, adapter misuse)."""


class RouteError(NetworkError):
    """Raised when no link connects two adapters that try to communicate."""


class MadeleineError(ReproError):
    """Raised by the Madeleine communication library."""


class PackingError(MadeleineError):
    """Raised for invalid pack/unpack sequences (flag ordering rules)."""


class ChannelError(MadeleineError):
    """Raised for channel misuse (unknown remote, closed channel...)."""


class ChannelDeadError(ChannelError):
    """Raised when communication is attempted on a failed-over channel."""


class FaultError(ReproError):
    """Base class of the fault-injection/reliability branch."""


class TransportError(FaultError):
    """A reliable connection exhausted its retransmission budget."""

    def __init__(self, message: str, channel: str | None = None,
                 remote_rank: int | None = None):
        super().__init__(message)
        self.channel = channel
        self.remote_rank = remote_rank


class FailoverExhaustedError(TransportError):
    """No surviving channel remains to re-route failed traffic onto."""


class MPIError(ReproError):
    """Base class for MPI-level errors (the MPICH layer)."""

    #: MPI-like error class name, e.g. ``"MPI_ERR_RANK"``.
    error_class: str = "MPI_ERR_OTHER"


class MPIRankError(MPIError):
    """Invalid rank argument."""

    error_class = "MPI_ERR_RANK"


class MPITagError(MPIError):
    """Invalid tag argument."""

    error_class = "MPI_ERR_TAG"


class MPICommError(MPIError):
    """Invalid communicator."""

    error_class = "MPI_ERR_COMM"


class MPIDatatypeError(MPIError):
    """Invalid or uncommitted datatype."""

    error_class = "MPI_ERR_TYPE"


class MPITruncationError(MPIError):
    """An incoming message was longer than the posted receive buffer."""

    error_class = "MPI_ERR_TRUNCATE"


class MPIRequestError(MPIError):
    """Invalid request handle or operation on an inactive request."""

    error_class = "MPI_ERR_REQUEST"


class MPIProcFailedError(MPIError):
    """A peer process involved in the operation is dead (ULFM-style).

    Raised instead of hanging: pending sends/recvs/waits and collectives
    that can no longer complete because a participating rank died resolve
    to this error.  ``failed_rank`` is the *world* rank that was declared
    dead (when a single culprit is known).
    """

    error_class = "MPI_ERR_PROC_FAILED"

    def __init__(self, message: str, failed_rank: int | None = None):
        super().__init__(message)
        self.failed_rank = failed_rank


class MPIRevokedError(MPIError):
    """The communicator was revoked (``Communicator.revoke``).

    Every subsequent (and pending) operation on a revoked communicator
    raises this instead of blocking — the ULFM contract that lets
    survivors abandon a broken communication pattern and regroup via
    ``shrink()``.
    """

    error_class = "MPI_ERR_REVOKED"


class ConfigurationError(ReproError):
    """Raised for invalid cluster/session configuration."""
