"""Job executors: the pure functions the batch runner fans out.

An executor takes a :class:`~repro.runner.spec.JobSpec`'s ``params``
(plus its ``seed``) and returns a **JSON-safe payload** — it runs in a
worker *process*, so everything it touches must be importable at module
level and everything it returns must pickle and serialize.  Executors
must be pure functions of the spec: the content-addressed cache assumes
that re-running a spec reproduces its payload bit for bit, which the
deterministic simulator guarantees.

This module *is* the executor registry (``repro.runner.jobs`` re-exports
it unchanged, so historical imports and JobSpec digests still hold).
Built-in kinds:

``workload``
    One run of any workload in the unified registry
    (:mod:`repro.workloads.registry`) — ``params`` carry the workload
    name, ``check``/``metrics`` toggles, and the workload's own
    parameter overrides; the spec ``seed`` is the workload seed.  This
    is what ``python -m repro run --workload`` and the macro-benchmark
    sweeps schedule.
``mpi_pingpong``
    Full-stack ping-pong (:func:`repro.bench.pingpong.mpi_pingpong`);
    payload mirrors :class:`~repro.bench.pingpong.PingPongResult`.
``raw_pingpong``
    Madeleine-only ping-pong (Table 1 / raw curves).
``baseline_point``
    One analytic-comparator evaluation (no simulation; cached anyway so
    figure assembly is uniform).
``fuzz_workload``
    One ``(workload, fuzz seed)`` run under the online checker — the
    unit the fuzz sweep parallelizes.
``coll_bench``
    One ``(operation, algorithm)`` collective timing on a multirail SMP
    cluster (:func:`repro.bench.collectives.collective_bench`) — the
    unit of the flat/hier/multilane comparison sweep.

Tests register ad-hoc kinds with :func:`register`; unknown kinds raise
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.spec import JobSpec

#: kind -> executor(params, seed) -> JSON-safe payload.
EXECUTORS: dict[str, Callable[..., Any]] = {}


def register(kind: str) -> Callable[[Callable], Callable]:
    """Class-of-service decorator: ``@register("my_kind")``."""
    def deco(fn: Callable) -> Callable:
        EXECUTORS[kind] = fn
        return fn
    return deco


def execute(spec: "JobSpec") -> Any:
    """Run ``spec`` in this process and return its payload."""
    executor = EXECUTORS.get(spec.kind)
    if executor is None:
        raise ConfigurationError(
            f"unknown job kind {spec.kind!r}; known: {sorted(EXECUTORS)}")
    return executor(dict(spec.params), spec.seed)


# ---------------------------------------------------------------------------
# the unified-registry executor
# ---------------------------------------------------------------------------

@register("workload")
def _run_workload_kind(params: dict[str, Any], seed: int) -> dict[str, Any]:
    # Package import, not registry import: pulling ``repro.workloads``
    # runs the registration side effects, so a worker process that only
    # imported the executor registry still sees every built-in workload.
    from repro.workloads import run

    name = params.pop("workload")
    check = bool(params.pop("check", False))
    metrics = bool(params.pop("metrics", False))
    outcome = run(name, seed=seed, params=params, check=check,
                  instrumentation=metrics)
    return {
        "workload": outcome.workload,
        "seed": outcome.seed,
        "params": outcome.params,
        "result_digest": outcome.digest,
        "time_ns": outcome.time_ns,
        "metrics": outcome.metrics,
        "violations": [str(v) for v in outcome.violations],
    }


# ---------------------------------------------------------------------------
# bench + baseline executors
# ---------------------------------------------------------------------------

def _pingpong_payload(result) -> dict[str, Any]:
    """A PingPongResult as its constructor kwargs (lossless round-trip)."""
    return {
        "label": result.label,
        "size": result.size,
        "reps": result.reps,
        "one_way_ns": result.one_way_ns,
        "mean_one_way_ns": result.mean_one_way_ns,
    }


def pingpong_result(payload: Mapping[str, Any]):
    """Rehydrate a :class:`PingPongResult` from an executor payload."""
    from repro.bench.pingpong import PingPongResult
    return PingPongResult(**payload)


@register("mpi_pingpong")
def _run_mpi_pingpong(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.bench.pingpong import mpi_pingpong

    del seed  # the pingpong worlds run on the engine's default seed
    params["networks"] = tuple(params.get("networks", ("sisci",)))
    return _pingpong_payload(mpi_pingpong(**params))


@register("raw_pingpong")
def _run_raw_pingpong(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.bench.raw_madeleine import raw_madeleine_pingpong

    del seed
    return _pingpong_payload(raw_madeleine_pingpong(**params))


@register("baseline_point")
def _run_baseline_point(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.baselines import ALL_BASELINES

    del seed
    model = ALL_BASELINES[params["model"]]
    size = int(params["size"])
    return {
        "model": model.name,
        "source": model.source,
        "size": size,
        "latency_us": model.latency_us(size),
        "bandwidth_mb_s": model.bandwidth_mb_s(size),
    }


@register("coll_bench")
def _run_coll_bench(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.bench.collectives import collective_bench

    del seed  # virtual-time benchmark; the engine default seed applies
    return collective_bench(**params)


@register("rma_bench")
def _run_rma_bench(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.bench.rma import rma_bench

    del seed  # virtual-time benchmark; the engine default seed applies
    return rma_bench(**params)


@register("fuzz_workload")
def _run_fuzz_workload(params: dict[str, Any], seed: int) -> dict[str, Any]:
    from repro.check.fuzz import run_workload

    del seed  # the fuzz seed is a modelled parameter, not the spec seed
    fuzz_seed = params.get("fuzz_seed")
    run = run_workload(
        params["workload"], fuzz_seed,
        workload_seed=int(params.get("workload_seed", 0)),
        check=bool(params.get("check", True)),
    )
    payload: dict[str, Any] = {
        "workload": run.workload,
        "fuzz_seed": run.fuzz_seed,
        "workload_seed": run.workload_seed,
        "ok": run.ok,
        "error_type": type(run.error).__name__ if run.error else None,
        "error": str(run.error) if run.error else None,
        "digest": run.digest,
        "time_ns": run.time_ns,
        "decisions": run.decisions,
        "violations": [str(v) for v in run.violations],
        "results_repr": repr(run.results),
        "repro": run.repro,
    }
    if run.error is not None:
        # The failing schedule's full trace rides along so the sweep can
        # write a repro artifact without re-running the seed.
        payload["trace"] = [
            f"{rec.time} {rec.category} {sorted(rec.fields.items())}"
            for rec in run.trace_records
        ]
    return payload
