"""``ml_training`` — data-parallel training in the chainermn mold.

Each optimizer step is the communication shape of synchronous
data-parallel SGD:

1. the root broadcasts the model state (every step, the multi-node
   optimizer's defensive re-sync — ``algorithm="hier"`` by default, so
   the intra-node/leader decomposition from PR 6 carries it);
2. the backward pass sweeps the layers in reverse, *bucketing*
   gradients the way DDP/chainermn do: layers fill a bucket until it
   exceeds ``bucket_kib``, then the bucket's ``allreduce_grad`` is
   issued;
3. compute and communication **overlap**: each bucket's allreduce runs
   in a temporary Marcel thread (the §4.2.3 mechanism, same as the
   multi-lane collectives) on a dedicated ``dup()``-ed gradient
   communicator while the main thread charges the *next* bucket's
   backward compute.  At most one allreduce is in flight, so gradient
   matching stays ordered;
4. the optimizer update charges CPU proportional to the model size.

Layer sizes come from a **log-normal** distribution (the empirical
shape of real model parameter tensors: many small bias/norm tensors, a
few large matmul weights), drawn from the workload seed at build time —
so one seed is one model, whatever the schedule.

Gradients are integer-valued float64 arrays: float summation of
integers this small is exact and associative, so the flat, hierarchical
and multi-lane allreduces must agree **element for element** — which is
what the differential test asserts, and why the per-step checksums in
the result are schedule-independent under the fuzzer.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.cluster.config import multirail_smp_cluster
from repro.errors import ConfigurationError
from repro.mpi.reduce_ops import SUM
from repro.sim.coroutines import charge, wait
from repro.sim.engine import seed_namespace

from repro.workloads.registry import Param, Workload, register

#: Log-normal layer-size distribution (bytes): median 8 KiB, heavy
#: right tail — clamped so every layer stays a sane tensor.
_MEDIAN_BYTES = 8192
_SIGMA = 1.1
_MIN_BYTES, _MAX_BYTES = 256, 262_144


def model_layers(seed: int, layers: int) -> list[int]:
    """The per-layer gradient sizes (bytes) for one workload seed."""
    rng = random.Random(seed_namespace("ml-training", seed))
    sizes = []
    for _ in range(layers):
        size = int(rng.lognormvariate(math.log(_MEDIAN_BYTES), _SIGMA))
        # float64 elements: round to the element grid.
        sizes.append(max(_MIN_BYTES, min(_MAX_BYTES, size)) // 8 * 8)
    return sizes


def gradient_buckets(sizes: list[int], bucket_bytes: int) -> list[list[int]]:
    """Reverse-order (backward-pass) greedy bucketing of layer indices."""
    buckets: list[list[int]] = []
    current: list[int] = []
    filled = 0
    for layer in reversed(range(len(sizes))):
        current.append(layer)
        filled += sizes[layer]
        if filled >= bucket_bytes:
            buckets.append(current)
            current, filled = [], 0
    if current:
        buckets.append(current)
    return buckets


def _grad(count: int, rank: int, step: int, bucket: int) -> np.ndarray:
    """Integer-valued float64 gradient — exact under float summation up
    to well past 512 ranks, so reduction order cannot matter."""
    base = np.arange(count, dtype=np.float64)
    return (base * 31 + rank * 7 + step * 13 + bucket * 3) % 1001.0


def _allreduce_gen(comm, data, op, algorithm):
    result = yield from comm.allreduce(data, op, algorithm=algorithm)
    return result


def _build_ml_training(seed: int, *, ranks: int, processes_per_node: int,
                       rails: int, network: str, layers: int,
                       bucket_kib: int, steps: int, algorithm: str,
                       compute_ns_per_byte: int, overlap: bool):
    if ranks % processes_per_node:
        raise ConfigurationError(
            f"ml_training: ranks={ranks} not divisible by "
            f"processes_per_node={processes_per_node}")
    config = multirail_smp_cluster(nodes=ranks // processes_per_node,
                                   processes_per_node=processes_per_node,
                                   rails=rails, network=network)
    sizes = model_layers(seed, layers)
    buckets = gradient_buckets(sizes, bucket_kib * 1024)
    model_bytes = sum(sizes)

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        runtime = mpi.process.runtime
        # Gradient traffic gets its own contexts: the overlapped
        # allreduce must never interleave with the model bcast's tag
        # sequence on the world communicator.
        grad_comm = yield from comm.dup()
        checksums = []
        for step in range(steps):
            # (1) model state broadcast, every step, from rank 0.
            state = (np.full(model_bytes // 8, float(step + 1))
                     if me == 0 else None)
            state = yield from comm.bcast(state, root=0, algorithm=algorithm)
            version = float(state[0])

            # (2)+(3) backward sweep: charge this bucket's compute, then
            # allreduce it in a temp thread while the next bucket's
            # compute charges — one allreduce in flight at a time.
            pending = None
            reduced = []
            for index, bucket in enumerate(buckets):
                bucket_bytes = sum(sizes[layer] for layer in bucket)
                yield charge(bucket_bytes * compute_ns_per_byte)
                grad = _grad(bucket_bytes // 8, me, step, index)
                if not overlap:
                    total = yield from grad_comm.allreduce(
                        grad, SUM, algorithm=algorithm)
                    reduced.append(total)
                    continue
                if pending is not None:
                    reduced.append((yield wait(pending)))
                # recycle=False: the handle is retained and joined.
                pending = runtime.spawn_temporary(
                    _allreduce_gen(grad_comm, grad, SUM, algorithm),
                    name=f"grad-allreduce{index}", recycle=False)
            if pending is not None:
                reduced.append((yield wait(pending)))

            # (4) optimizer update: pure compute over the full model.
            yield charge(model_bytes * compute_ns_per_byte // 4)
            step_sum = sum(int(np.asarray(total).sum()) for total in reduced)
            checksums.append((step, int(version), step_sum))
        yield from comm.barrier()
        return (model_bytes, tuple(len(b) for b in buckets),
                tuple(checksums))

    return config, program


register(Workload(
    "ml_training",
    "data-parallel SGD: per-step model bcast + bucketed gradient "
    "allreduce with compute/communication overlap",
    _build_ml_training,
    params={
        "ranks": Param(8, "world size (divisible by processes_per_node)"),
        "processes_per_node": Param(2, "ranks per SMP node"),
        "rails": Param(2, "network boards per node"),
        "network": Param("sisci", "fabric carrying the inter-node traffic"),
        "layers": Param(12, "model tensor count (log-normal sizes)"),
        "bucket_kib": Param(32, "gradient bucket threshold (KiB)"),
        "steps": Param(3, "optimizer steps"),
        "algorithm": Param("hier", "collective algorithm for bcast + "
                           "allreduce_grad (default: node-aware "
                           "hierarchical)"),
        "compute_ns_per_byte": Param(25, "modelled backward-pass cost"),
        "overlap": Param(True, "overlap bucket compute with the previous "
                         "bucket's allreduce (temp thread)"),
    },
    metrics=("chmad.packets", "mad.bytes", "poll.wakeups"),
    tags=frozenset({"fuzz", "macro"}),
))
