"""``cfd_halo`` — Maia-style jagged part-to-part halo exchange.

The communication shape of a partitioned CFD solver: every iteration,
each rank charges stencil compute over its cells, exchanges one halo
message per face with each topological neighbour, and periodically
joins a global residual allreduce.

What makes it *application-shaped* rather than another ping-pong:

- **jagged faces** — partitioners do not produce equal faces.  Each
  directed edge gets its own payload size, drawn log-uniformly at build
  time between ``min_face`` and ``max_face`` bytes, so one iteration
  mixes eager (< 8 KiB on SCI), rendezvous, and — on the ``ib`` fabric —
  rendezvous-over-RDMA (> 16 KiB) traffic on the same wire;
- **asymmetry** — the two directions of one face differ (what rank A
  sends rank B is not what B sends A), like interpolation weights on a
  non-matching mesh interface;
- **real topologies** — ``topology="cart"`` runs on a periodic 2-D
  process grid (``create_cart``/``shift``, the heat2d layering:
  smp_plug inside a node, the fabric across), ``topology="graph"`` on
  an irregular symmetric graph (ring + seed-drawn chords) via
  ``create_graph``, the unstructured-mesh case.

Results are canonical: the sorted multiset of received
``(iteration, source, size, checksum)`` tuples plus the exact integer
residuals — schedule-independent by construction, so the fuzzer can
drive it like any protocol workload.
"""

from __future__ import annotations

import math
import random

from repro.cluster.node import ClusterConfig, NodeSpec
from repro.errors import ConfigurationError
from repro.mpi.cartesian import dims_create
from repro.mpi.graph import create_graph
from repro.mpi.reduce_ops import SUM
from repro.sim.coroutines import charge
from repro.sim.engine import seed_namespace

from repro.workloads.registry import Param, Workload, register


def _face_size(rng: random.Random, min_face: int, max_face: int) -> int:
    """Log-uniform draw: small faces are common, big ones real."""
    return int(math.exp(rng.uniform(math.log(min_face), math.log(max_face))))


def halo_graph(seed: int, ranks: int) -> dict[int, tuple[int, ...]]:
    """A symmetric irregular topology: ring + seed-drawn chords."""
    rng = random.Random(seed_namespace("cfd-halo", seed, "graph"))
    neighbors: dict[int, set[int]] = {r: set() for r in range(ranks)}
    for r in range(ranks):
        neighbors[r].add((r + 1) % ranks)
        neighbors[(r + 1) % ranks].add(r)
    for _ in range(max(1, ranks // 2)):
        a = rng.randrange(ranks)
        b = rng.randrange(ranks)
        if a != b:
            neighbors[a].add(b)
            neighbors[b].add(a)
    return {r: tuple(sorted(neighbors[r])) for r in range(ranks)}


def face_sizes(seed: int, edges: list[tuple[int, int]], min_face: int,
               max_face: int) -> dict[tuple[int, int], int]:
    """Per *directed* edge payload sizes, in one canonical draw order —
    jagged and asymmetric, but identical for every rank and schedule."""
    rng = random.Random(seed_namespace("cfd-halo", seed, "faces"))
    return {edge: _face_size(rng, min_face, max_face)
            for edge in sorted(edges)}


def _payload(size: int, sender: int, iteration: int) -> bytes:
    return bytes([(sender * 31 + iteration * 7) % 251]) * size


def _checksum(data: bytes) -> int:
    return (len(data) * 65_537 + (data[0] if data else 0)) % 1_000_003


def _build_cfd_halo(seed: int, *, ranks: int, processes_per_node: int,
                    network: str, topology: str, iters: int,
                    min_face: int, max_face: int, cells_per_rank: int,
                    compute_ns_per_cell: int, residual_every: int):
    if ranks % processes_per_node:
        raise ConfigurationError(
            f"cfd_halo: ranks={ranks} not divisible by "
            f"processes_per_node={processes_per_node}")
    if topology not in ("cart", "graph"):
        raise ConfigurationError(
            f"cfd_halo: unknown topology {topology!r} (cart or graph)")
    config = ClusterConfig(nodes=[
        NodeSpec(f"n{i}", networks=(network, "tcp"),
                 processes=processes_per_node)
        for i in range(ranks // processes_per_node)])

    if topology == "graph":
        adjacency = halo_graph(seed, ranks)
        edges = [(a, b) for a, nbrs in adjacency.items() for b in nbrs]
    else:
        dims = dims_create(ranks, 2)
        edges = []
        for r in range(ranks):
            pr, pc = divmod(r, dims[1])
            for nr, nc in ((pr - 1, pc), (pr + 1, pc),
                           (pr, pc - 1), (pr, pc + 1)):
                edges.append((r, (nr % dims[0]) * dims[1] + (nc % dims[1])))
    sizes = face_sizes(seed, edges, min_face, max_face)

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        if topology == "graph":
            index, flat = [], []
            for r in range(ranks):
                flat.extend(adjacency[r])
                index.append(len(flat))
            topo = yield from create_graph(comm, tuple(index), tuple(flat))
            my_neighbors = topo.neighbors
        else:
            topo = yield from comm.create_cart(dims, periods=(True, True))
            my_neighbors = []
            for direction in (0, 1):
                low, high = topo.shift(direction, 1)
                my_neighbors += [low, high]

        received = []
        residuals = []
        for iteration in range(iters):
            # Stencil compute over this rank's cells.
            yield charge(cells_per_rank * compute_ns_per_cell)
            # Halo exchange: post the jagged sends, then drain one
            # receive per neighbour.  Tags carry the iteration so two
            # neighbours sharing several faces (graph chords + ring)
            # stay within one ordered stream each.
            requests = []
            for neighbor in my_neighbors:
                data = _payload(sizes[(me, neighbor)], me, iteration)
                requests.append(topo.isend(data, dest=neighbor,
                                           tag=iteration % 8))
            for neighbor in my_neighbors:
                data, _status = yield from topo.recv(source=neighbor,
                                                     tag=iteration % 8)
                received.append((iteration, neighbor, len(data),
                                 _checksum(data)))
            for request in requests:
                yield from request.wait()
            # Global residual: exact integer sum, every few iterations.
            if iteration % residual_every == 0:
                local = sum(entry[3] for entry in received) % 1_000_003
                total = yield from comm.allreduce(local, SUM)
                residuals.append((iteration, total))
        yield from comm.barrier()
        return (tuple(sorted(received)), tuple(residuals))

    return config, program


register(Workload(
    "cfd_halo",
    "jagged part-to-part halo exchange on cart/graph topologies with "
    "per-face asymmetry and periodic residual allreduces",
    _build_cfd_halo,
    params={
        "ranks": Param(8, "world size (divisible by processes_per_node)"),
        "processes_per_node": Param(2, "ranks per SMP node"),
        "network": Param("ib", "inter-node fabric; 'ib' exercises the "
                         "rendezvous-over-RDMA path above 16 KiB"),
        "topology": Param("cart", "'cart' (periodic 2-D grid) or 'graph' "
                          "(ring + seed-drawn chords)"),
        "iters": Param(3, "solver iterations"),
        "min_face": Param(512, "smallest face payload (bytes)"),
        "max_face": Param(98_304, "largest face payload (bytes)"),
        "cells_per_rank": Param(4096, "local mesh cells (compute charge)"),
        "compute_ns_per_cell": Param(120, "modelled stencil cost per cell"),
        "residual_every": Param(2, "iterations between residual "
                                "allreduces"),
    },
    metrics=("chmad.packets", "mad.bytes", "rdma.writes"),
    tags=frozenset({"fuzz", "macro"}),
))
