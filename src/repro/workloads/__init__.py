"""``repro.workloads`` — one registry for every runnable workload.

Importing this package populates both registries:

- the **workload registry** (:mod:`.registry`) with the micro/fuzz
  workloads (:mod:`.micro`) and the application-shaped macro-workloads
  (:mod:`.ml_training`, :mod:`.cfd_halo`);
- the **job-executor registry** (:mod:`.executors`) with the built-in
  job kinds, including the generic ``workload`` kind that runs any
  registered workload under the batch runner's content-addressed cache.

``repro.check.workloads`` and ``repro.runner.jobs`` are thin re-exports
of these modules, kept so historical imports, golden digests and
JobSpec cache keys stay bit-identical.
"""

from repro.workloads.registry import (
    Param,
    Workload,
    WorkloadResult,
    WORKLOADS,
    default_digest,
    get,
    names,
    register,
    run,
)
from repro.workloads import micro as _micro  # noqa: F401  (registers)
from repro.workloads import ml_training as _ml  # noqa: F401  (registers)
from repro.workloads import cfd_halo as _cfd  # noqa: F401  (registers)
from repro.workloads import executors  # noqa: F401  (registers job kinds)

__all__ = [
    "Param",
    "Workload",
    "WorkloadResult",
    "WORKLOADS",
    "default_digest",
    "executors",
    "get",
    "names",
    "register",
    "run",
]
