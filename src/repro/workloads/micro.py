"""The micro/protocol workloads (formerly ``repro.check.workloads``).

Each workload builds a cluster configuration plus a rank program whose
*return value is schedule-independent*: whatever legal interleaving the
fuzzer provokes, every rank must compute the same user-visible result.
The fuzz sweep exploits this — it runs one workload across many fuzz
seeds with the online checker enabled and fails if either (a) a checker
invariant trips, or (b) two seeds disagree on the results.

Programs therefore reduce anything timing-dependent to a canonical form
before returning it: the mixed workload collects wildcard receives into
a *sorted multiset* (which request caught which message depends on the
schedule; the set of delivered messages does not).

Pitfalls baked into these programs, learned the hard way:

- collectives run on the communicator's hidden collective context, so
  posted ``ANY_SOURCE``/``ANY_TAG`` wildcards cannot steal their
  traffic — but the mixed workload still phases collectives first so
  the p2p storm and the collective schedule do not share the wire;
- every receive is posted before any send, so blocking/synchronous
  sends can always rendezvous (no send-send cycles for the fuzzer to
  tip into deadlock — *real* deadlocks are the negative tests' job);
- the lossy variant reuses the mixed program verbatim on lossy fabrics:
  the reliable transport must make packet loss invisible to results.

The builder bodies are unchanged from their ``check/workloads.py``
days on purpose: fuzz-seed digests and goldens are bit-identical
across the move to the unified registry.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator

import numpy as np

from repro.cluster.node import ClusterConfig, NodeSpec
from repro.faults import lossy_plan
from repro.sim.engine import seed_namespace
from repro.mpi import coll
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.reduce_ops import MAX, SUM

from repro.workloads.registry import Workload, register

# The flat zoo, fetched from the registry (the historical
# repro.mpi.algorithms names; that module's free functions are gone).
_BCAST_ZOO = {name: coll.get("bcast", name).fn
              for name in ("linear", "binomial")}
_ALLREDUCE_ZOO = {name: coll.get("allreduce", name).fn
                  for name in ("reduce_bcast", "recursive_doubling")}
_allgather_bruck = coll.get("allgather", "bruck").fn

#: ``build(workload_seed) -> (config, program)``; ``program(env)`` is a
#: rank generator whose return value must not depend on the schedule.
Builder = Callable[[int], tuple[ClusterConfig, Callable[[Any], Generator]]]


def _nodes(count: int, networks: tuple[str, ...]) -> list[NodeSpec]:
    return [NodeSpec(f"n{i}", networks=networks) for i in range(count)]


# ---------------------------------------------------------------------------
# pingpong: the classic 2-rank latency loop (eager sizes only)
# ---------------------------------------------------------------------------

def _build_pingpong(workload_seed: int):
    del workload_seed  # shape is fixed; the fuzzer supplies the variation
    config = ClusterConfig(nodes=_nodes(2, ("sisci",)))
    # Sizes straddle the 8 KB SCI switch point: the 16 KB round goes
    # rendezvous, whose SENDOK temp threads give the fuzzer something
    # to jitter.  isend (temp-thread send bodies) for the same reason.
    sizes = (64, 1024, 4096, 16_384)
    reps, warmup = 4, 2

    def program(mpi):
        comm = mpi.comm_world
        me, peer = comm.rank, 1 - comm.rank
        echoes = []
        for size in sizes:
            for rep in range(warmup + reps):
                payload = (size, rep)
                if me == 0:
                    request = comm.isend(payload, dest=peer, tag=5, size=size)
                    data, _status = yield from comm.recv(source=peer, tag=5)
                    yield from request.wait()
                else:
                    data, _status = yield from comm.recv(source=peer, tag=5)
                    yield from comm.send(payload, dest=peer, tag=5, size=size)
                echoes.append(data)
        return tuple(echoes)

    return config, program


# ---------------------------------------------------------------------------
# collectives: every algorithm-registry variant plus the defaults
# ---------------------------------------------------------------------------

def _build_collectives(workload_seed: int):
    del workload_seed
    config = ClusterConfig(nodes=_nodes(4, ("sisci", "tcp")))

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        out = []
        for name in sorted(_BCAST_ZOO):
            obj = ("payload", 1) if me == 1 else None
            value = yield from _BCAST_ZOO[name](comm, obj, root=1)
            out.append((f"bcast:{name}", value))
        for name in sorted(_ALLREDUCE_ZOO):
            value = yield from _ALLREDUCE_ZOO[name](comm, me + 1, SUM)
            out.append((f"allreduce:{name}", value))
        value = yield from _allgather_bruck(comm, me * 10)
        out.append(("allgather:bruck", tuple(value)))
        value = yield from comm.allgather(me * 10)
        out.append(("allgather:ring", tuple(value)))
        value = yield from comm.alltoall([f"{me}->{d}" for d in range(comm.size)])
        out.append(("alltoall", tuple(value)))
        value = yield from comm.alltoallv(
            ["x" * (d + 1) * (me + 1) for d in range(comm.size)])
        out.append(("alltoallv", tuple(value)))
        value = yield from comm.reduce(me, MAX, root=0)
        out.append(("reduce:max", value))
        value = yield from comm.scan(me + 1)
        out.append(("scan", value))
        value = yield from comm.exscan(me + 1)
        out.append(("exscan", value))
        yield from comm.barrier()
        return tuple(out)

    return config, program


# ---------------------------------------------------------------------------
# hier_collectives: node-aware two-level algorithms on SMP nodes
# ---------------------------------------------------------------------------

def _build_hier_collectives(workload_seed: int):
    del workload_seed
    # Four dual-rank SMP nodes: smp_plug inside a node, ch_mad across —
    # the layering the hierarchical family decomposes over.
    config = ClusterConfig(nodes=[
        NodeSpec(f"smp{i}", networks=("sisci", "tcp"), processes=2)
        for i in range(4)])

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        out = []
        total = yield from comm.allreduce(me + 1, SUM, algorithm="hier")
        out.append(("allreduce:hier", total))
        value = yield from comm.bcast(("blob", 3) if me == 3 else None,
                                      root=3, algorithm="hier")
        out.append(("bcast:hier", value))
        gathered = yield from comm.allgather(me * 7, algorithm="hier")
        out.append(("allgather:hier", tuple(gathered)))
        peak = yield from comm.reduce(me, MAX, root=1, algorithm="hier")
        out.append(("reduce:hier", peak))
        yield from comm.barrier(algorithm="hier")
        # Interleave with the flat default: cross-algorithm interference
        # (stolen matches on the collective context) would trip the
        # checker or change the result here.
        total = yield from comm.allreduce(me + 1)
        out.append(("allreduce:default", total))
        return tuple(out)

    return config, program


# ---------------------------------------------------------------------------
# multilane: payload decomposition across two SCI rails
# ---------------------------------------------------------------------------

def _build_multilane(workload_seed: int):
    del workload_seed
    # Two rails per node: the multi-lane family splits payloads across
    # them and runs per-lane sub-collectives in temporary threads —
    # prime spawn-jitter territory for the fuzzer.
    config = ClusterConfig(nodes=[
        NodeSpec(f"n{i}", networks=("sisci", "sisci#1")) for i in range(4)])

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        out = []
        data = np.arange(64, dtype=np.float64) + me
        total = yield from comm.allreduce(data, SUM, algorithm="multilane")
        out.append(("allreduce:multilane",
                    tuple(float(v) for v in total)))
        blob = (b"stripe" * 20) if me == 0 else None
        value = yield from comm.bcast(blob, root=0, algorithm="multilane")
        out.append(("bcast:multilane", value))
        blocks = yield from comm.allgather(bytes([65 + me]) * 9,
                                           algorithm="multilane")
        out.append(("allgather:multilane", tuple(blocks)))
        total = yield from comm.allreduce(me + 1)  # default, interleaved
        out.append(("allreduce:default", total))
        return tuple(out)

    return config, program


# ---------------------------------------------------------------------------
# rank_death: a rank dies mid-job; survivors revoke + shrink + continue
# ---------------------------------------------------------------------------

def _build_rank_death(workload_seed: int):
    from repro.errors import MPIProcFailedError, MPIRevokedError
    from repro.faults import FaultPlan
    from repro.units import us

    # Victim and time-of-death come from the *workload* seed, so every
    # fuzz seed replays the same failure under a different schedule.
    nranks = 4
    rng = random.Random(seed_namespace("rank-death", workload_seed))
    victim = rng.randrange(nranks)
    death_at = us(rng.randrange(150, 600))
    config = ClusterConfig(
        nodes=_nodes(nranks, ("sisci", "tcp")),
        fault_plan=FaultPlan.node_death(rank=victim, at=death_at,
                                        seed=workload_seed + 1),
    )

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        right, left = (me + 1) % comm.size, (me - 1) % comm.size
        died = False
        for step in range(400):
            # Collectives and a p2p ring, both of which must fail with
            # ERR_PROC_FAILED / ERR_REVOKED (never hang) once the victim
            # is gone.  *Which* iteration sees the error is schedule-
            # dependent, so nothing pre-failure reaches the result.
            try:
                yield from comm.allreduce(me + 1, SUM)
                yield from comm.sendrecv(("ring", step), dest=right,
                                         sendtag=step % 3, source=left,
                                         recvtag=step % 3, size=256)
            except (MPIProcFailedError, MPIRevokedError):
                died = True
                break
        if not died:
            return ("unscathed",)
        comm.revoke()
        shrunk = yield from comm.shrink()
        total = yield from shrunk.allreduce(shrunk.rank + 1, SUM)
        gathered = yield from shrunk.allgather(shrunk.rank * 5)
        agreed = yield from shrunk.agree(1)
        return ("survivor", shrunk.rank, shrunk.size, total,
                tuple(gathered), agreed)

    return config, program


# ---------------------------------------------------------------------------
# rma_storm: one-sided Put/Get/Accumulate epochs + a p2p ring, on lossy IB
# ---------------------------------------------------------------------------

def _build_rma_storm(workload_seed: int):
    """Mixed one-sided traffic whose result is schedule-independent by
    construction:

    - puts from origin ``o`` only ever land in slice ``[o*32, (o+1)*32)``
      of a target window, and same-origin sends are non-overtaking, so
      the final slice contents are the origin's *last* put in program
      order whatever the interleaving;
    - accumulate is SUM over int64 slots (commutative — apply order
      within an epoch cannot matter);
    - gets read only the static region ``[192, 256)``, stamped by each
      owner before the first fence and never written again, so both the
      RDMA-read fast path and the agent reply path return the same bytes.

    The p2p ring rides alongside with sizes up to 60 kB so the epochs
    share the wire with RDMA-rendezvous traffic, all over a lossy plan
    covering both fabrics (HCA retransmits + reliable transport).
    """
    import hashlib

    nranks = 4
    win_size = 256
    rng = random.Random(seed_namespace("rma-storm", workload_seed))
    epochs = []
    for _ in range(3):
        ops = []
        for origin in range(nranks):
            for _ in range(rng.randrange(2, 6)):
                kind = rng.choice(("put", "acc", "get"))
                target = rng.randrange(nranks)
                if kind == "put":
                    ops.append((origin, "put", target,
                                rng.randrange(1, 33), rng.randrange(256)))
                elif kind == "acc":
                    ops.append((origin, "acc", target,
                                rng.randrange(8), rng.randrange(1, 1000)))
                else:
                    ops.append((origin, "get", target,
                                192 + rng.randrange(32), rng.randrange(1, 33)))
        ring_size = rng.choice((0, 4, 8192, 60_000))
        epochs.append((tuple(ops), ring_size))
    config = ClusterConfig(
        nodes=_nodes(nranks, ("ib", "tcp")),
        fault_plan=lossy_plan(0.02, fabrics=("tcp", "ib"),
                              seed=workload_seed + 1),
    )

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        win = yield from comm.win_create(win_size)
        # Owner-stamped static read region, before any epoch opens.
        win.buffer[192:256] = np.arange(64, dtype=np.uint8) + me
        yield from win.fence()
        gets = []
        for step, (ops, ring_size) in enumerate(epochs):
            pending = []
            for origin, kind, target, a, b in ops:
                if origin != me:
                    continue
                if kind == "put":
                    yield from win.put(target, me * 32, bytes([b]) * a)
                elif kind == "acc":
                    yield from win.accumulate(target, 128 + a * 8, [b])
                else:
                    result = yield from win.get(target, a, b)
                    pending.append((step, target, a, b, result))
            right, left = (me + 1) % comm.size, (me - 1) % comm.size
            yield from comm.sendrecv(("ring", step, me), dest=right,
                                     sendtag=step, source=left,
                                     recvtag=step, size=ring_size)
            yield from win.fence()
            for entry in pending:
                step_, target, offset, length, result = entry
                gets.append((step_, target, offset, length, result.data))
        digest = hashlib.sha256(bytes(win.buffer)).hexdigest()
        yield from win.free()
        return (digest, tuple(sorted(gets, key=repr)))

    return config, program


# ---------------------------------------------------------------------------
# mixed: seeded p2p storm (wildcards, all send modes, eager + rendezvous)
# ---------------------------------------------------------------------------

_SIZES = (0, 4, 512, 8192, 9000, 60_000)


def _mixed_schedule(workload_seed: int, nranks: int, nmessages: int):
    rng = random.Random(seed_namespace("mixed-workload", workload_seed))
    messages = []
    for mid in range(nmessages):
        src = rng.randrange(nranks)
        dst = rng.choice([r for r in range(nranks) if r != src])
        tag = rng.randrange(3)
        size = rng.choice(_SIZES)
        mode = rng.choice(["send", "isend", "ssend"])
        messages.append((src, dst, tag, size, mode, mid))
    wildcard = {r: rng.random() < 0.5 for r in range(nranks)}
    return messages, wildcard


def _mixed_program(messages, wildcard):
    def program(mpi):
        from repro.mpi import point2point as _p2p

        comm = mpi.comm_world
        me = comm.rank

        # Phase 1: collectives, before the p2p storm starts.
        total = yield from comm.allreduce(me + 1)
        gathered = yield from comm.allgather(me * 3)

        # Phase 2: post every incoming receive up front.
        requests = []
        for src, dst, tag, size, mode, mid in messages:
            if dst != me:
                continue
            if wildcard[me]:
                requests.append(comm.irecv(source=ANY_SOURCE, tag=ANY_TAG))
            else:
                requests.append(comm.irecv(source=src, tag=tag))

        # Phase 3: sends, in schedule order.
        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag, size=size))

        # Phase 4: drain.  With wildcards, which *request* caught which
        # message is schedule-dependent; the multiset of delivered
        # (source, tag, data) triples is not — canonicalize by sorting.
        got = []
        for request in requests:
            data, status = yield from _p2p.recv_wait(comm, request)
            got.append((status.source, status.tag, data))
        for request in pending:
            yield from request.wait()
        return (total, tuple(gathered), tuple(sorted(got, key=repr)))

    return program


def _build_mixed(workload_seed: int):
    nranks = 4
    messages, wildcard = _mixed_schedule(workload_seed, nranks, nmessages=18)
    config = ClusterConfig(nodes=_nodes(nranks, ("sisci",)))
    return config, _mixed_program(messages, wildcard)


def _build_lossy(workload_seed: int):
    # Same traffic as `mixed`, but over lossy fabrics with the reliable
    # transport underneath: drops/retransmits must not change results.
    nranks = 4
    messages, wildcard = _mixed_schedule(workload_seed, nranks, nmessages=18)
    config = ClusterConfig(
        nodes=_nodes(nranks, ("sisci", "tcp")),
        fault_plan=lossy_plan(0.02, seed=workload_seed + 1),
    )
    return config, _mixed_program(messages, wildcard)


register(Workload("pingpong", "2-rank eager latency loop on SCI",
                  _build_pingpong))
register(Workload("collectives", "every collective algorithm variant, "
                  "4 ranks on SCI+TCP", _build_collectives))
register(Workload("hier_collectives", "node-aware hierarchical collectives, "
                  "4 dual-rank SMP nodes on SCI+TCP", _build_hier_collectives))
register(Workload("multilane", "multi-lane collectives over two SCI rails, "
                  "4 ranks", _build_multilane))
register(Workload("mixed", "seeded p2p storm: wildcards, all send modes, "
                  "eager + rendezvous", _build_mixed))
register(Workload("lossy", "the mixed storm over lossy fabrics with the "
                  "reliable transport", _build_lossy))
register(Workload("rank_death", "a seed-chosen rank dies mid-job; survivors "
                  "revoke, shrink and finish", _build_rank_death))
register(Workload("rma_storm", "one-sided Put/Get/Accumulate fence epochs "
                  "plus a p2p ring, 4 ranks on lossy IB+TCP",
                  _build_rma_storm))
