"""The unified workload registry and the :class:`Workload` protocol.

Historically the repository grew three parallel ways to describe "a
program plus the cluster it runs on": the fuzz workloads of
``repro/check/workloads.py``, the job-executor registry of
``repro/runner/jobs.py``, and one-off driver scripts under
``benchmarks/perf/``.  Registering a workload three times meant three
chances for drift — and the macro-workloads (ML training, CFD halo
exchange) would have made it four.

:class:`Workload` is the one description all front ends share:

``name`` / ``description``
    Registry key and one-line human summary.
``params``
    A declarative schema (:class:`Param` per knob, with defaults) —
    the CLI, the sweep runner and the benchmarks resolve overrides
    against it, so a typo'd parameter fails before any rank starts.
``build(seed, **params) -> (config, program)``
    The factory: a :class:`~repro.cluster.node.ClusterConfig` plus a
    rank generator ``program(mpi)``.  ``seed`` feeds the workload's own
    traffic schedule (build-time RNG via
    :func:`~repro.sim.engine.seed_namespace`); everything else comes
    from the resolved params.  Programs must be *schedule-independent*:
    whatever legal interleaving the fuzzer provokes, every rank returns
    the same user-visible result.
``digest``
    Canonicalizer from per-rank results to a hex digest (defaults to
    ``sha256(repr(results))`` — fine as long as the program already
    returns canonical values, which the schedule-independence contract
    requires anyway).
``metrics``
    Counter names of interest (summed across label sets) reported by
    :func:`run` when instrumentation is on.
``tags``
    Capability markers: ``"fuzz"`` workloads appear in the fuzz sweep,
    ``"macro"`` marks the application-shaped drivers benched by
    ``benchmarks/perf/macroperf.py``.

Register once with :func:`register`; the workload is then runnable via
``python -m repro run --workload NAME``, sweepable/cacheable through the
``workload`` job kind (:mod:`repro.workloads.executors`), fuzzable via
``python -m repro fuzz --workload NAME``, and benchable against a
committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Param:
    """One declared workload parameter: a default plus documentation."""

    default: Any
    doc: str = ""


def default_digest(results: Any) -> str:
    """``sha256(repr(results))`` — canonical iff the results are."""
    return sha256(repr(results).encode()).hexdigest()


@dataclass(frozen=True)
class Workload:
    """One registered workload (see the module docstring for the
    contract).  Field order keeps the historical positional shape
    ``Workload(name, description, build)`` working — the pre-unification
    fuzz workloads were exactly that triple."""

    name: str
    description: str
    #: ``build(seed, **params) -> (ClusterConfig, program)``.
    build: Callable[..., tuple]
    params: Mapping[str, Param] = field(default_factory=dict)
    metrics: tuple[str, ...] = ()
    tags: frozenset[str] = frozenset({"fuzz"})
    digest: Callable[[Any], str] | None = None

    def resolve(self, overrides: Mapping[str, Any] | None = None
                ) -> dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys raise."""
        resolved = {key: param.default for key, param in self.params.items()}
        for key, value in (overrides or {}).items():
            if key not in resolved:
                raise ConfigurationError(
                    f"workload {self.name!r} has no parameter {key!r}; "
                    f"known: {sorted(self.params) or '(none)'}")
            resolved[key] = value
        return resolved

    def instantiate(self, seed: int = 0,
                    params: Mapping[str, Any] | None = None) -> tuple:
        """Resolve ``params`` and build ``(config, program)``."""
        return self.build(seed, **self.resolve(params))

    def result_digest(self, results: Any) -> str:
        return (self.digest or default_digest)(results)


#: The one registry every front end resolves against.  Plain dict on
#: purpose: tests plant throwaway workloads with ``WORKLOADS[name] = …``.
WORKLOADS: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add ``workload`` to the registry (duplicate names raise)."""
    if workload.name in WORKLOADS:
        raise ConfigurationError(
            f"workload {workload.name!r} is already registered")
    WORKLOADS[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    """Resolve a workload by name (unknown names raise with the list)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def names(tag: str | None = None) -> list[str]:
    """Sorted registry names, optionally filtered to one tag."""
    return sorted(name for name, wl in WORKLOADS.items()
                  if tag is None or tag in wl.tags)


@dataclass
class WorkloadResult:
    """Outcome of one :func:`run`: results, digest, virtual time,
    metrics of interest, and any (non-raised) checker violations."""

    workload: str
    seed: int
    params: dict[str, Any]
    results: Any
    digest: str
    time_ns: int
    metrics: dict[str, int | float] = field(default_factory=dict)
    violations: tuple = ()


def run(name: str, *, seed: int = 0,
        params: Mapping[str, Any] | None = None, check: bool = False,
        checker_raise: bool = True, fuzz_seed: int | None = None,
        instrumentation: bool = False) -> WorkloadResult:
    """Run one registered workload end to end and digest its results.

    The simulator is deterministic, so the returned
    :class:`WorkloadResult` is a pure function of
    ``(name, seed, params)`` — which is what lets the ``workload`` job
    kind cache these runs content-addressed.
    """
    from repro.cluster.session import MPIWorld
    from repro.sim.engine import EngineConfig

    workload = get(name)
    resolved = workload.resolve(params)
    config, program = workload.build(seed, **resolved)
    wants_metrics = instrumentation and bool(workload.metrics)
    world = MPIWorld(config, engine_config=EngineConfig(
        instrumentation=wants_metrics, checker=check,
        checker_raise=checker_raise, fuzz_seed=fuzz_seed))
    results = world.run(program)
    metrics = {}
    if wants_metrics:
        registry = world.engine.instruments.metrics
        metrics = {metric: registry.total(metric)
                   for metric in workload.metrics}
    violations = tuple(world.engine.checker.violations) if check else ()
    return WorkloadResult(
        workload=name, seed=seed, params=resolved, results=results,
        digest=workload.result_digest(results), time_ns=world.engine.now,
        metrics=metrics, violations=violations)
