"""Network substrate: calibrated models of the paper's three networks.

The paper's testbed (§5.1) is a cluster of dual-PentiumII/450 nodes with
DEC 21140 Fast-Ethernet boards (TCP), Dolphin D310 boards (SISCI/SCI) and
32-bit LANai 4.3 Myrinet boards (BIP).  None of that hardware exists here,
so each network is a discrete-event model with per-protocol cost
parameters (:mod:`repro.networks.params`) calibrated so that the *raw
Madeleine* ping-pong reproduces the paper's Table 1 anchors.

Structure:

- :class:`~repro.networks.fabric.NetworkFabric` — one physical network:
  adapters, full-duplex serialization occupancy, delivery scheduling.
- :class:`~repro.networks.nic.ProtocolEndpoint` — per-node, per-network
  send path (CPU charges, chunked pipelining) and receive mailbox.
- :mod:`repro.networks.tcp` / :mod:`~repro.networks.sisci` /
  :mod:`~repro.networks.bip` — protocol-specific endpoints and calibrated
  parameter sets.
"""

from repro.networks.bip import BIP_MYRINET, BipEndpoint
from repro.networks.fabric import Adapter, Delivery, NetworkFabric
from repro.networks.ib import IB_4X, IbEndpoint, IbParams, RegistrationCache
from repro.networks.memory import MemoryModel, PAPER_NODE_MEMORY
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import MemoryParams, ProtocolParams
from repro.networks.sisci import SISCI_SCI, SisciEndpoint
from repro.networks.tcp import TCP_FAST_ETHERNET, TcpEndpoint

PROTOCOL_PARAMS = {
    "tcp": TCP_FAST_ETHERNET,
    "sisci": SISCI_SCI,
    "bip": BIP_MYRINET,
    "ib": IB_4X,
}

ENDPOINT_CLASSES = {
    "tcp": TcpEndpoint,
    "sisci": SisciEndpoint,
    "bip": BipEndpoint,
    "ib": IbEndpoint,
}


def base_protocol(name: str) -> str:
    """Strip a rail suffix: ``"bip#1"`` -> ``"bip"``.

    Madeleine manages "multiple network adapters (NIC) for each of these
    protocols" (paper §3.1); additional rails of one protocol are named
    ``proto#N`` and share the protocol's parameters and endpoint class.
    """
    return name.split("#", 1)[0]

__all__ = [
    "Adapter",
    "BIP_MYRINET",
    "BipEndpoint",
    "Delivery",
    "ENDPOINT_CLASSES",
    "IB_4X",
    "IbEndpoint",
    "IbParams",
    "MemoryModel",
    "MemoryParams",
    "NetworkFabric",
    "PAPER_NODE_MEMORY",
    "PROTOCOL_PARAMS",
    "ProtocolEndpoint",
    "ProtocolParams",
    "RegistrationCache",
    "SISCI_SCI",
    "SisciEndpoint",
    "TCP_FAST_ETHERNET",
    "TcpEndpoint",
]
