"""Protocol endpoints: the per-node send/receive machinery of one network.

A :class:`ProtocolEndpoint` is what a Madeleine driver talks to.  It owns
one adapter on one fabric and provides:

- ``send_message`` — a generator run by the *sending thread*: charges the
  modelled sender CPU costs (pipelined per chunk against the wire) and
  hands chunks to the fabric;
- ``rx_mailbox`` — where complete message deliveries land, for a Marcel
  polling thread to consume;
- ``poll_source`` — the polling configuration for this protocol (§3.3:
  per-protocol polling mode and frequency);
- ``recv_cost`` — the receive-side CPU charge the polling handler must
  pay per delivered message.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.marcel.polling import PollSource
from repro.networks.fabric import Adapter, Delivery, NetworkFabric
from repro.networks.params import ProtocolParams
from repro.sim.coroutines import charge
from repro.sim.engine import Engine
from repro.sim.sync import Mailbox


class ProtocolEndpoint:
    """Base endpoint; protocol-specific subclasses tweak the send path."""

    def __init__(self, engine: Engine, fabric: NetworkFabric, owner: Any = None):
        self.engine = engine
        self.fabric = fabric
        self.params: ProtocolParams = fabric.params
        self.owner = owner
        self.adapter: Adapter = fabric.attach(self)
        self.adapter.rx_sink = self._on_delivery
        self.rx_mailbox = Mailbox(name=f"{self.adapter.name}.rx")

    # -- receive side --------------------------------------------------------

    def _on_delivery(self, delivery: Delivery) -> None:
        self.rx_mailbox.post(delivery)

    def poll_source(self, name: str | None = None) -> PollSource:
        """Polling configuration for the channel bound to this endpoint."""
        p = self.params
        return PollSource(
            name=name or self.adapter.name,
            mode=p.poll_mode,
            mailbox=self.rx_mailbox,
            poll_cost=p.poll_cost,
            period=p.poll_period,
            idle_period=p.poll_idle_period,
        )

    def recv_cost(self, nbytes: int) -> int:
        """Receive-side CPU ns to consume a delivered message."""
        p = self.params
        return p.recv_overhead + round(nbytes * p.cpu_recv_ns_per_byte)

    # -- send side ---------------------------------------------------------

    def send_message(self, dst: "ProtocolEndpoint", nbytes: int,
                     payload: Any) -> Generator:
        """Generator run by the sending thread.

        Default path (DMA-style networks): charge the fixed per-message
        overhead plus any sender per-byte cost pipelined chunk-by-chunk
        against the wire, then return — the wire and delivery proceed
        without the CPU.
        """
        p = self.params
        extra_send, extra_latency = self._long_message_extras(nbytes)
        yield charge(p.send_overhead + extra_send)
        if p.cpu_send_ns_per_byte > 0 and nbytes > p.chunk_size:
            # Pipelined: CPU prepares chunk k+1 while chunk k serializes.
            sent_at = self.engine.now
            last_arrival = sent_at
            for size in p.chunks(nbytes):
                yield charge(round(size * p.cpu_send_ns_per_byte))
                last_arrival = self.fabric.transmit_chunk(
                    self.adapter, dst.adapter, size, extra_latency=extra_latency
                )
            self.fabric.schedule_delivery(self.adapter, dst.adapter, nbytes,
                                          payload, last_arrival, sent_at)
        else:
            yield charge(round(nbytes * p.cpu_send_ns_per_byte))
            self.fabric.transmit_message(self.adapter, dst.adapter, nbytes,
                                         payload, extra_latency=extra_latency)

    def _long_message_extras(self, nbytes: int) -> tuple[int, int]:
        p = self.params
        if p.long_threshold and nbytes >= p.long_threshold:
            return p.long_extra_send, p.long_extra_latency
        return 0, 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.adapter.name}>"
