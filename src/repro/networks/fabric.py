"""One physical network: adapters, wire occupancy, delivery.

A :class:`NetworkFabric` models a switched network of one protocol
(one Fast-Ethernet switch, one SCI ringlet/switch, one Myrinet switch).
Adapters attach to it; any adapter can transmit to any other.  The model
charges:

- transmit-side serialization: a chunk occupies the sender adapter's
  transmit port for ``wire_time(chunk)`` (back-to-back chunks queue);
- propagation/switching: delivery fires ``wire_latency`` after the chunk
  leaves the transmit port (plus any protocol ``long_extra_latency``).

Receive-side CPU costs are charged by whoever consumes the delivery (the
Madeleine driver's polling handler) — the fabric only moves bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetworkError, RouteError
from repro.sim.engine import Engine
from repro.networks.params import ProtocolParams


@dataclass(frozen=True)
class Delivery:
    """What lands in a receive queue: one complete message.

    ``payload`` is opaque to the network (the Madeleine driver puts its
    own wire structures there).  ``nbytes`` is the payload size actually
    serialized, used by receive-side cost accounting.
    """

    source: "Adapter"
    dest: "Adapter"
    nbytes: int
    payload: Any
    sent_at: int
    delivered_at: int
    #: Set by the fault injector: the bytes arrived but are poisoned.  The
    #: reliable transport's simulated checksum detects this and treats the
    #: delivery as a loss; without reliability the poison reaches the
    #: application (exactly what an unchecksummed DMA network would do).
    corrupted: bool = False


class Adapter:
    """One NIC port attached to a fabric.

    ``rx_sink`` is set by the protocol endpoint that owns the adapter; it
    receives :class:`Delivery` objects (typically forwarding them into a
    polling thread's mailbox).
    """

    def __init__(self, fabric: "NetworkFabric", owner: Any, index: int):
        self.fabric = fabric
        self.owner = owner
        self.index = index
        self.rx_sink: Callable[[Delivery], None] | None = None
        #: Set when the owning process died (NodeDeath): the NIC neither
        #: transmits nor receives, silently — survivors only see the wire
        #: go dark.
        self.dead: bool = False
        #: Time the transmit port is next free (serialization occupancy).
        self.tx_free: int = 0
        #: Diagnostics.
        self.bytes_sent = 0
        self.messages_sent = 0
        self.bytes_received = 0
        self.messages_received = 0

    @property
    def name(self) -> str:
        return f"{self.fabric.params.name}[{self.index}]"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Adapter {self.name} owner={self.owner!r}>"


class NetworkFabric:
    """A switched network of one protocol."""

    def __init__(self, engine: Engine, params: ProtocolParams, name: str | None = None):
        self.engine = engine
        self.params = params
        self.name = name or params.name
        self.adapters: list[Adapter] = []
        #: Fault injector consulted on every complete-message transmission
        #: (None = the perfect network of the paper's measurements).
        self.injector = None
        #: Per (src, dst) adapter pair: last scheduled delivery time, used
        #: to keep deliveries FIFO even when per-message latency varies
        #: (e.g. BIP's long-message handshake).
        self._pair_last: dict[tuple[int, int], int] = {}

    def attach(self, owner: Any) -> Adapter:
        """Create a new adapter on this fabric owned by ``owner``."""
        adapter = Adapter(self, owner, index=len(self.adapters))
        self.adapters.append(adapter)
        return adapter

    # -- transmission -------------------------------------------------------

    def transmit_chunk(self, src: Adapter, dst: Adapter, nbytes: int,
                       extra_latency: int = 0,
                       on_arrival: Callable[[int], None] | None = None) -> int:
        """Serialize one chunk out of ``src`` towards ``dst``.

        Returns the arrival time.  ``on_arrival`` (if given) fires at that
        time with the arrival timestamp — used internally to complete
        multi-chunk messages.
        """
        self._check_route(src, dst)
        now = self.engine.now
        start = max(now, src.tx_free)
        done = start + self.params.wire_time(nbytes)
        src.tx_free = done
        arrival = done + self.params.wire_latency + extra_latency
        if on_arrival is not None:
            self.engine.schedule_at(arrival, on_arrival, arrival)
        return arrival

    def transmit_message(self, src: Adapter, dst: Adapter, nbytes: int,
                         payload: Any, extra_latency: int = 0) -> None:
        """Send a whole message as pipelined chunks; deliver on last arrival.

        The caller has already charged sender CPU costs.  Chunks only
        occupy the transmit port here — per-chunk sender CPU pipelining
        is the endpoint's job (it interleaves charges with chunk posts).
        """
        sent_at = self.engine.now
        chunks = self.params.chunks(nbytes)
        last_arrival = sent_at
        for size in chunks:
            last_arrival = self.transmit_chunk(src, dst, size,
                                               extra_latency=extra_latency)
        self.schedule_delivery(src, dst, nbytes, payload, last_arrival, sent_at)

    def schedule_delivery(self, src: Adapter, dst: Adapter, nbytes: int,
                          payload: Any, arrival: int, sent_at: int) -> int:
        """Schedule a complete-message delivery, enforcing per-pair FIFO.

        Returns the (possibly clamped) delivery time.  When a fault
        injector is installed, the message may instead be dropped (wire
        time was already spent — the bytes went out and vanished),
        poisoned, or delayed.
        """
        corrupted = False
        if src.dead or dst.dead:
            # A dead NIC neither sends nor receives: the message silently
            # vanishes (wire occupancy, if any, was already charged).
            ins = self.engine.instruments
            if ins.enabled:
                ins.count("faults.dropped", 1, fabric=self.name,
                          reason="node_death")
                ins.emit("fault.drop", fabric=self.name, src=src.index,
                         dst=dst.index, nbytes=nbytes, reason="node_death")
            return arrival
        if self.injector is not None:
            decision = self.injector.decide(self.name, src.index, dst.index,
                                            nbytes)
            if decision.dropped:
                ins = self.engine.instruments
                if ins.enabled:
                    ins.count("faults.dropped", 1, fabric=self.name,
                              reason=decision.reason)
                    ins.emit("fault.drop", fabric=self.name, src=src.index,
                             dst=dst.index, nbytes=nbytes,
                             reason=decision.reason)
                return arrival
            corrupted = decision.corrupted
            if corrupted or decision.extra_latency:
                ins = self.engine.instruments
                if ins.enabled:
                    if corrupted:
                        ins.count("faults.corrupted", 1, fabric=self.name)
                        ins.emit("fault.corrupt", fabric=self.name,
                                 src=src.index, dst=dst.index, nbytes=nbytes)
                    else:
                        ins.count("faults.delayed", 1, fabric=self.name)
                        ins.emit("fault.delay", fabric=self.name,
                                 src=src.index, dst=dst.index,
                                 extra=decision.extra_latency)
                arrival += decision.extra_latency
        key = (src.index, dst.index)
        arrival = max(arrival, self._pair_last.get(key, 0))
        self._pair_last[key] = arrival
        delivery = Delivery(source=src, dest=dst, nbytes=nbytes,
                            payload=payload, sent_at=sent_at,
                            delivered_at=arrival, corrupted=corrupted)
        self.engine.schedule_at(arrival, self._deliver, delivery)
        return arrival

    def _deliver(self, delivery: Delivery) -> None:
        dst = delivery.dest
        if dst.dead or delivery.source.dead:
            # Death raced an already-scheduled delivery: drop it silently.
            return
        dst.bytes_received += delivery.nbytes
        dst.messages_received += 1
        src = delivery.source
        src.bytes_sent += delivery.nbytes
        src.messages_sent += 1
        self.engine.tracer.emit(
            "net.deliver", fabric=self.name, src=src.index, dst=dst.index,
            nbytes=delivery.nbytes, latency=delivery.delivered_at - delivery.sent_at,
        )
        if dst.rx_sink is None:
            raise NetworkError(
                f"delivery to adapter {dst.name} with no rx_sink installed"
            )
        dst.rx_sink(delivery)

    def _check_route(self, src: Adapter, dst: Adapter) -> None:
        if src.fabric is not self or dst.fabric is not self:
            raise RouteError(
                f"adapters {src.name} and {dst.name} are not both on fabric {self.name}"
            )
        if src is dst:
            raise RouteError(f"adapter {src.name} cannot transmit to itself")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NetworkFabric {self.name} adapters={len(self.adapters)}>"
