"""InfiniBand-like fabric: registration cost, registration cache, RDMA.

Grounded in Liu et al., *Design and Implementation of MPICH2 over
InfiniBand with RDMA Support*: the defining properties of the fabric are

- **memory registration is explicit and expensive** — a buffer must be
  pinned and translated before the HCA may touch it (``reg_overhead`` +
  ``reg_ns_per_byte``), which makes a *registration cache* (lazy
  deregistration, LRU) the difference between a fast and a useless
  rendezvous path;
- **RDMA write/read** move bytes with zero CPU on the remote side; the
  initiator learns completion from the HCA (modelled as a hardware-level
  ack), the target from the message content itself ("piggybacked"
  completion — the last bytes written carry the completion record);
- **the channel path still works** — send/recv over the IB fabric flows
  through the ordinary :class:`~repro.networks.nic.ProtocolEndpoint`
  machinery, paying bounce-buffer copies (``cpu_send_ns_per_byte`` /
  ``cpu_recv_ns_per_byte``) on both sides.  That copy cost is exactly
  what the rendezvous-over-RDMA path exists to avoid.

Reliability follows the IB RC (reliable connection) service: the HCA —
not a software transport thread — retransmits unacknowledged work
requests and drops corrupted packets at CRC check, deduplicating by
packet sequence number.  Both sides of that exchange run as plain engine
callbacks (:meth:`IbEndpoint._launch`, :meth:`IbEndpoint.hca_receive`),
never as sends from a polling thread, so the §4.2.3 polling-send
discipline is preserved by construction.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import FailoverExhaustedError
from repro.marcel.polling import PollMode
from repro.networks.fabric import Delivery
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.sim.coroutines import charge, wait
from repro.sim.sync import Flag, Mailbox
from repro.units import us

#: Wire size of an HCA-level acknowledgement packet.
HCA_ACK_BYTES = 16
#: CPU cost of a registration-cache hit (hash lookup, no pinning).
REG_CACHE_HIT_NS = 200


@dataclass(frozen=True)
class IbParams(ProtocolParams):
    """:class:`ProtocolParams` plus the IB memory-registration model."""

    #: Fixed cost of pinning + translating one buffer (mmap/get_user_pages).
    reg_overhead: int = us(15.0)
    #: Per-byte cost of building the translation table.
    reg_ns_per_byte: float = 0.35
    #: Cost of undoing a registration (lazy, on cache eviction).
    dereg_overhead: int = us(5.0)
    #: Registration-cache capacity (distinct cached buffers per endpoint).
    reg_cache_capacity: int = 32


#: IB 4X-like parameters.  The channel (packetized) path pays ~3 ns/byte
#: of bounce-buffer copy on each side — the copy the RDMA path elides —
#: while the wire runs at ~833 MB/s.  Eager threshold for ch_mad is set in
#: :mod:`repro.mpi.devices.ch_mad.switchpoints` (16 KiB).
IB_4X = IbParams(
    name="ib",
    send_overhead=us(0.6),
    cpu_send_ns_per_byte=3.0,
    wire_latency=us(3.0),
    wire_ns_per_byte=1.2,
    chunk_size=64 * 1024,
    wire_header_bytes=30,
    recv_overhead=us(0.5),
    cpu_recv_ns_per_byte=3.0,
    pack_op_cost=us(1.0),
    unpack_op_cost=us(1.0),
    poll_mode=PollMode.EVENT,
    poll_cost=us(0.3),
)


class RegistrationCache:
    """LRU cache of registered memory regions (lazy deregistration).

    Keys are *content-derived* (context id, tag, size...), never Python
    object identities, so two same-seed runs touch the cache in the same
    order — registration-cache behaviour is part of the deterministic
    cost model, not an accident of heap layout.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[Any, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key: Any) -> bool:
        """Mark ``key`` used; return True on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Any, nbytes: int) -> Any | None:
        """Insert ``key``; return the evicted key if the cache overflowed."""
        self._entries[key] = nbytes
        if len(self._entries) > self.capacity:
            old_key, _ = self._entries.popitem(last=False)
            self.evictions += 1
            return old_key
        return None


_op_ids = itertools.count(1)


class RdmaOp:
    """One RDMA work request on the wire (write, read request, read data).

    Doubles as the initiator-side completion handle: the HCA ack (or the
    read-data packet) sets :attr:`flag`.  Carries ``source_rank`` so the
    receiving node's failure detector counts RDMA traffic as liveness
    evidence, like any other wire message.
    """

    __slots__ = ("op_id", "kind", "source_rank", "nbytes", "header",
                 "sync_id", "envelope", "data", "key", "offset",
                 "flag", "completed", "error")

    def __init__(self, kind: str, source_rank: int, nbytes: int, *,
                 op_id: int | None = None, header: Any = None,
                 sync_id: int = 0, envelope: Any = None, data: Any = None,
                 key: Any = None, offset: int = 0):
        self.op_id = next(_op_ids) if op_id is None else op_id
        self.kind = kind            # "write" | "read" | "read-data"
        self.source_rank = source_rank
        self.nbytes = nbytes
        self.header = header        # synthetic ch_mad header (write ops)
        self.sync_id = sync_id
        self.envelope = envelope
        self.data = data
        self.key = key              # exposed-region key (read ops)
        self.offset = offset
        self.flag = Flag(name=f"rdma-op-{self.op_id}")
        self.completed = False
        self.error: Exception | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RdmaOp #{self.op_id} {self.kind} {self.nbytes}B>"


@dataclass(frozen=True)
class HcaAck:
    """Hardware-level acknowledgement of one :class:`RdmaOp`."""

    op_id: int
    source_rank: int


class IbEndpoint(ProtocolEndpoint):
    """IB endpoint: channel path inherited, RDMA verbs added.

    The channel path (``send_message``/``rx_mailbox``) is the base class
    unchanged — IB as "just another Madeleine network".  The RDMA verbs
    bypass it entirely: :meth:`rdma_write` and :meth:`rdma_read` talk to
    the fabric directly and complete through :attr:`rdma_mailbox` (target
    side) or the op's flag (initiator side).
    """

    def __init__(self, engine, fabric, owner: Any = None):
        super().__init__(engine, fabric, owner)
        p = self.params
        capacity = getattr(p, "reg_cache_capacity", 32)
        self.reg_cache = RegistrationCache(capacity)
        #: Explicitly registered regions (windows): key -> nbytes.
        self._explicit: dict[Any, int] = {}
        #: Regions exposed for remote RDMA read: key -> buffer.
        self._exposed: dict[Any, Any] = {}
        #: Initiator bookkeeping: op_id -> in-flight RdmaOp.
        self._inflight: dict[int, RdmaOp] = {}
        #: Target-side dedup of retransmitted writes (IB PSN check).
        self._seen_ops: set[int] = set()
        #: Completed inbound RDMA writes, for the device's CQ poller.
        self.rdma_mailbox = Mailbox(name=f"{self.adapter.name}.cq")
        self.retransmits = 0
        self.crc_drops = 0

    # -- memory registration -------------------------------------------------

    def _rank(self) -> int | None:
        return getattr(self.owner, "rank", None)

    def _reg_cost(self, nbytes: int) -> int:
        p = self.params
        return getattr(p, "reg_overhead", 0) + round(
            nbytes * getattr(p, "reg_ns_per_byte", 0.0))

    def register(self, key: Any, nbytes: int) -> Generator:
        """Cached registration (p2p rendezvous buffers).

        Charges the full pin/translate cost on a miss, a cheap lookup on
        a hit.  Entries are deregistered lazily on LRU eviction — the
        Liu et al. pin-down cache — so they are exempt from the
        finalize-time registration-leak audit.
        """
        if self.reg_cache.touch(key):
            yield charge(REG_CACHE_HIT_NS)
            return
        yield charge(self._reg_cost(nbytes))
        evicted = self.reg_cache.insert(key, nbytes)
        if evicted is not None:
            yield charge(getattr(self.params, "dereg_overhead", 0))
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("rdma.reg_misses", 1, adapter=self.adapter.name)

    def register_explicit(self, key: Any, nbytes: int) -> Generator:
        """Pin a region for the lifetime of a window (no cache, no LRU).

        The checker tracks these: one that is still pinned at
        MPI_Finalize is a registration leak.
        """
        if key in self._explicit:
            return
        yield charge(self._reg_cost(nbytes))
        self._explicit[key] = nbytes
        checker = self.engine.checker
        if checker.enabled:
            checker.on_mem_register(self._rank(), key, nbytes)

    def deregister_explicit(self, key: Any) -> Generator:
        """Unpin an explicitly registered region."""
        self._explicit.pop(key, None)
        yield charge(getattr(self.params, "dereg_overhead", 0))
        checker = self.engine.checker
        if checker.enabled:
            checker.on_mem_deregister(self._rank(), key)

    def expose(self, key: Any, buffer: Any) -> None:
        """Make ``buffer`` remotely readable under ``key`` (RDMA read)."""
        self._exposed[key] = buffer

    def unexpose(self, key: Any) -> None:
        self._exposed.pop(key, None)

    # -- RDMA verbs (initiator side) ----------------------------------------

    def rdma_write(self, dst: ProtocolEndpoint, header: Any, envelope: Any,
                   sync_id: int, data: Any, nbytes: int) -> Generator:
        """Zero-copy RDMA write of ``data`` into ``dst``'s posted buffer.

        The sending thread charges only the WQE post (``send_overhead``)
        — no per-byte CPU; the wire transfer and RC retransmission run
        off engine callbacks.  Blocks until the HCA-level ack (initiator
        completion); the target side completes via its CQ mailbox when
        the data lands (piggybacked completion).
        """
        op = RdmaOp("write", self._rank(), nbytes, header=header,
                    sync_id=sync_id, envelope=envelope, data=data)
        yield charge(self.params.send_overhead)
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("rdma.writes", 1, adapter=self.adapter.name)
        yield from self._await_op(op, dst)

    def rdma_read(self, dst: ProtocolEndpoint, key: Any, offset: int,
                  nbytes: int) -> Generator:
        """RDMA read of ``nbytes`` at ``offset`` from ``dst``'s exposed
        region ``key``.  Zero CPU on the target; the data packet doubles
        as the acknowledgement.  Returns the bytes read."""
        op = RdmaOp("read", self._rank(), nbytes, key=key, offset=offset)
        yield charge(self.params.send_overhead)
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("rdma.reads", 1, adapter=self.adapter.name)
        yield from self._await_op(op, dst)
        return op.data

    def _await_op(self, op: RdmaOp, dst: ProtocolEndpoint) -> Generator:
        self._launch(op, dst, 0)
        op.flag.rank_dep = getattr(dst.owner, "rank", None)
        op.flag.dep_describe = (
            f"RDMA {op.kind} completion from rank "
            f"{getattr(dst.owner, 'rank', '?')} (op {op.op_id})")
        yield wait(op.flag)
        if op.error is not None:
            raise op.error

    def _launch(self, op: RdmaOp, dst: ProtocolEndpoint, attempt: int) -> None:
        """(Re)transmit ``op`` and arm the RC retransmission timer.

        Runs as a plain engine callback — the HCA, not a thread.  A
        completed op turns pending timers into no-ops.
        """
        if op.completed:
            return
        p = self.params
        if attempt > p.max_retries:
            self._inflight.pop(op.op_id, None)
            op.error = FailoverExhaustedError(
                f"RDMA {op.kind} op {op.op_id} unacked after "
                f"{p.max_retries} retransmissions",
                channel=self.fabric.name,
                remote_rank=getattr(dst.owner, "rank", None))
            op.completed = True
            op.flag.set()
            return
        if attempt:
            self.retransmits += 1
            ins = self.engine.instruments
            if ins.enabled:
                ins.count("rdma.retransmits", 1, adapter=self.adapter.name)
        self._inflight[op.op_id] = op
        # Request packets for reads are small; write/read-data carry the body.
        wire_bytes = op.nbytes if op.kind != "read" else 64
        self.fabric.transmit_message(self.adapter, dst.adapter, wire_bytes, op)
        # The timer must outlast the whole round trip — for reads the
        # *response* carries ``nbytes`` of data, so the timeout is sized
        # on the payload even though the request itself is tiny.
        timeout = p.retransmit_timeout(op.nbytes, attempt)
        self.engine.schedule_at(self.engine.now + timeout,
                                self._launch, op, dst, attempt + 1)

    # -- HCA receive side ----------------------------------------------------

    def hca_receive(self, delivery: Delivery) -> None:
        """Consume an RDMA-class delivery (called from the node demux).

        Implements the RC service: corrupted packets die at CRC check
        (the initiator's timer retransmits), duplicate writes are
        re-acked but applied once, acks complete initiator ops.
        """
        wire = delivery.payload
        if isinstance(wire, HcaAck):
            if delivery.corrupted:
                return  # lost ack; the retransmit timer re-covers it
            op = self._inflight.pop(wire.op_id, None)
            if op is not None and not op.completed:
                op.completed = True
                op.flag.set()
            return
        if delivery.corrupted:
            self.crc_drops += 1
            ins = self.engine.instruments
            if ins.enabled:
                ins.count("rdma.crc_drops", 1, adapter=self.adapter.name)
            return
        if wire.kind == "write":
            if wire.op_id not in self._seen_ops:
                self._seen_ops.add(wire.op_id)
                self.rdma_mailbox.post(wire)
            # Ack every receipt: a duplicate means our previous ack died.
            self.fabric.transmit_message(
                self.adapter, delivery.source, HCA_ACK_BYTES,
                HcaAck(wire.op_id, self._rank()))
        elif wire.kind == "read":
            region = self._exposed.get(wire.key)
            if region is None:
                return  # unexposed (window freed); requester times out
            data = bytes(bytearray(region[wire.offset:wire.offset + wire.nbytes]))
            reply = RdmaOp("read-data", self._rank(), wire.nbytes,
                           op_id=wire.op_id, data=data)
            # Reads are idempotent: a retransmitted request simply
            # re-reads, so the data packet needs no ack of its own.
            self.fabric.transmit_message(
                self.adapter, delivery.source, wire.nbytes, reply)
        elif wire.kind == "read-data":
            op = self._inflight.pop(wire.op_id, None)
            if op is not None and not op.completed:
                op.data = wire.data
                op.completed = True
                op.flag.set()
