"""Host memory copy cost model.

The eager transfer mode pays "an intermediary copy on the receiving side"
(§4.1); smp_plug pays two copies through a shared-memory FIFO; the TCP
stack pays kernel/user copies.  All of these are charged through one
:class:`MemoryModel` so that a single pair of constants controls every
copy in a node.
"""

from __future__ import annotations

from repro.networks.params import MemoryParams

#: The paper's nodes: dual-PentiumII 450 MHz, 64 MB SDRAM.
PAPER_NODE_MEMORY = MemoryParams(copy_overhead=250, copy_ns_per_byte=6.0)


class MemoryModel:
    """Computes CPU costs of memory copies on one node."""

    def __init__(self, params: MemoryParams = PAPER_NODE_MEMORY):
        self.params = params

    def copy_cost(self, nbytes: int) -> int:
        """CPU ns to memcpy ``nbytes`` within the node."""
        if nbytes < 0:
            raise ValueError("negative copy size")
        if nbytes == 0:
            return 0
        return self.params.copy_overhead + round(nbytes * self.params.copy_ns_per_byte)

    def copy_bandwidth_mb_s(self) -> float:
        """Asymptotic copy bandwidth in MB/s (10^6), for reporting."""
        return 1000.0 / self.params.copy_ns_per_byte
