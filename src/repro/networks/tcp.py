"""TCP over Fast-Ethernet (DEC 21140 boards, Linux 2.2 kernel stack).

Characteristics modelled (paper §3.3, §5.2):

- high per-message software overhead (syscalls, kernel TCP/IP stack);
- sender copies user data into socket buffers (per-byte CPU cost),
  pipelined against the wire for large messages;
- receiver pays a kernel-to-user copy per byte;
- 100 Mbit/s wire (~12.5 MB/s) minus framing => ~11.6 MB/s payload rate;
- polling is *periodic*: the only detection mechanism is the expensive
  ``select`` system call, so the Marcel polling thread ticks at a fixed
  period and pays ``poll_cost`` per tick whether or not traffic arrived.
  This standing cost is what the paper's Figure 9 measures.

Calibration anchors (Table 1, raw Madeleine): 121 us latency,
11.2 MB/s at 8 MB.
"""

from __future__ import annotations

from repro.marcel.polling import PollMode
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.units import us

TCP_FAST_ETHERNET = ProtocolParams(
    name="tcp",
    # send: write() syscall + kernel stack traversal, then socket-buffer copy
    send_overhead=us(44),
    cpu_send_ns_per_byte=5.5,
    # wire: Fast-Ethernet + switch + IP.  89 ns/B ~= 11.2 MB/s payload;
    # this effective rate folds in the kernel-to-user receive copy, which
    # overlaps with the arrival of subsequent segments.
    wire_latency=us(30),
    wire_ns_per_byte=89.0,
    wire_header_bytes=58,           # Ethernet+IP+TCP framing per segment
    chunk_size=32 * 1024,
    # receive: softirq + socket bookkeeping (copy is folded into the wire
    # rate, see above)
    recv_overhead=us(35),
    cpu_recv_ns_per_byte=0.0,
    # Madeleine/TCP driver: extra packed blocks are appended into the
    # stream buffer — expensive bookkeeping + copy (paper: ~21 us total
    # extra pack/unpack cost on TCP, split across both sides).
    pack_op_cost=us(10.5),
    unpack_op_cost=us(10.5),
    aggregates_cheaper=True,
    # polling: select() costs 6 us per call; ticks every 24 us while the
    # CPU is contended, every 3 us from the Marcel idle loop
    poll_mode=PollMode.PERIODIC,
    poll_cost=us(6),
    poll_period=us(24),
    poll_idle_period=us(3),
)


class TcpEndpoint(ProtocolEndpoint):
    """TCP endpoint — the generic pipelined send path fits TCP as-is."""
