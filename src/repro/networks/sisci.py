"""SISCI over SCI (Dolphin D310 boards).

Characteristics modelled (paper §5.3):

- very low latency: writes to a mapped remote memory segment (PIO);
- the *sending CPU* moves the bytes (programmed I/O), so sender per-byte
  cost is close to the wire rate and pipelines against it chunk-wise;
- the receiving side gets data deposited straight into host memory: the
  polling thread only checks a memory flag — cheap, event-style polling
  with near-zero per-byte receive cost;
- ~83 MB/s sustained for large transfers on the paper's 32-bit PCI nodes.

Calibration anchors (Table 1, raw Madeleine): 4.4 us latency,
82.6 MB/s at 8 MB.
"""

from __future__ import annotations

from repro.marcel.polling import PollMode
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.units import us

SISCI_SCI = ProtocolParams(
    name="sisci",
    # send: segment lookup + write barrier
    send_overhead=us(1.0),
    # PIO: the sending CPU *is* the transfer engine — 12.02 ns/B ~= 83 MB/s.
    # The ringlet itself is much faster (wire_ns_per_byte below models only
    # link serialization/contention), so PIO cost is not double-counted.
    cpu_send_ns_per_byte=12.1,
    wire_latency=us(1.85),
    wire_ns_per_byte=1.0,
    wire_header_bytes=16,
    chunk_size=64 * 1024,
    # receive: flag check + status parse; data already in host memory
    recv_overhead=us(0.8),
    cpu_recv_ns_per_byte=0.0,
    # Madeleine/SISCI driver: extra packed block = extra segment
    # transaction + flush (paper: ~6.5 us total extra pack/unpack pair).
    pack_op_cost=us(3.25),
    unpack_op_cost=us(3.25),
    # polling: memory flag, integrated with the Marcel idle loop
    poll_mode=PollMode.EVENT,
    poll_cost=us(0.4),
)


class SisciEndpoint(ProtocolEndpoint):
    """SISCI endpoint — generic PIO-pipelined send path."""
