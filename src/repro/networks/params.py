"""Cost-model parameters for networks and node memory.

Every microsecond reported by the benchmarks traces back to one of these
fields.  The three canned protocol parameter sets live next to their
endpoint classes (:mod:`repro.networks.tcp` etc.); they are calibrated so
the raw-Madeleine ping-pong lands on the paper's Table 1 anchors
(TCP 121 us / 11.2 MB/s, BIP 9.2 us / 122 MB/s, SISCI 4.4 us / 82.6 MB/s)
— see ``benchmarks/test_table1_raw_madeleine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.marcel.polling import PollMode


@dataclass(frozen=True)
class MemoryParams:
    """Host memory copy model (dual-PentiumII/450, SDRAM).

    A copy of ``n`` bytes costs ``copy_overhead + n * copy_ns_per_byte``
    of CPU time.  6.0 ns/byte ~= 167 MB/s sustained memcpy, typical for
    the paper's hardware.
    """

    copy_overhead: int = 250         # ns, per memcpy call
    copy_ns_per_byte: float = 6.0    # ns/byte


@dataclass(frozen=True)
class ProtocolParams:
    """Cost model of one network protocol stack (NIC + driver + API).

    Send path (charged to the sending thread, pipelined per chunk):
      ``send_overhead`` once per message, plus ``cpu_send_ns_per_byte``
      per byte (copies into NIC/socket buffers; ~0 for DMA networks).

    Wire: each chunk occupies the sender adapter's transmit side for
    ``size * wire_ns_per_byte`` and is delivered ``wire_latency`` later.

    Receive path (charged by the polling thread per delivered message):
      ``recv_overhead`` plus ``cpu_recv_ns_per_byte`` per byte.

    Madeleine driver costs: ``pack_op_cost`` / ``unpack_op_cost`` are the
    per-*additional*-block bookkeeping costs (the first block of a message
    is covered by send/recv overhead).  The paper measures the extra
    pack/unpack pair of ch_mad at 21 us (TCP), 6.5 us (SCI), 4.5 us (BIP)
    total across both sides (§5.2-5.4).

    Polling: ``poll_mode`` selects the Marcel polling style (§3.3);
    ``poll_cost``/``poll_period`` parameterize it.
    """

    name: str
    # -- send side ---------------------------------------------------------
    send_overhead: int               # ns per message
    cpu_send_ns_per_byte: float      # ns/byte of sender CPU
    # -- wire ---------------------------------------------------------------
    wire_latency: int                # ns, NIC-to-NIC
    wire_ns_per_byte: float          # serialization
    chunk_size: int                  # pipelining granularity (bytes)
    wire_header_bytes: int = 0       # per-chunk framing overhead on the wire
    # -- receive side --------------------------------------------------------
    recv_overhead: int = 0           # ns per message
    cpu_recv_ns_per_byte: float = 0.0
    # -- Madeleine driver ------------------------------------------------------
    pack_op_cost: int = 0            # ns per additional packed block (sender)
    unpack_op_cost: int = 0          # ns per additional unpacked block (receiver)
    aggregates_cheaper: bool = False  # TCP: CHEAPER blocks join the stream write
    # -- polling ----------------------------------------------------------------
    poll_mode: PollMode = PollMode.EVENT
    poll_cost: int = 0               # ns (per item for EVENT, per tick for PERIODIC)
    poll_period: int = 0             # ns (PERIODIC only, CPU contended)
    poll_idle_period: int = 0        # ns (PERIODIC only, CPU otherwise idle)
    # -- protocol quirks -----------------------------------------------------
    long_threshold: int = 0          # bytes; 0 = no long-message mode
    long_extra_send: int = 0         # ns extra sender overhead past threshold
    long_extra_latency: int = 0      # ns extra delivery latency past threshold
    # -- reliable transport (only charged when reliability is enabled) --------
    ack_timeout: int = 0             # ns before first retransmit; 0 = derived
    max_retries: int = 6             # retransmissions before TransportError
    retry_backoff: float = 2.0       # exponential backoff factor per retry

    def wire_time(self, nbytes: int) -> int:
        """Serialization time for one chunk of ``nbytes`` payload."""
        return round((nbytes + self.wire_header_bytes) * self.wire_ns_per_byte)

    def retransmit_timeout(self, nbytes: int = 0, attempt: int = 0) -> int:
        """Ack timeout before retransmission ``attempt`` (exponential).

        The base timeout is ``ack_timeout`` if set, otherwise derived from
        the protocol's own cost model: a few wire round trips plus twice
        the message's serialization time plus receive-side slack —
        generous enough that a healthy network essentially never
        retransmits spuriously, yet still protocol-proportionate (SCI
        times out in microseconds, TCP in milliseconds).
        """
        base = self.ack_timeout or (
            4 * self.wire_latency
            + 2 * (self.send_overhead + self.recv_overhead)
            + max(4 * self.poll_period, 100_000)
        )
        base += 2 * self.wire_time(max(nbytes, 4096))
        return round(base * (self.retry_backoff ** attempt))

    def chunks(self, nbytes: int) -> list[int]:
        """Split a payload into pipeline chunks (at least one, possibly 0-byte)."""
        if nbytes <= self.chunk_size:
            return [nbytes]
        full, rem = divmod(nbytes, self.chunk_size)
        sizes = [self.chunk_size] * full
        if rem:
            sizes.append(rem)
        return sizes
