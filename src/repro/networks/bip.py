"""BIP over Myrinet (32-bit LANai 4.3 boards, 1 MB on-board SRAM).

Characteristics modelled (paper §5.4 and [15]):

- low per-message overhead, DMA data movement (tiny sender per-byte CPU);
- LANai-4 DMA sustains ~122 MB/s on the paper's 32-bit PCI nodes;
- **two internal message classes**: short messages travel through
  pre-allocated adapter buffers; messages at/above ``long_threshold``
  switch to BIP's zero-copy long-message path, which costs an extra
  host/LANai handshake.  This is the documented cause of "the particular
  point for 1 KB-messages on the ch_mad curve ... due to BIP's
  implementation" (§5.4) — the bandwidth dip at 1 KB;
- polling is a cheap LANai status-word check (event mode).

Calibration anchors (Table 1, raw Madeleine): 9.2 us latency,
122 MB/s at 8 MB.
"""

from __future__ import annotations

from repro.marcel.polling import PollMode
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.units import us

BIP_MYRINET = ProtocolParams(
    name="bip",
    # send: descriptor post to LANai
    send_overhead=us(2.8),
    cpu_send_ns_per_byte=0.3,        # DMA: host CPU barely touches bytes
    # wire: LANai 4 DMA chain; 8.2 ns/B ~= 122 MB/s
    wire_latency=us(3.2),
    wire_ns_per_byte=8.2,
    wire_header_bytes=8,
    chunk_size=32 * 1024,
    # receive: status word + descriptor recycle
    recv_overhead=us(2.2),
    cpu_recv_ns_per_byte=0.0,
    # Madeleine/BIP driver: extra packed block = extra descriptor
    # (paper: ~4.5 us total extra pack/unpack pair).
    pack_op_cost=us(2.25),
    unpack_op_cost=us(2.25),
    # polling: LANai status word, integrated with the Marcel idle loop
    poll_mode=PollMode.EVENT,
    poll_cost=us(0.5),
    # BIP's internal short/long switch: the 1 KB bandwidth dip
    long_threshold=1024,
    long_extra_send=us(6),
    long_extra_latency=us(6),
)


class BipEndpoint(ProtocolEndpoint):
    """BIP endpoint — generic DMA send path plus the 1 KB long-message
    handshake inherited from the parameterized base."""
