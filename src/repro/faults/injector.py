"""Deterministic fault decisions, one per fabric transmission.

The injector is consulted by :class:`~repro.networks.fabric.NetworkFabric`
at delivery-scheduling time for every complete message.  Decisions are a
pure function of ``(plan, seed, consultation order)``: randomness comes
from one engine-owned :class:`random.Random` stream per fabric (namespaced
``faults/<plan seed>/<fabric>``), and the engine's event ordering is
itself deterministic, so two runs of the same configuration inject
*identical* faults — a faulty run can be replayed bit-for-bit for
debugging.

Uncovered fabrics never touch the RNG, so adding a fault spec for one
network does not perturb the fault schedule of another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FabricFaults, FaultPlan
from repro.sim.engine import Engine

#: Decision verdicts.
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one message transmission."""

    verdict: str = DELIVER          # DELIVER | DROP | CORRUPT
    extra_latency: int = 0          # ns added to the delivery time
    reason: str = ""                # drop/corrupt cause, for metrics labels

    @property
    def dropped(self) -> bool:
        return self.verdict == DROP

    @property
    def corrupted(self) -> bool:
        return self.verdict == CORRUPT


PASS = FaultDecision()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against live transmissions."""

    def __init__(self, engine: Engine, plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        #: Per-fabric transmission counter (for scheduled drops).
        self._message_index: dict[str, int] = {}
        self._rngs: dict[str, object] = {}

    def _rng(self, fabric_name: str):
        rng = self._rngs.get(fabric_name)
        if rng is None:
            rng = self.engine.rng(f"faults/{self.plan.seed}/{fabric_name}")
            self._rngs[fabric_name] = rng
        return rng

    def decide(self, fabric_name: str, src_index: int, dst_index: int,
               nbytes: int) -> FaultDecision:
        """The fate of one message transmitted right now on ``fabric_name``."""
        spec: FabricFaults | None = self.plan.spec_for(fabric_name)
        if spec is None:
            return PASS
        index = self._message_index.get(fabric_name, 0)
        self._message_index[fabric_name] = index + 1

        now = self.engine.now
        for down in spec.downs:
            if down.covers(now, src_index):
                reason = "link_down" if down.duration is not None else "link_dead"
                return FaultDecision(DROP, reason=reason)
        if index in spec.drop_messages:
            return FaultDecision(DROP, reason="scheduled")
        if not spec.randomized:
            return PASS
        # One fixed-order draw per probabilistic knob keeps the stream
        # aligned across runs even when earlier knobs fire.
        rng = self._rng(fabric_name)
        roll_drop = rng.random() if spec.drop_rate > 0 else 1.0
        roll_corrupt = rng.random() if spec.corrupt_rate > 0 else 1.0
        roll_spike = rng.random() if spec.latency_spike_rate > 0 else 1.0
        if roll_drop < spec.drop_rate:
            return FaultDecision(DROP, reason="random")
        if roll_corrupt < spec.corrupt_rate:
            return FaultDecision(CORRUPT, reason="random")
        if roll_spike < spec.latency_spike_rate:
            return FaultDecision(DELIVER, extra_latency=spec.latency_spike_ns,
                                 reason="latency_spike")
        return PASS

    def fabric_dead(self, fabric_name: str) -> bool:
        """Is the fabric permanently down right now (scheduled death passed)?"""
        spec = self.plan.spec_for(fabric_name)
        if spec is None:
            return False
        now = self.engine.now
        return any(d.duration is None and not d.adapters and now >= d.at
                   for d in spec.downs)
