"""Declarative fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is pure data — it describes the misbehaviour of the
simulated fabrics without touching any simulation state, so a plan can be
attached to cluster configs, serialized into experiment manifests, and
reused across seeds.  The :class:`~repro.faults.injector.FaultInjector`
turns a ``(plan, seed)`` pair into deterministic per-transmission
decisions.

Fault model (per fabric):

- **drop** — the message vanishes after serialization (the wire time was
  spent, nothing is delivered); probabilistic via ``drop_rate`` or
  scheduled via ``drop_messages`` (per-fabric transmission indices).
- **corrupt** — the message is delivered but its payload is poisoned;
  the reliable transport's simulated checksum detects it on receive and
  treats it as a loss (no ack, no delivery to the application).
- **latency spike** — the delivery is late by ``latency_spike_ns``.
- **link down** — a :class:`LinkDown` window during which every
  transmission on the fabric (or on the listed adapters) is blackholed.
  ``duration=None`` is the permanent case: NIC death / fabric death at a
  scheduled simulation time, the trigger for whole-channel failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError


@dataclass(frozen=True)
class LinkDown:
    """One outage window on a fabric.

    ``adapters`` restricts the outage to transmissions *from* the listed
    adapter indices (a NIC flap); empty means the whole fabric is down
    (switch failure).  ``duration=None`` means the outage is permanent.
    """

    at: int                              # ns, start of the outage
    duration: int | None = None          # ns; None = permanent death
    adapters: tuple[int, ...] = ()       # source adapter indices; () = all

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("LinkDown.at must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise FaultError("LinkDown.duration must be positive (or None)")

    def covers(self, now: int, adapter_index: int) -> bool:
        """Is a transmission from ``adapter_index`` at ``now`` blackholed?"""
        if now < self.at:
            return False
        if self.duration is not None and now >= self.at + self.duration:
            return False
        return not self.adapters or adapter_index in self.adapters


@dataclass(frozen=True)
class FabricFaults:
    """Fault behaviour of one fabric (probabilities are per message)."""

    drop_rate: float = 0.0               # P(message dropped)
    corrupt_rate: float = 0.0            # P(payload poisoned)
    latency_spike_rate: float = 0.0      # P(delivery delayed)
    latency_spike_ns: int = 0            # extra delivery latency when spiked
    drop_messages: tuple[int, ...] = ()  # scheduled drops by message index
    downs: tuple[LinkDown, ...] = ()     # outage windows / permanent death

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be within [0, 1], got {rate}")
        if self.latency_spike_rate > 0 and self.latency_spike_ns <= 0:
            raise FaultError("latency_spike_ns must be positive when "
                             "latency_spike_rate > 0")

    @property
    def randomized(self) -> bool:
        """Does this spec ever consult the RNG?"""
        return (self.drop_rate > 0 or self.corrupt_rate > 0
                or self.latency_spike_rate > 0)


def fabric_death(at: int) -> FabricFaults:
    """Shorthand: the whole fabric dies permanently at ``at`` ns."""
    return FabricFaults(downs=(LinkDown(at=at),))


@dataclass(frozen=True)
class NodeDeath:
    """One rank dies at ``at`` ns: its tasks are killed and its NICs go
    silent on *every* fabric, permanently.

    This is the process-failure model: nothing is ever announced to the
    survivors — the only observable symptom is the wire going dark, which
    the ch_mad failure detector must turn into a peer-death declaration.
    """

    rank: int                            # world rank of the victim
    at: int                              # ns, moment of death

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultError("NodeDeath.rank must be >= 0")
        if self.at < 0:
            raise FaultError("NodeDeath.at must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """Fault specs per fabric name, plus the seed for random decisions.

    Fabric keys match :attr:`NetworkFabric.name` exactly, falling back to
    the base protocol (``"bip#1"`` uses the ``"bip"`` entry unless a
    ``"bip#1"`` entry exists) so one line can make every rail of a
    protocol lossy.
    """

    fabrics: dict[str, FabricFaults] = field(default_factory=dict)
    seed: int = 0
    #: Scheduled process failures (world rank, time) — see NodeDeath.
    deaths: tuple[NodeDeath, ...] = ()

    def __post_init__(self) -> None:
        ranks = [death.rank for death in self.deaths]
        if len(ranks) != len(set(ranks)):
            raise FaultError("FaultPlan.deaths kills the same rank twice")

    def spec_for(self, fabric_name: str) -> FabricFaults | None:
        spec = self.fabrics.get(fabric_name)
        if spec is not None:
            return spec
        from repro.networks import base_protocol
        return self.fabrics.get(base_protocol(fabric_name))

    @classmethod
    def node_death(cls, rank: int, at: int, seed: int = 0) -> "FaultPlan":
        """Shorthand plan: world rank ``rank`` dies at ``at`` ns."""
        return cls(seed=seed, deaths=(NodeDeath(rank=rank, at=at),))


def lossy_plan(rate: float,
               fabrics: tuple[str, ...] = ("tcp", "sisci", "bip", "ib"),
               seed: int = 0) -> FaultPlan:
    """Shorthand: uniform probabilistic loss on the named fabrics.

    On IB the plan also covers RDMA traffic — writes, reads and HCA
    acks all pass through ``NetworkFabric.schedule_delivery`` — so the
    RC retransmission model gets exercised, not just the channel
    transport.  (Uncovered fabrics never consult the fault RNG, so
    adding ``"ib"`` here leaves every IB-free digest bit-identical.)
    """
    return FaultPlan(
        fabrics={name: FabricFaults(drop_rate=rate) for name in fabrics},
        seed=seed,
    )
