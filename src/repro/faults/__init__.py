"""Fault injection: deterministic network misbehaviour for robustness work.

The paper's ``ch_mad`` is a *true multi-protocol* device — several
networks live in one MPI session — but on perfect fabrics that topology
is never exercised as a redundancy asset.  This package injects faults
(loss, corruption, latency spikes, NIC flaps, permanent link death) into
the network models so the reliability layer
(:mod:`repro.madeleine.reliable`) and ch_mad's channel failover have
something to survive.

Everything is deterministic: a :class:`FaultPlan` plus the engine seed
fully determines every injected fault, so faulty runs replay
bit-for-bit.
"""

from repro.faults.death import (
    DeathController,
    FailureDetector,
)
from repro.faults.injector import (
    CORRUPT,
    DELIVER,
    DROP,
    FaultDecision,
    FaultInjector,
)
from repro.faults.plan import (
    FabricFaults,
    FaultPlan,
    LinkDown,
    NodeDeath,
    fabric_death,
    lossy_plan,
)

__all__ = [
    "CORRUPT",
    "DELIVER",
    "DROP",
    "DeathController",
    "FailureDetector",
    "FabricFaults",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "LinkDown",
    "NodeDeath",
    "fabric_death",
    "lossy_plan",
]
