"""Process death: killing a rank, and *detecting* that it died.

A :class:`~repro.faults.plan.NodeDeath` entry in a fault plan names the
world rank of a victim and the nanosecond it dies.  The
:class:`DeathController` executes the sentence: it kills every Marcel
thread of the process and silences its NICs on every fabric.  Nothing is
announced — the survivors' only evidence is the wire going dark, exactly
the failure model of a crashed node.

The :class:`FailureDetector` turns that silence into a *declaration*.
Liveness evidence is free: every delivery that reaches a process — data,
acks, heartbeats — proves its source was alive when it transmitted, so
detection piggybacks on normal traffic and only needs the ch_mad
low-rate heartbeat to cover idle periods.  When the reliable transport
exhausts a connection's retries, the detector adjudicates between two
very different diagnoses:

- **peer death** — the remote rank has been silent on *every* channel for
  longer than ``suspect_after``: declare it dead and escalate to MPI
  (``MPI_ERR_PROC_FAILED``), never to channel failover.
- **channel death** — we heard from the rank recently (within
  ``fresh_window``) on *some* path, so the rank is alive and this
  channel is broken: hand the failure to the PR-2
  :class:`~repro.madeleine.reliable.ChannelHealthMonitor` machinery.
- **undecided** — silence is growing but has not reached the threshold:
  keep retransmitting.  This terminates — either an ack/heartbeat
  refreshes the peer (→ channel verdict) or silence crosses the
  threshold (→ death verdict).

The simulator keeps one detector per session (failure knowledge is
"gossiped" instantly between survivors): declarations are global, which
is what makes ``shrink()``'s survivor sets trivially consistent.  The
per-rank *detection latency* — death time to declaration time — is still
honest, and is exported as the ``ft.detection_latency_ns`` histogram.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.errors import TransportError
    from repro.faults.plan import FaultPlan
    from repro.madeleine.channel import Connection
    from repro.madeleine.session import MadeleineSession, MadProcess
    from repro.sim.engine import Engine

#: Default ch_mad heartbeat period (ns).  Well under ``SUSPECT_AFTER_NS``
#: so several beats are lost before anyone is suspected.
HEARTBEAT_INTERVAL_NS = 2_000_000

#: Silence (ns, across *all* channels) after which a rank whose
#: connection exhausted its retries is declared dead.  Comfortably above
#: a full retry exhaust (~13-30 ms worth of backoff shares its window
#: with heartbeats arriving every 2 ms, so a live peer always refreshes).
SUSPECT_AFTER_NS = 10_000_000

#: A rank heard from within this window (ns) is definitely alive: a
#: retry-exhausted connection to it is a *channel* problem (failover).
FRESH_WINDOW_NS = 5_000_000

#: How long the simulated OS takes to reap a dead process sharing an SMP
#: node with a survivor (ns).  Node-local death detection cannot come
#: from network silence — the shared-memory device has no timeouts — so
#: the node-mate learns it from the OS, fast.
LOCAL_REAP_NS = 50_000

#: Verdicts of :meth:`FailureDetector.on_transport_failure`.
PEER_DEAD = "peer-dead"
CHANNEL_SUSPECT = "channel"
KEEP_RETRYING = "retry"


class FailureDetector:
    """Session-wide peer-death detector (piggyback liveness + timeouts)."""

    def __init__(self, engine: "Engine", session: "MadeleineSession",
                 heartbeat_interval: int = HEARTBEAT_INTERVAL_NS,
                 suspect_after: int = SUSPECT_AFTER_NS,
                 fresh_window: int = FRESH_WINDOW_NS):
        self.engine = engine
        self.session = session
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after
        self.fresh_window = fresh_window
        #: rank -> last virtual time any delivery from it was received.
        self.last_heard: dict[int, int] = {}
        #: Ranks *declared* dead (what survivors know).
        self.dead_ranks: set[int] = set()
        #: rank -> actual death time (ground truth, for latency metrics).
        self.death_times: dict[int, int] = {}
        #: Called with the dead world rank after each declaration
        #: (registered by the MPI FT layer, one per rank's env).
        self._listeners: list[Callable[[int], None]] = []

    # -- liveness evidence ---------------------------------------------------

    def heard_from(self, rank: int) -> None:
        """Any delivery from ``rank`` arrived: it was alive when it sent."""
        self.last_heard[rank] = self.engine.now

    def silent_for(self, rank: int) -> int:
        return self.engine.now - self.last_heard.get(rank, 0)

    def add_listener(self, listener: Callable[[int], None]) -> None:
        self._listeners.append(listener)

    # -- ground truth (DeathController only) ---------------------------------

    def rank_killed(self, rank: int) -> None:
        """Record the actual moment of death (not a declaration)."""
        self.death_times.setdefault(rank, self.engine.now)

    # -- declaration ---------------------------------------------------------

    def declare_dead(self, rank: int, reason: str) -> None:
        """Declare ``rank`` dead: drain its traffic, notify the MPI layer.

        Idempotent; all follow-up work (listener fan-out) runs from fresh
        engine callbacks so a declaration made inside a timer callback or
        a polling thread never runs MPI failure handling re-entrantly.
        """
        if rank in self.dead_ranks:
            return
        self.dead_ranks.add(rank)
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("ft.peer_deaths", 1, reason=reason)
            died_at = self.death_times.get(rank)
            if died_at is not None:
                ins.observe("ft.detection_latency_ns",
                            self.engine.now - died_at, reason=reason)
            ins.emit("ft.peer_death", rank=rank, reason=reason,
                     silent_ns=self.silent_for(rank))
        self.engine.tracer.emit("ft.peer_death", rank=rank, reason=reason)
        self._drain_traffic_toward(rank)
        for listener in list(self._listeners):
            self.engine.call_soon(listener, rank)

    def _drain_traffic_toward(self, rank: int) -> None:
        """Cancel every survivor's unacked transport traffic to ``rank``.

        Retransmitting into a dead NIC is pointless and would keep timer
        noise alive until finalize; the MPI layer fails the corresponding
        operations with ``MPI_ERR_PROC_FAILED`` instead.
        """
        for process in self.session.processes:
            if getattr(process, "dead", False) or process.rank == rank:
                continue
            if process.transport is None:
                continue
            for port in process._ports_by_channel.values():
                conn = port._connections.get(rank)
                if conn is None or not conn.unacked:
                    continue
                for pending in conn.unacked.values():
                    pending.cancel_timer()
                conn.unacked.clear()

    # -- adjudication --------------------------------------------------------

    def on_transport_failure(self, conn: "Connection",
                             error: "TransportError") -> str:
        """Adjudicate a retry-exhausted connection: peer or channel?

        Returns :data:`PEER_DEAD` (traffic already drained, do *not*
        fail the channel over), :data:`CHANNEL_SUSPECT` (run the normal
        channel-death machinery), or :data:`KEEP_RETRYING`.
        """
        remote = conn.remote_rank
        if remote in self.dead_ranks:
            self._drain_traffic_toward(remote)
            return PEER_DEAD
        silent = self.silent_for(remote)
        if silent >= self.suspect_after:
            self.declare_dead(remote, reason="timeout")
            return PEER_DEAD
        if silent <= self.fresh_window:
            return CHANNEL_SUSPECT
        return KEEP_RETRYING

    def on_unreachable(self, rank: int) -> None:
        """No surviving channel reaches ``rank``: ULFM calls that dead."""
        self.declare_dead(rank, reason="unreachable")


class DeathController:
    """Executes a plan's :class:`~repro.faults.plan.NodeDeath` entries."""

    def __init__(self, engine: "Engine", session: "MadeleineSession",
                 plan: "FaultPlan", detector: FailureDetector,
                 node_of_rank: dict[int, int] | None = None):
        self.engine = engine
        self.session = session
        self.detector = detector
        #: world rank -> node index, for the node-local OS reap below.
        self.node_of_rank = node_of_rank or {}
        for death in plan.deaths:
            engine.schedule_at(death.at, self.kill_rank, death.rank)

    def kill_rank(self, rank: int) -> None:
        """Kill ``rank`` now: silence its NICs, destroy its threads."""
        process: "MadProcess" = self.session.processes[rank]
        if getattr(process, "dead", False):
            return
        process.dead = True
        # The NICs go dark first: anything a dying finally-block still
        # tries to transmit vanishes at the fabric, never on the wire.
        for endpoint in process._endpoints.values():
            endpoint.adapter.dead = True
        if process.transport is not None:
            process.transport.cancel_pending()
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("faults.node_deaths", 1)
            ins.emit("fault.node_death", rank=rank)
        self.engine.tracer.emit("fault.node_death", rank=rank)
        for task in list(process.runtime.cpu.live_tasks()):
            task.kill()
        # Retire (never recycle) the dead rank's object pools: a pooled
        # task or request shell from a killed process must not be handed
        # back out into live traffic.  This also fires the progress
        # engine's registered pool-retirement hooks.
        process.runtime.cpu.retire_pools()
        self.detector.rank_killed(rank)
        checker = self.engine.checker
        if checker.enabled:
            checker.on_rank_dead(rank)
        self._schedule_local_reap(rank)

    def _schedule_local_reap(self, rank: int) -> None:
        """A surviving node-mate learns of the death from the OS, fast.

        Shared-memory traffic has no timeouts, so without this an SMP
        neighbour (e.g. the PR-6 hierarchical family's node leader dying
        under its followers) would only learn of the death through
        *inter*-node silence it may never be waiting on.
        """
        node = self.node_of_rank.get(rank)
        if node is None:
            return
        mates = [
            r for r, n in self.node_of_rank.items()
            if n == node and r != rank
            and not getattr(self.session.processes[r], "dead", False)
        ]
        if mates:
            self.engine.schedule(LOCAL_REAP_NS, self.detector.declare_dead,
                                 rank, "local-reap")
