"""MPI request objects (non-blocking operation handles)."""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import MPIRequestError, MPITruncationError
from repro.mpi.adi.rhandle import RecvHandle
from repro.mpi.status import Status
from repro.sim.coroutines import wait
from repro.sim.sync import Flag


class Request:
    """Base request: completion is a :class:`~repro.sim.sync.Flag`."""

    def __init__(self, flag: Flag):
        self._flag = flag

    @property
    def completed(self) -> bool:
        return self._flag.is_set

    def wait(self) -> Generator:
        """Block until complete; evaluates to the operation's result."""
        yield wait(self._flag)
        return self._result()

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: (done, result-or-None)."""
        if self._flag.is_set:
            return True, self._result()
        return False, None

    def _result(self) -> Any:
        return None

    @staticmethod
    def waitall(requests: list["Request"]) -> Generator:
        """Wait for every request; evaluates to the list of results."""
        results = []
        for request in requests:
            result = yield from request.wait()
            results.append(result)
        return results

    @staticmethod
    def testall(requests: list["Request"]) -> tuple[bool, list[Any] | None]:
        """MPI_Testall: (True, results) only when every request is done."""
        results = []
        for request in requests:
            done, result = request.test()
            if not done:
                return False, None
            results.append(result)
        return True, results

    @staticmethod
    def testany(requests: list["Request"]) -> tuple[bool, int, Any]:
        """MPI_Testany: (flag, index, result) of the first completed."""
        for i, request in enumerate(requests):
            done, result = request.test()
            if done:
                return True, i, result
        from repro.mpi.constants import UNDEFINED
        return False, UNDEFINED, None

    @staticmethod
    def waitany(requests: list["Request"]) -> Generator:
        """Wait until at least one completes; evaluates to
        ``(index, result)`` of the first completed request (lowest index
        on ties — deterministic under the cooperative scheduler).
        """
        if not requests:
            raise MPIRequestError("waitany over an empty request list")
        from repro.sim.coroutines import wait as _wait
        from repro.sim.sync import Flag
        while True:
            done, index, result = Request.testany(requests)
            if done:
                return index, result
            # Block until any request's flag fires: register a one-shot
            # forwarding waiter on every pending flag.
            wake = Flag(name="waitany")
            for request in requests:
                request._flag._waiters.append(_FlagForwarder(wake))
            yield _wait(wake)

    @staticmethod
    def waitsome(requests: list["Request"]) -> Generator:
        """MPI_Waitsome: wait for >= 1 completion; evaluates to the list
        of ``(index, result)`` pairs completed at that moment."""
        index, result = yield from Request.waitany(requests)
        completed = [(index, result)]
        for i, request in enumerate(requests):
            if i == index:
                continue
            done, extra = request.test()
            if done:
                completed.append((i, extra))
        return completed


class _FlagForwarder:
    """A pseudo-task whose wake-up sets a flag (waitany plumbing).

    Quacks like a blocked Task just enough for Flag.set() to wake it.
    """

    finished = False

    def __init__(self, target: Flag):
        self._target = target
        self.cpu = self

    # Flag.set calls task.cpu.make_ready(task, value).
    def make_ready(self, task: "_FlagForwarder", value: Any = None) -> None:
        task._target.set(value)


class SendRequest(Request):
    """Handle for a non-blocking send (paper: a temporary Marcel thread
    runs the actual transfer, §4.2.3).

    When the transfer thread hits a fault-tolerance error (peer death,
    revoked communicator) it completes the request anyway and stashes
    the exception here; ``wait()``/``test()`` re-raise it in the caller,
    mirroring how a blocking send would have failed.
    """

    #: Exception stashed by the isend worker thread (None = clean).
    error: Exception | None = None

    def _result(self) -> Any:
        if self.error is not None:
            raise self.error
        return None


class RecvRequest(Request):
    """Handle for a non-blocking receive."""

    #: True for shells owned by the progress engine's blocking-receive
    #: free-list (see ProgressEngine.acquire_recv); such a request never
    #: escapes to user code and is recycled after a clean completion.
    _pooled = False

    def __init__(self, handle: RecvHandle, comm=None):
        super().__init__(handle.flag)
        self.handle = handle
        #: The communicator, for translating the sender's world rank into
        #: a communicator-relative (or remote-group) rank in the status.
        self.comm = comm
        #: Unexpected-buffer bytes whose copy into the user buffer has not
        #: been charged yet (paid by the thread that waits; see
        #: :func:`repro.mpi.point2point.recv_wait`).
        self.pending_copy_bytes = 0
        #: The posted queue this receive sits in (set by irecv_impl),
        #: enabling :meth:`cancel`.
        self.posted_queue = None

    def cancel(self) -> bool:
        """Withdraw a pending receive (MPI_Cancel).

        Returns True if the receive was cancelled, False if it had
        already matched a message (cancellation came too late, as MPI
        allows).  A cancelled request completes with
        ``status.cancelled`` set and ``(None, status)`` as its result.
        """
        if self.handle.completed:
            return False
        if self.posted_queue is None or not self.posted_queue.remove(self.handle):
            return False
        self.handle.status.cancelled = True
        self.handle.flag.set(self.handle)
        return True

    def _result(self) -> tuple[Any, Status]:
        status = self.handle.status
        if status.error:
            from repro.mpi.constants import ERR_PROC_FAILED, ERR_REVOKED
            if status.error == ERR_PROC_FAILED:
                from repro.errors import MPIProcFailedError
                raise MPIProcFailedError(
                    f"receive failed: rank {status.failed_rank} died",
                    failed_rank=status.failed_rank,
                )
            if status.error == ERR_REVOKED:
                from repro.errors import MPIRevokedError
                raise MPIRevokedError("receive failed: communicator revoked")
            raise MPITruncationError(
                f"message of {status.count} bytes truncates a receive of "
                f"capacity {self.handle.capacity}"
            )
        if self.comm is not None and status.source_world >= 0:
            status.source = self.comm._rank_of_world(status.source_world)
        return self.handle.data, status
