"""Cartesian process topologies (MPI_Cart_create and friends).

Part of MPICH's generic layer: a :class:`CartComm` arranges a
communicator's processes on an N-dimensional (optionally periodic) grid
— the natural decomposition for the stencil workloads that motivate the
paper's meta-clusters.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.errors import MPIError, MPIRankError
from repro.mpi.communicator import Communicator
from repro.mpi.constants import PROC_NULL
from repro.mpi.group import Group


def dims_create(nnodes: int, ndims: int,
                dims: Sequence[int] | None = None) -> list[int]:
    """Choose a balanced grid shape (MPI_Dims_create).

    Fixed (nonzero) entries of ``dims`` are kept; zero entries are
    filled so the product equals ``nnodes``, balancing as evenly as
    possible with larger dimensions first.
    """
    dims = list(dims) if dims is not None else [0] * ndims
    if len(dims) != ndims:
        raise MPIError(f"dims has {len(dims)} entries for ndims={ndims}")
    fixed = 1
    free_positions = []
    for i, d in enumerate(dims):
        if d < 0:
            raise MPIError("negative dimension")
        if d > 0:
            fixed *= d
        else:
            free_positions.append(i)
    remaining, rem = divmod(nnodes, fixed) if fixed else (0, 1)
    if fixed == 0 or nnodes % fixed:
        raise MPIError(f"cannot factor {nnodes} over fixed dims {dims}")
    # Greedy balanced factorization of `remaining` into len(free) factors.
    factors = _balanced_factors(remaining, len(free_positions))
    for position, factor in zip(free_positions, factors):
        dims[position] = factor
    return dims


def _balanced_factors(n: int, k: int) -> list[int]:
    if k == 0:
        if n != 1:
            raise MPIError(f"cannot place {n} processes with no free dims")
        return []
    factors = [1] * k
    remaining = n
    divisor = 2
    primes = []
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            primes.append(divisor)
            remaining //= divisor
        divisor += 1
    if remaining > 1:
        primes.append(remaining)
    for prime in sorted(primes, reverse=True):
        smallest = min(range(k), key=lambda i: factors[i])
        factors[smallest] *= prime
    return sorted(factors, reverse=True)


class CartComm(Communicator):
    """A communicator with an attached Cartesian grid."""

    def __init__(self, env, group: Group, context_id: int,
                 dims: Sequence[int], periods: Sequence[bool]):
        super().__init__(env, group, context_id)
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        if len(self.dims) != len(self.periods):
            raise MPIError("dims and periods lengths differ")
        total = 1
        for d in self.dims:
            total *= d
        if total != self.size:
            raise MPIError(
                f"grid {self.dims} holds {total} processes, communicator "
                f"has {self.size}"
            )

    @property
    def ndims(self) -> int:
        return len(self.dims)

    # -- coordinate arithmetic (row-major, as in MPICH) -------------------------

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of ``rank`` (MPI_Cart_coords)."""
        if not 0 <= rank < self.size:
            raise MPIRankError(f"rank {rank} outside cart of size {self.size}")
        coords = []
        remainder = rank
        for extent in reversed(self.dims):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    @property
    def coords(self) -> tuple[int, ...]:
        """This process's grid coordinates."""
        return self.coords_of(self.rank)

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at ``coords`` (MPI_Cart_rank); PROC_NULL if off-grid on a
        non-periodic dimension."""
        if len(coords) != self.ndims:
            raise MPIError(f"expected {self.ndims} coordinates")
        rank = 0
        for coordinate, extent, periodic in zip(coords, self.dims,
                                                self.periods):
            if periodic:
                coordinate %= extent
            elif not 0 <= coordinate < extent:
                return PROC_NULL
            rank = rank * extent + coordinate
        return rank

    def shift(self, direction: int, displacement: int = 1) -> tuple[int, int]:
        """(source, dest) ranks for a shift (MPI_Cart_shift)."""
        if not 0 <= direction < self.ndims:
            raise MPIError(f"direction {direction} outside {self.ndims} dims")
        here = list(self.coords)
        ahead = list(here)
        behind = list(here)
        ahead[direction] += displacement
        behind[direction] -= displacement
        return self.rank_of(behind), self.rank_of(ahead)

    def neighbors(self) -> dict[int, tuple[int, int]]:
        """Per-dimension (source, dest) pairs for unit shifts."""
        return {d: self.shift(d) for d in range(self.ndims)}


def create_cart(comm: Communicator, dims: Sequence[int],
                periods: Sequence[bool] | None = None,
                reorder: bool = False) -> Generator:
    """Collective: build a :class:`CartComm` over ``comm`` (MPI_Cart_create).

    ``reorder`` is accepted for API fidelity but ignored — the simulator
    has no placement-driven reason to renumber.
    """
    periods = tuple(periods) if periods is not None else (False,) * len(dims)
    yield from comm.barrier()
    context = comm.env.allocate_context()
    return CartComm(comm.env, comm.group, context, dims, periods)
