"""Persistent communication requests (MPI_Send_init / MPI_Recv_init).

MPICH applications with fixed communication patterns (stencil halos!)
create the request once and ``start()`` it every iteration, saving the
per-call argument processing.  The simulator honours the same lifecycle:

    request = comm.send_init(buf, dest, tag)
    for _ in range(steps):
        request.start()
        ...
        yield from request.wait()
    request.free()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import MPIRequestError
from repro.mpi import point2point as _p2p
from repro.sim.sync import Flag

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


class PersistentRequest:
    """Base persistent request: inactive until :meth:`start`."""

    def __init__(self, comm: "Communicator"):
        self.comm = comm
        self.freed = False
        self._active: Any = None  # the live one-shot request, if started
        self.starts = 0

    def _check_usable(self) -> None:
        if self.freed:
            raise MPIRequestError("operation on a freed persistent request")

    @property
    def active(self) -> bool:
        return self._active is not None

    def start(self) -> None:
        """Begin one communication instance (MPI_Start)."""
        self._check_usable()
        if self._active is not None:
            raise MPIRequestError(
                "MPI_Start on an already-active persistent request"
            )
        self._active = self._launch()
        self.starts += 1

    def _launch(self):
        raise NotImplementedError  # pragma: no cover

    def wait(self) -> Generator:
        """Complete the current instance; the request becomes inactive
        (restartable) again.  Evaluates to the instance's result."""
        self._check_usable()
        if self._active is None:
            raise MPIRequestError("wait on an inactive persistent request")
        request, self._active = self._active, None
        from repro.mpi.request import RecvRequest
        if isinstance(request, RecvRequest):
            # Receives may carry a deferred unexpected-buffer copy.
            result = yield from _p2p.recv_wait(self.comm, request)
        else:
            result = yield from request.wait()
        return result

    def test(self) -> tuple[bool, Any]:
        self._check_usable()
        if self._active is None:
            raise MPIRequestError("test on an inactive persistent request")
        done, result = self._active.test()
        if done:
            self._active = None
        return done, result

    def free(self) -> None:
        """Release the request (MPI_Request_free).  Must be inactive."""
        if self._active is not None:
            raise MPIRequestError("freeing an active persistent request")
        self.freed = True


class PersistentSend(PersistentRequest):
    """MPI_Send_init result.

    The payload object is fixed at init; for mutable buffers (numpy
    arrays) the *current contents at each start()* are sent, matching
    MPI's buffer-reuse idiom for persistent sends.
    """

    def __init__(self, comm: "Communicator", data: Any, dest: int, tag: int,
                 size: int | None):
        super().__init__(comm)
        self.data = data
        self.dest = dest
        self.tag = tag
        self.size = size

    def _launch(self):
        return _p2p.isend_impl(self.comm, self.data, self.dest, self.tag,
                               self.size, self.comm.context_id)


class PersistentRecv(PersistentRequest):
    """MPI_Recv_init result."""

    def __init__(self, comm: "Communicator", source: int, tag: int,
                 capacity: int | None):
        super().__init__(comm)
        self.source = source
        self.tag = tag
        self.capacity = capacity

    def _launch(self):
        return _p2p.irecv_impl(self.comm, self.source, self.tag,
                               self.capacity, self.comm.context_id)


def start_all(requests: list[PersistentRequest]) -> None:
    """MPI_Startall."""
    for request in requests:
        request.start()
