"""Point-to-point implementation: the glue between the user API and the
ADI (MPICH's "generic ADI code" box).

All functions here are generators run in the calling (main or temporary)
thread of the sending/receiving process.  The check-unexpected-then-post
sequence in :func:`irecv_impl` is atomic because the scheduler is
cooperative and the sequence contains no blocking yield — the exact
invariant real MPICH maintains with locks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import (
    FailoverExhaustedError,
    MPIProcFailedError,
    MPIRankError,
    MPIRevokedError,
    MPITagError,
)
from repro.mpi.adi.device import clone_payload
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.protocol import TransferMode, select_mode
from repro.mpi.adi.queues import UnexpectedKind
from repro.mpi.adi.rhandle import RecvHandle, SendHandle
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    ERR_TRUNCATE,
    PROC_NULL,
    TAG_UB,
    infer_size,
)
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status
from repro.sim.coroutines import charge, wait
from repro.sim.sync import Flag

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def _check_rank(comm: "Communicator", rank: int, *, wildcard: bool,
                what: str) -> None:
    if rank == PROC_NULL:
        return
    if wildcard and rank == ANY_SOURCE:
        return
    if not 0 <= rank < comm._peer_size:
        raise MPIRankError(
            f"{what} rank {rank} out of range for communicator of size "
            f"{comm._peer_size}"
        )


def _check_tag(tag: int, *, wildcard: bool) -> None:
    if wildcard and tag == ANY_TAG:
        return
    if not 0 <= tag <= TAG_UB:
        raise MPITagError(f"tag {tag} outside [0, {TAG_UB}]")


class SendGate:
    """FIFO ticket gate enforcing MPI's non-overtaking send order.

    ``isend`` runs its transfer in a temporary Marcel thread, so without
    ordering a later blocking send could reach the wire first.  Each send
    towards one (context, destination) takes a ticket at *call* time and
    transmits only when its ticket is current; the gate is released as
    soon as the message's matching slot at the receiver is secured (an
    eager message fully sent, or a rendezvous *request* sent).
    """

    def __init__(self, dest_world: int | None = None) -> None:
        self._next = 0
        self.current = 0
        #: Destination rank (wait-for-graph metadata: a task parked on a
        #: gate ticket is transitively waiting on this rank's receiver).
        self.dest_world = dest_world
        self._flags: dict[int, Flag] = {}

    @property
    def depth(self) -> int:
        """Sends holding a ticket that have not released it yet."""
        return self._next - self.current

    def ticket(self) -> int:
        ticket = self._next
        self._next += 1
        return ticket

    def enter(self, ticket: int) -> Generator:
        while self.current != ticket:
            flag = self._flags.get(ticket)
            if flag is None:
                flag = self._flags[ticket] = Flag(name="send-gate")
                flag.rank_dep = self.dest_world
                flag.dep_describe = (f"send-gate ticket {ticket} towards "
                                     f"rank {self.dest_world}")
            yield wait(flag)

    def leave(self) -> None:
        self.current += 1
        flag = self._flags.pop(self.current, None)
        if flag is not None:
            flag.set()

    def releaser(self):
        """A call-once wrapper around :meth:`leave`."""
        done = [False]

        def release() -> None:
            if not done[0]:
                done[0] = True
                self.leave()

        return release


def send_impl(comm: "Communicator", data: Any, dest: int, tag: int,
              size: int | None, context_id: int,
              synchronous: bool = False,
              ticket: int | None = None) -> Generator:
    """Blocking send body (also run inside isend's temporary thread).

    ``synchronous`` forces the rendezvous protocol regardless of size —
    MPI_Ssend semantics: completion implies the receive has started
    (the acknowledgement only comes once a matching receive exists).

    ``ticket`` is an ordering ticket already issued at isend call time;
    blocking sends issue their own on entry.
    """
    _check_rank(comm, dest, wildcard=False, what="destination")
    _check_tag(tag, wildcard=False)
    if dest == PROC_NULL:
        return
    env = comm.env
    dest_world = comm._dest_world(dest)
    if env.ft is not None and ticket is None:
        # Fault tolerance: fail fast instead of transmitting into a dead
        # rank or a revoked communicator (nothing has been charged yet).
        # A pre-issued ticket (isend) must not bail here — it would leave
        # the ordering gate waiting forever for its turn; the post-gate
        # re-check below consumes and releases the ticket properly.
        env.ft.check_send(context_id, dest_world)
    nbytes = infer_size(data) if size is None else int(size)
    device = env.select_device(dest_world)
    envelope = Envelope(context_id, env.rank, tag, nbytes,
                        byte_order=env.progress.byte_order)
    payload = clone_payload(data)
    if synchronous:
        mode = TransferMode.RENDEZVOUS
    else:
        mode = select_mode(nbytes, device.threshold(dest_world))
    engine = env.process.engine
    engine.tracer.emit(
        "adi.send", src=env.rank, dst=dest_world, tag=tag, size=nbytes,
        device=device.name, mode=mode.value,
    )
    ins = engine.instruments
    if ins.enabled:
        ins.count("adi.mode", 1, mode=mode.value, device=device.name,
                  rank=env.rank)
        ins.observe("adi.msg_bytes", nbytes, mode=mode.value, rank=env.rank)
    gate = send_gate(comm, dest_world, context_id)
    if ticket is None:
        ticket = gate.ticket()
    if ins.enabled:
        # Depth is sampled at ticket time — its natural peak.
        ins.set_gauge("sendgate.depth", gate.depth, rank=env.rank,
                      dest=dest_world)
    yield from gate.enter(ticket)
    if env.ft is not None:
        # Re-check after the gate wait: the peer may have died (or the
        # comm been revoked) while this send was parked behind others.
        try:
            env.ft.check_send(context_id, dest_world)
        except (MPIProcFailedError, MPIRevokedError):
            gate.leave()
            raise
    checker = engine.checker
    if checker.enabled:
        # Recorded *after* the gate admitted this send: gate order is
        # wire order is MPI stream order (non-overtaking).
        checker.on_send(envelope, dest_world)
    release = gate.releaser()
    try:
        if mode is TransferMode.EAGER:
            yield from device.send_eager(dest_world, envelope, payload)
        else:
            shandle = SendHandle(envelope, payload)
            shandle.dest_world = dest_world
            # The gate opens once the request has secured the match slot.
            shandle.on_request_sent = release
            yield from device.send_rndv(dest_world, shandle)
    except FailoverExhaustedError as exc:
        if env.ft is None:
            raise
        # Every path to the destination is gone: under the rank-failure
        # model that *is* peer death (the detector has been told).
        raise MPIProcFailedError(
            f"send to rank {dest_world} failed: peer unreachable",
            failed_rank=dest_world,
        ) from exc
    finally:
        release()


def send_gate(comm: "Communicator", dest_world: int,
              context_id: int) -> SendGate:
    """The per-(context, destination) ordering gate of this process."""
    gates = comm.env.progress.send_gates
    key = (context_id, dest_world)
    gate = gates.get(key)
    if gate is None:
        gate = gates[key] = SendGate(dest_world=dest_world)
    return gate


def isend_impl(comm: "Communicator", data: Any, dest: int, tag: int,
               size: int | None, context_id: int,
               synchronous: bool = False,
               pre_charge: int = 0) -> SendRequest:
    """Non-blocking send: spawn a temporary Marcel thread (§4.2.3).

    The payload is captured *now* (mpi4py's lowercase isend serializes at
    call time), so callers may reuse their buffer immediately.

    ``pre_charge`` is a CPU cost the temporary thread pays before the
    transfer — the uppercase Isend path uses it to charge a
    non-contiguous datatype's gather copy without blocking the caller.
    """
    done = Flag(name="isend")
    payload = clone_payload(data)
    # The ordering ticket is taken NOW, at call time: the temporary
    # thread may run later, but this send's position in the stream is
    # its isend position (MPI non-overtaking).
    ticket = None
    if dest != PROC_NULL and 0 <= dest < comm._peer_size:
        dest_world = comm._dest_world(dest)
        gate = send_gate(comm, dest_world, context_id)
        ticket = gate.ticket()
        ins = comm.env.process.engine.instruments
        if ins.enabled:
            ins.set_gauge("sendgate.depth", gate.depth, rank=comm.env.rank,
                          dest=dest_world)

    request = SendRequest(done)

    def body():
        if pre_charge:
            yield charge(pre_charge)
        try:
            yield from send_impl(comm, payload, dest, tag, size, context_id,
                                 synchronous=synchronous, ticket=ticket)
        except (MPIProcFailedError, MPIRevokedError) as exc:
            # FT failure inside the worker thread: complete the request
            # and re-raise from the caller's wait()/test().
            request.error = exc
        finally:
            done.set()

    comm.env.process.runtime.spawn_temporary(body(), name="isend")
    return request


def irecv_impl(comm: "Communicator", source: int, tag: int,
               capacity: int | None, context_id: int,
               pooled: bool = False) -> RecvRequest:
    """Post a receive (non-blocking).  Never yields — atomic w.r.t. the
    cooperative scheduler.

    ``pooled=True`` (blocking ``comm.recv`` only) draws the
    request/handle shell from the progress engine's free-list —
    ``recv_wait`` returns it after a clean completion.  Requests that
    escape to user code (irecv) must stay ``pooled=False``.
    """
    _check_rank(comm, source, wildcard=True, what="source")
    _check_tag(tag, wildcard=True)
    env = comm.env
    if source == PROC_NULL:
        handle = RecvHandle(context_id, PROC_NULL, tag, capacity)
        handle.status.source = PROC_NULL
        handle.status.count = 0
        handle.flag.set(handle)
        return RecvRequest(handle, comm)
    source_world = (ANY_SOURCE if source == ANY_SOURCE
                    else comm._source_world(source))
    if env.ft is not None:
        failure = env.ft.recv_precheck(context_id, source_world)
        if failure is not None:
            # The source (or the comm) is already known broken: complete
            # immediately with the structured error instead of posting a
            # receive that could never match.
            code, failed_rank = failure
            handle = RecvHandle(context_id, source_world, tag, capacity)
            handle.status.error = code
            handle.status.failed_rank = failed_rank
            handle.flag.set(handle)
            return RecvRequest(handle, comm)
    entry = env.progress.unexpected.match(context_id, source_world, tag)
    if pooled:
        request = env.progress.acquire_recv(comm, context_id, source_world,
                                            tag, capacity)
    else:
        request = RecvRequest(
            RecvHandle(context_id, source_world, tag, capacity), comm)
    handle = request.handle
    # Wait-for-graph metadata: a task blocked on this receive waits on
    # the source rank (unknown for MPI_ANY_SOURCE).
    handle.flag.rank_dep = (None if source_world == ANY_SOURCE
                            else source_world)
    handle.flag.dep_describe = (
        f"recv source={'ANY' if source_world == ANY_SOURCE else source_world}"
        f" tag={'ANY' if tag == ANY_TAG else tag} ctx={context_id}")
    checker = env.process.engine.checker
    if checker.enabled and entry is not None:
        checker.on_match(entry.envelope, env.rank)
    if entry is None:
        env.progress.posted.post(handle)
        request.posted_queue = env.progress.posted
        return request
    if entry.kind is UnexpectedKind.EAGER:
        if capacity is not None and entry.envelope.size > capacity:
            handle.status.error = ERR_TRUNCATE
        handle.complete(entry.envelope, entry.data)
        # The unexpected-buffer -> user-buffer copy is charged by the
        # thread that eventually waits (irecv itself must not yield).
        request.pending_copy_bytes = entry.envelope.size
        return request
    # RNDV_REQUEST: the sender is waiting for our acknowledgement.  A
    # temporary thread sends it (the paper's thread discipline, §4.2.3) —
    # this also keeps irecv itself non-blocking.
    handle.rndv_source = entry.envelope.source
    sync = env.progress.register_sync(handle)
    token = entry.rndv_token
    env.process.runtime.spawn_temporary(
        token.device.send_rndv_ack(token, sync.sync_id), name="rndv-ack"
    )
    return request


def recv_wait(comm: "Communicator", request: RecvRequest) -> Generator:
    """Complete a receive request: charge deferred copies, then wait."""
    if request.pending_copy_bytes:
        nbytes, request.pending_copy_bytes = request.pending_copy_bytes, 0
        yield charge(comm.env.progress.memory.copy_cost(nbytes))
    result = yield from request.wait()
    if request._pooled:
        # Clean completion of a blocking receive: the shell goes back to
        # the free-list (an error above raised past this point, keeping
        # the shell out of circulation).
        comm.env.progress.release_recv(request)
    return result


def probe_impl(comm: "Communicator", source: int, tag: int,
               context_id: int) -> Generator:
    """Blocking probe: evaluates to a Status for the first match."""
    _check_rank(comm, source, wildcard=True, what="source")
    _check_tag(tag, wildcard=True)
    env = comm.env
    source_world = (ANY_SOURCE if source == ANY_SOURCE
                    else comm._source_world(source))
    while True:
        entry = env.progress.unexpected.peek(context_id, source_world, tag)
        if entry is not None:
            return _entry_status(comm, entry)
        yield wait(env.progress.arrivals)


def iprobe_impl(comm: "Communicator", source: int, tag: int,
                context_id: int) -> tuple[bool, Status | None]:
    """Non-blocking probe."""
    _check_rank(comm, source, wildcard=True, what="source")
    _check_tag(tag, wildcard=True)
    source_world = (ANY_SOURCE if source == ANY_SOURCE
                    else comm._source_world(source))
    entry = comm.env.progress.unexpected.peek(context_id, source_world, tag)
    if entry is None:
        return False, None
    return True, _entry_status(comm, entry)


def _entry_status(comm: "Communicator", entry) -> Status:
    envelope = entry.envelope
    return Status(source=comm._rank_of_world(envelope.source),
                  tag=envelope.tag, count=envelope.size,
                  source_world=envelope.source)
