"""The MPI datatype engine (the ADI's "datatype management" box, Fig. 1).

Datatypes describe memory layouts over numpy buffers.  A derived type
compiles to a flat array of *byte offsets* of its basic elements; packing
gathers those offsets into a contiguous buffer, unpacking scatters them
back.  The offsets representation makes pack/unpack a single vectorized
numpy take/put and makes type signatures (the sequence of basic types)
directly comparable for send/receive matching.

Supported constructors mirror MPI-1: contiguous, vector, hvector,
indexed, and struct.  All types must be committed before use in
communication, as in MPI.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MPIDatatypeError


class Datatype:
    """Base class; concrete layouts are built via the module constructors."""

    def __init__(self, name: str, base_dtype: np.dtype | None,
                 byte_offsets: np.ndarray, extent: int):
        self.name = name
        #: numpy scalar dtype of basic elements (None for heterogeneous
        #: struct types, which pack per-field).
        self.base_dtype = base_dtype
        #: Byte offsets (within one extent) of each basic element.
        self.byte_offsets = np.asarray(byte_offsets, dtype=np.int64)
        #: Span of one type instance in bytes (stride between count items).
        self.extent = int(extent)
        self.committed = False

    # -- introspection --------------------------------------------------------

    @property
    def size(self) -> int:
        """Bytes of actual data in one instance (excludes holes)."""
        if self.base_dtype is None:
            raise NotImplementedError  # pragma: no cover - struct overrides
        return int(self.byte_offsets.size * self.base_dtype.itemsize)

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a dense byte run starting at offset 0."""
        if self.base_dtype is None:
            return False
        item = self.base_dtype.itemsize
        if self.byte_offsets.size == 0:
            return True
        expected = np.arange(self.byte_offsets.size, dtype=np.int64) * item
        return (self.size == self.extent
                and bool(np.array_equal(self.byte_offsets, expected)))

    def signature(self) -> tuple:
        """Type signature: the ordered sequence of basic element kinds."""
        return (str(self.base_dtype), int(self.byte_offsets.size))

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> "Datatype":
        """Mark the type ready for communication (returns self)."""
        self.committed = True
        return self

    def _require_committed(self) -> None:
        if not self.committed:
            raise MPIDatatypeError(f"datatype {self.name} is not committed")

    # -- pack / unpack ------------------------------------------------------------

    def _element_indices(self, count: int) -> np.ndarray:
        """Flat element indices (in base elements) for ``count`` instances."""
        item = self.base_dtype.itemsize
        rem = self.byte_offsets % item
        if np.any(rem):
            raise MPIDatatypeError(
                f"datatype {self.name}: offsets not aligned to {self.base_dtype}"
            )
        per_instance = self.byte_offsets // item
        if self.extent % item:
            raise MPIDatatypeError(
                f"datatype {self.name}: extent {self.extent} not aligned"
            )
        stride = self.extent // item
        starts = np.arange(count, dtype=np.int64) * stride
        return (starts[:, None] + per_instance[None, :]).ravel()

    def pack(self, buffer: np.ndarray, count: int = 1) -> np.ndarray:
        """Gather ``count`` instances from ``buffer`` into a dense array.

        ``buffer`` must be a 1-D array of :attr:`base_dtype` long enough
        to cover ``count`` extents.
        """
        self._require_committed()
        buf = self._as_flat(buffer)
        idx = self._element_indices(count)
        if idx.size and idx.max() >= buf.size:
            raise MPIDatatypeError(
                f"buffer too small: needs {idx.max() + 1} elements, has {buf.size}"
            )
        return buf[idx].copy()

    def unpack(self, packed: np.ndarray, buffer: np.ndarray, count: int = 1) -> None:
        """Scatter a dense array produced by :meth:`pack` into ``buffer``."""
        self._require_committed()
        buf = self._as_flat(buffer)
        idx = self._element_indices(count)
        data = np.asarray(packed, dtype=self.base_dtype).ravel()
        if data.size != idx.size:
            raise MPIDatatypeError(
                f"packed data has {data.size} elements, layout expects {idx.size}"
            )
        if idx.size and idx.max() >= buf.size:
            raise MPIDatatypeError(
                f"buffer too small: needs {idx.max() + 1} elements, has {buf.size}"
            )
        buf[idx] = data

    def _as_flat(self, buffer: np.ndarray) -> np.ndarray:
        arr = np.asarray(buffer)
        if arr.dtype != self.base_dtype:
            raise MPIDatatypeError(
                f"buffer dtype {arr.dtype} != datatype base {self.base_dtype}"
            )
        return arr.reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Datatype {self.name} size={self.size} extent={self.extent}>"


class BasicDatatype(Datatype):
    """A predefined scalar type (committed at construction)."""

    def __init__(self, name: str, np_dtype: str):
        dtype = np.dtype(np_dtype)
        super().__init__(name, dtype, np.array([0], dtype=np.int64),
                         extent=dtype.itemsize)
        self.committed = True

    def signature(self) -> tuple:
        return (self.name, 1)


BYTE = BasicDatatype("MPI_BYTE", "uint8")
CHAR = BasicDatatype("MPI_CHAR", "int8")
SHORT = BasicDatatype("MPI_SHORT", "int16")
INT = BasicDatatype("MPI_INT", "int32")
LONG = BasicDatatype("MPI_LONG", "int64")
FLOAT = BasicDatatype("MPI_FLOAT", "float32")
DOUBLE = BasicDatatype("MPI_DOUBLE", "float64")
COMPLEX = BasicDatatype("MPI_COMPLEX", "complex64")
DOUBLE_COMPLEX = BasicDatatype("MPI_DOUBLE_COMPLEX", "complex128")

BASIC_TYPES = {
    t.name: t
    for t in (BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, COMPLEX,
              DOUBLE_COMPLEX)
}


def _require_basic_or_derived(base: Datatype) -> None:
    if not isinstance(base, Datatype):
        raise MPIDatatypeError(f"expected a Datatype, got {type(base).__name__}")
    if base.base_dtype is None:
        raise MPIDatatypeError(
            "struct types cannot be nested inside other constructors "
            "in this implementation"
        )


def contiguous(count: int, base: Datatype, name: str | None = None) -> Datatype:
    """``count`` consecutive instances of ``base`` (MPI_Type_contiguous)."""
    _require_basic_or_derived(base)
    if count < 0:
        raise MPIDatatypeError("count must be >= 0")
    offsets = (np.arange(count, dtype=np.int64)[:, None] * base.extent
               + base.byte_offsets[None, :]).ravel()
    return Datatype(name or f"contig({count},{base.name})", base.base_dtype,
                    offsets, extent=count * base.extent)


def vector(count: int, blocklength: int, stride: int, base: Datatype,
           name: str | None = None) -> Datatype:
    """``count`` blocks of ``blocklength`` elements, strided by ``stride``
    elements (MPI_Type_vector)."""
    return hvector(count, blocklength, stride * base.extent, base,
                   name=name or f"vector({count},{blocklength},{stride},{base.name})")


def hvector(count: int, blocklength: int, stride_bytes: int, base: Datatype,
            name: str | None = None) -> Datatype:
    """Like :func:`vector` but the stride is given in bytes."""
    _require_basic_or_derived(base)
    if count < 0 or blocklength < 0:
        raise MPIDatatypeError("count and blocklength must be >= 0")
    block = (np.arange(blocklength, dtype=np.int64)[:, None] * base.extent
             + base.byte_offsets[None, :]).ravel()
    offsets = (np.arange(count, dtype=np.int64)[:, None] * stride_bytes
               + block[None, :]).ravel()
    extent = (count - 1) * stride_bytes + blocklength * base.extent if count else 0
    return Datatype(name or f"hvector({count},{blocklength},{stride_bytes},{base.name})",
                    base.base_dtype, offsets, extent=max(extent, 0))


def indexed(blocklengths: Sequence[int], displacements: Sequence[int],
            base: Datatype, name: str | None = None) -> Datatype:
    """Blocks of varying length at varying element displacements
    (MPI_Type_indexed)."""
    _require_basic_or_derived(base)
    if len(blocklengths) != len(displacements):
        raise MPIDatatypeError("blocklengths and displacements differ in length")
    chunks = []
    top = 0
    for length, disp in zip(blocklengths, displacements):
        if length < 0:
            raise MPIDatatypeError("negative blocklength")
        start = disp * base.extent
        block = (np.arange(length, dtype=np.int64)[:, None] * base.extent
                 + base.byte_offsets[None, :] + start).ravel()
        chunks.append(block)
        top = max(top, start + length * base.extent)
    offsets = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return Datatype(name or f"indexed({len(blocklengths)},{base.name})",
                    base.base_dtype, offsets, extent=top)


class StructDatatype(Datatype):
    """Heterogeneous struct: per-field (offset, count, basic type).

    Packing a struct operates on a raw ``uint8`` buffer; each field is
    gathered with its own dtype view.  This mirrors MPI_Type_struct over
    a byte-addressable region.
    """

    def __init__(self, fields: Sequence[tuple[int, int, BasicDatatype]],
                 extent: int | None = None, name: str | None = None):
        self.fields = tuple(fields)
        for offset, count, ftype in self.fields:
            if offset < 0 or count < 0:
                raise MPIDatatypeError("negative field offset or count")
            if not isinstance(ftype, BasicDatatype):
                raise MPIDatatypeError("struct fields must use basic types")
        span = max((o + c * t.extent for o, c, t in self.fields), default=0)
        super().__init__(name or f"struct({len(self.fields)} fields)", None,
                         np.empty(0, dtype=np.int64),
                         extent=extent if extent is not None else span)

    @property
    def size(self) -> int:
        return sum(c * t.extent for _, c, t in self.fields)

    def signature(self) -> tuple:
        return tuple((t.name, c) for _, c, t in self.fields)

    def pack(self, buffer: np.ndarray, count: int = 1) -> np.ndarray:
        self._require_committed()
        raw = self._as_bytes(buffer)
        out = np.empty(self.size * count, dtype=np.uint8)
        cursor = 0
        for instance in range(count):
            base = instance * self.extent
            for offset, n, ftype in self.fields:
                nbytes = n * ftype.extent
                start = base + offset
                out[cursor:cursor + nbytes] = raw[start:start + nbytes]
                cursor += nbytes
        return out

    def unpack(self, packed: np.ndarray, buffer: np.ndarray, count: int = 1) -> None:
        self._require_committed()
        raw = self._as_bytes(buffer)
        data = np.asarray(packed, dtype=np.uint8).ravel()
        if data.size != self.size * count:
            raise MPIDatatypeError(
                f"packed struct data has {data.size} bytes, expected "
                f"{self.size * count}"
            )
        cursor = 0
        for instance in range(count):
            base = instance * self.extent
            for offset, n, ftype in self.fields:
                nbytes = n * ftype.extent
                start = base + offset
                raw[start:start + nbytes] = data[cursor:cursor + nbytes]
                cursor += nbytes

    @staticmethod
    def _as_bytes(buffer: np.ndarray) -> np.ndarray:
        arr = np.asarray(buffer)
        if arr.dtype != np.uint8:
            raise MPIDatatypeError("struct pack/unpack requires a uint8 buffer")
        return arr.reshape(-1)


def struct(fields: Sequence[tuple[int, int, BasicDatatype]],
           extent: int | None = None, name: str | None = None) -> StructDatatype:
    """Build an MPI_Type_struct-like heterogeneous layout."""
    return StructDatatype(fields, extent=extent, name=name)


def dup(base: Datatype, name: str | None = None) -> Datatype:
    """An independent, uncommitted copy of a type (MPI_Type_dup)."""
    if isinstance(base, StructDatatype):
        copy = StructDatatype(base.fields, extent=base.extent,
                              name=name or f"dup({base.name})")
    else:
        copy = Datatype(name or f"dup({base.name})", base.base_dtype,
                        base.byte_offsets.copy(), base.extent)
    return copy


def create_resized(base: Datatype, lb: int, extent: int,
                   name: str | None = None) -> Datatype:
    """Change a type's lower bound and extent (MPI_Type_create_resized).

    ``lb`` shifts where each instance is considered to start; ``extent``
    sets the stride between consecutive instances.  The shifted layout
    must not produce negative element offsets.
    """
    _require_basic_or_derived(base)
    if extent <= 0:
        raise MPIDatatypeError("resized extent must be positive")
    shifted = base.byte_offsets - lb
    if shifted.size and shifted.min() < 0:
        raise MPIDatatypeError(
            f"lower bound {lb} puts elements before the instance start"
        )
    return Datatype(name or f"resized({base.name},lb={lb},extent={extent})",
                    base.base_dtype, shifted, extent)
