"""Collective operations (MPICH's "generic part", Fig. 1).

Everything is built on point-to-point over the communicator's hidden
collective context, with a per-invocation tag so consecutive collectives
never cross-match.  Algorithms are the classic MPICH choices:

- barrier: dissemination (log2 rounds);
- bcast / reduce: binomial trees (reduce preserves rank order, so
  non-commutative operations are safe);
- allreduce: reduce-to-root + broadcast;
- gather / scatter: linear (root-centric);
- allgather: ring (size-1 steps);
- alltoall: pairwise sendrecv rotation;
- scan / exscan: linear chain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

import numpy as np

from repro.errors import MPIError, MPIRankError
from repro.mpi.reduce_ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def _check_root(comm: "Communicator", root: int) -> None:
    if not 0 <= root < comm.size:
        raise MPIRankError(f"root {root} out of range for size {comm.size}")


def _csend(comm: "Communicator", obj: Any, dest: int, tag: int) -> Generator:
    from repro.mpi import point2point as _p2p
    yield from _p2p.send_impl(comm, obj, dest, tag, None,
                              comm.collective_context)


def _crecv(comm: "Communicator", source: int, tag: int) -> Generator:
    from repro.mpi import point2point as _p2p
    request = _p2p.irecv_impl(comm, source, tag, None,
                              comm.collective_context)
    data, _status = yield from _p2p.recv_wait(comm, request)
    return data


def _csendrecv(comm: "Communicator", obj: Any, dest: int, source: int,
               tag: int) -> Generator:
    from repro.mpi import point2point as _p2p
    send_req = _p2p.isend_impl(comm, obj, dest, tag, None,
                               comm.collective_context)
    data = yield from _crecv(comm, source, tag)
    yield from send_req.wait()
    return data


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def barrier(comm: "Communicator") -> Generator:
    """Dissemination barrier: ceil(log2(size)) rounds of sendrecv."""
    tag = comm._coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        source = (rank - distance) % size
        yield from _csendrecv(comm, None, dest, source, tag)
        distance *= 2


# ---------------------------------------------------------------------------
# broadcast (binomial tree)
# ---------------------------------------------------------------------------

def bcast(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Broadcast ``obj`` from ``root``; evaluates to the object on every
    rank."""
    _check_root(comm, root)
    tag = comm._coll_tag()
    size = comm.size
    if size == 1:
        return obj
    relative = (comm.rank - root) % size
    # Receive from the parent: the rank with our lowest set bit cleared.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = relative - mask
            obj = yield from _crecv(comm, (parent + root) % size, tag)
            break
        mask *= 2
    # Forward to children below our lowest set bit, farthest first.
    mask //= 2
    while mask > 0:
        child = relative + mask
        if child < size:
            yield from _csend(comm, obj, (child + root) % size, tag)
        mask //= 2
    return obj


# ---------------------------------------------------------------------------
# reduce (binomial tree, rank-order preserving)
# ---------------------------------------------------------------------------

def reduce(comm: "Communicator", obj: Any, op: Op, root: int = 0) -> Generator:
    """Reduce to ``root``; evaluates to the result at root, None elsewhere.

    The binomial combine keeps contributions in contiguous rank segments,
    so ``op`` need not be commutative.
    """
    _check_root(comm, root)
    tag = comm._coll_tag()
    size = comm.size
    if size == 1:
        return obj
    relative = (comm.rank - root) % size
    value = obj
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative & ~mask) % size
            yield from _csend(comm, value, (parent + root) % size, tag)
            break
        partner = relative | mask
        if partner < size:
            higher = yield from _crecv(comm, (partner + root) % size, tag)
            # partner's segment follows ours in rank order.
            value = op(value, higher)
        mask *= 2
    return value if comm.rank == root else None


def allreduce(comm: "Communicator", obj: Any, op: Op) -> Generator:
    """Reduce + broadcast; evaluates to the result on every rank."""
    value = yield from reduce(comm, obj, op, root=0)
    value = yield from bcast(comm, value, root=0)
    return value


# ---------------------------------------------------------------------------
# gather / scatter (linear)
# ---------------------------------------------------------------------------

def gather(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Evaluates to the rank-ordered list at root, None elsewhere."""
    _check_root(comm, root)
    tag = comm._coll_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for source in range(comm.size):
            if source != root:
                out[source] = yield from _crecv(comm, source, tag)
        return out
    yield from _csend(comm, obj, root, tag)
    return None


def scatter(comm: "Communicator", objs: Sequence[Any] | None,
            root: int = 0) -> Generator:
    """Evaluates to this rank's element of root's sequence."""
    _check_root(comm, root)
    tag = comm._coll_tag()
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise MPIError(
                f"scatter root needs a sequence of exactly {comm.size} items"
            )
        for dest in range(comm.size):
            if dest != root:
                yield from _csend(comm, objs[dest], dest, tag)
        return objs[root]
    item = yield from _crecv(comm, root, tag)
    return item


# ---------------------------------------------------------------------------
# allgather (ring) / alltoall (pairwise)
# ---------------------------------------------------------------------------

def allgather(comm: "Communicator", obj: Any) -> Generator:
    """Evaluates to the rank-ordered list of contributions on every rank."""
    tag = comm._coll_tag()
    size, rank = comm.size, comm.rank
    out: list[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry = obj
    for step in range(size - 1):
        carry = yield from _csendrecv(comm, carry, right, left, tag)
        out[(rank - step - 1) % size] = carry
    return out


def alltoall(comm: "Communicator", objs: Sequence[Any]) -> Generator:
    """Evaluates to the list where item i came from rank i's ``objs[rank]``."""
    size, rank = comm.size, comm.rank
    if len(objs) != size:
        raise MPIError(f"alltoall needs exactly {size} items, got {len(objs)}")
    tag = comm._coll_tag()
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        out[source] = yield from _csendrecv(comm, objs[dest], dest, source, tag)
    return out


# ---------------------------------------------------------------------------
# scan / exscan (linear chains)
# ---------------------------------------------------------------------------

def reduce_scatter(comm: "Communicator", objs: Sequence[Any],
                   op: Op) -> Generator:
    """Reduce ``size`` contributions elementwise across ranks, then
    scatter: rank i gets op-reduction of every rank's ``objs[i]``
    (MPI_Reduce_scatter_block over objects)."""
    size = comm.size
    if len(objs) != size:
        raise MPIError(f"reduce_scatter needs exactly {size} items")
    # Classic small-comm algorithm: reduce each slot to its owner.
    # Implemented as alltoall + local fold (pairwise-exchange friendly).
    contributions = yield from alltoall(comm, list(objs))
    return op.reduce_sequence(contributions)


def alltoallv(comm: "Communicator", objs: Sequence[Any]) -> Generator:
    """Variable-size all-to-all over objects.

    Identical wire pattern to :func:`alltoall` — object payloads already
    carry their own sizes — provided for API parity; the name documents
    intent at call sites.
    """
    result = yield from alltoall(comm, objs)
    return result


def scan(comm: "Communicator", obj: Any, op: Op) -> Generator:
    """Inclusive prefix reduction; evaluates to op(v0, ..., v_rank)."""
    tag = comm._coll_tag()
    value = obj
    if comm.rank > 0:
        prefix = yield from _crecv(comm, comm.rank - 1, tag)
        value = op(prefix, obj)
    if comm.rank < comm.size - 1:
        yield from _csend(comm, value, comm.rank + 1, tag)
    return value


def exscan(comm: "Communicator", obj: Any, op: Op) -> Generator:
    """Exclusive prefix reduction; None at rank 0."""
    tag = comm._coll_tag()
    prefix = None
    if comm.rank > 0:
        prefix = yield from _crecv(comm, comm.rank - 1, tag)
    if comm.rank < comm.size - 1:
        outgoing = obj if prefix is None else op(prefix, obj)
        yield from _csend(comm, outgoing, comm.rank + 1, tag)
    return prefix


# ---------------------------------------------------------------------------
# buffer (numpy) flavours
# ---------------------------------------------------------------------------

def _resolved(comm: "Communicator", operation: str, algorithm: str | None):
    """Registry lookup for the buffer flavours (lazy import: the
    registry package imports this module)."""
    from repro.mpi.coll.registry import resolve
    return resolve(comm, operation, algorithm)


def Bcast(comm: "Communicator", array: np.ndarray, root: int = 0,
          algorithm: str | None = None) -> Generator:
    """In-place broadcast of a numpy array."""
    fn = _resolved(comm, "bcast", algorithm)
    data = yield from fn(comm, array if comm.rank == root else None, root)
    if comm.rank != root:
        np.copyto(array, np.asarray(data).reshape(array.shape))


def Reduce(comm: "Communicator", sendarr: np.ndarray,
           recvarr: np.ndarray | None, op: Op, root: int = 0,
           algorithm: str | None = None) -> Generator:
    fn = _resolved(comm, "reduce", algorithm)
    result = yield from fn(comm, np.asarray(sendarr), op, root)
    if comm.rank == root:
        if recvarr is None:
            raise MPIError("Reduce root needs a receive buffer")
        np.copyto(recvarr, np.asarray(result).reshape(recvarr.shape))


def Allreduce(comm: "Communicator", sendarr: np.ndarray,
              recvarr: np.ndarray, op: Op | None = None,
              algorithm: str | None = None) -> Generator:
    if op is None:
        from repro.mpi.reduce_ops import SUM as op  # noqa: N811
    fn = _resolved(comm, "allreduce", algorithm)
    result = yield from fn(comm, np.asarray(sendarr), op)
    np.copyto(recvarr, np.asarray(result).reshape(recvarr.shape))


def Gather(comm: "Communicator", sendarr: np.ndarray,
           recvarr: np.ndarray | None, root: int = 0,
           algorithm: str | None = None) -> Generator:
    fn = _resolved(comm, "gather", algorithm)
    parts = yield from fn(comm, np.asarray(sendarr), root)
    if comm.rank == root:
        if recvarr is None:
            raise MPIError("Gather root needs a receive buffer")
        stacked = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
        np.copyto(recvarr.reshape(-1), stacked)


def Scatter(comm: "Communicator", sendarr: np.ndarray | None,
            recvarr: np.ndarray, root: int = 0,
            algorithm: str | None = None) -> Generator:
    if comm.rank == root:
        if sendarr is None:
            raise MPIError("Scatter root needs a send buffer")
        flat = np.asarray(sendarr).reshape(comm.size, -1)
        parts = [flat[i].copy() for i in range(comm.size)]
    else:
        parts = None
    fn = _resolved(comm, "scatter", algorithm)
    part = yield from fn(comm, parts, root)
    np.copyto(recvarr.reshape(-1), np.asarray(part).reshape(-1))


def Allgather(comm: "Communicator", sendarr: np.ndarray,
              recvarr: np.ndarray,
              algorithm: str | None = None) -> Generator:
    fn = _resolved(comm, "allgather", algorithm)
    parts = yield from fn(comm, np.asarray(sendarr))
    stacked = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
    np.copyto(recvarr.reshape(-1), stacked)


def Gatherv(comm: "Communicator", sendarr: np.ndarray,
            recvspec: tuple | None, root: int = 0) -> Generator:
    """Variable-count gather: ``recvspec = (recvarr, counts, displs)`` at
    root (counts/displs in elements)."""
    parts = yield from gather(comm, np.asarray(sendarr), root)
    if comm.rank == root:
        if recvspec is None:
            raise MPIError("Gatherv root needs (recvarr, counts, displs)")
        recvarr, counts, displs = recvspec
        flat = recvarr.reshape(-1)
        for part, count, displ in zip(parts, counts, displs):
            data = np.asarray(part).reshape(-1)
            if data.size != count:
                raise MPIError(
                    f"Gatherv: contribution of {data.size} elements, "
                    f"count says {count}"
                )
            flat[displ:displ + count] = data


def Scatterv(comm: "Communicator", sendspec: tuple | None,
             recvarr: np.ndarray, root: int = 0) -> Generator:
    """Variable-count scatter: ``sendspec = (sendarr, counts, displs)`` at
    root."""
    if comm.rank == root:
        if sendspec is None:
            raise MPIError("Scatterv root needs (sendarr, counts, displs)")
        sendarr, counts, displs = sendspec
        flat = np.asarray(sendarr).reshape(-1)
        parts = [flat[d:d + c].copy() for c, d in zip(counts, displs)]
    else:
        parts = None
    part = yield from scatter(comm, parts, root)
    data = np.asarray(part).reshape(-1)
    recvarr.reshape(-1)[:data.size] = data
