"""MPI reduction operations.

Each :class:`Op` reduces two contributions into one.  For numpy arrays
the operation applies elementwise (vectorized); for plain Python objects
it applies directly.  ``MINLOC``/``MAXLOC`` follow the MPI convention of
operating on (value, index) pairs.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import MPIError


class Op:
    """A reduction operator.

    ``fn(a, b)`` must be associative; ``commutative`` controls whether
    reduction trees may reorder operands.
    """

    def __init__(self, name: str, fn: Callable[[Any, Any], Any],
                 commutative: bool = True):
        self.name = name
        self.fn = fn
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_sequence(self, items: list) -> Any:
        """Fold a rank-ordered list of contributions."""
        if not items:
            raise MPIError("reduce over zero contributions")
        acc = items[0]
        for item in items[1:]:
            acc = self.fn(acc, item)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Op {self.name}>"


def _elementwise(np_fn, py_fn):
    def fn(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(a, b)
        return py_fn(a, b)
    return fn


SUM = Op("MPI_SUM", _elementwise(np.add, lambda a, b: a + b))
PROD = Op("MPI_PROD", _elementwise(np.multiply, lambda a, b: a * b))
MAX = Op("MPI_MAX", _elementwise(np.maximum, max))
MIN = Op("MPI_MIN", _elementwise(np.minimum, min))
LAND = Op("MPI_LAND", _elementwise(np.logical_and, lambda a, b: bool(a) and bool(b)))
LOR = Op("MPI_LOR", _elementwise(np.logical_or, lambda a, b: bool(a) or bool(b)))
LXOR = Op("MPI_LXOR", _elementwise(np.logical_xor, lambda a, b: bool(a) != bool(b)))
BAND = Op("MPI_BAND", _elementwise(np.bitwise_and, lambda a, b: a & b))
BOR = Op("MPI_BOR", _elementwise(np.bitwise_or, lambda a, b: a | b))
BXOR = Op("MPI_BXOR", _elementwise(np.bitwise_xor, lambda a, b: a ^ b))


def _minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if bv < av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


def _maxloc(a, b):
    (av, ai), (bv, bi) = a, b
    if bv > av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


MINLOC = Op("MPI_MINLOC", _minloc)
MAXLOC = Op("MPI_MAXLOC", _maxloc)


def user_op(fn: Callable[[Any, Any], Any], commutative: bool = True,
            name: str = "MPI_OP_USER") -> Op:
    """Wrap a user reduction function (MPI_Op_create)."""
    return Op(name, fn, commutative=commutative)
