"""Graph process topologies (MPI_Graph_create and friends).

The second MPI-1 topology flavour: an arbitrary neighbour graph given in
the standard's compressed ``index``/``edges`` form.  Useful for
irregular-mesh applications; on the paper's meta-clusters it lets an
application encode the *physical* wiring so neighbour exchanges stay on
fast networks.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.errors import MPIError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group


class GraphComm(Communicator):
    """A communicator with an attached neighbour graph."""

    def __init__(self, env, group: Group, context_id: int,
                 index: Sequence[int], edges: Sequence[int]):
        super().__init__(env, group, context_id)
        self.index = tuple(int(i) for i in index)
        self.edges = tuple(int(e) for e in edges)
        if len(self.index) != self.size:
            raise MPIError(
                f"graph index has {len(self.index)} entries for "
                f"{self.size} processes"
            )
        if list(self.index) != sorted(self.index):
            raise MPIError("graph index must be non-decreasing")
        if self.index and self.index[-1] != len(self.edges):
            raise MPIError(
                f"graph index ends at {self.index[-1]} but there are "
                f"{len(self.edges)} edges"
            )
        if any(not 0 <= e < self.size for e in self.edges):
            raise MPIError("graph edge endpoint out of range")

    # -- MPI_Graphdims_get / MPI_Graph_get ---------------------------------

    @property
    def nnodes(self) -> int:
        return self.size

    @property
    def nedges(self) -> int:
        return len(self.edges)

    # -- MPI_Graph_neighbors -------------------------------------------------

    def neighbor_count(self, rank: int) -> int:
        lo = self.index[rank - 1] if rank > 0 else 0
        return self.index[rank] - lo

    def neighbors_of(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} outside graph of {self.size}")
        lo = self.index[rank - 1] if rank > 0 else 0
        return self.edges[lo:self.index[rank]]

    @property
    def neighbors(self) -> tuple[int, ...]:
        """This process's neighbours."""
        return self.neighbors_of(self.rank)

    def neighbor_exchange(self, obj) -> Generator:
        """Convenience: sendrecv ``obj`` with every neighbour; evaluates
        to ``{neighbor: received}`` (a common stencil idiom)."""
        tag = self._coll_tag()
        requests = [(n, self.isend(obj, dest=n, tag=tag))
                    for n in self.neighbors]
        out = {}
        for neighbor in self.neighbors:
            data, _ = yield from self.recv(source=neighbor, tag=tag)
            out[neighbor] = data
        for _, request in requests:
            yield from request.wait()
        return out


def create_graph(comm: Communicator, index: Sequence[int],
                 edges: Sequence[int], reorder: bool = False) -> Generator:
    """Collective: attach a graph topology (MPI_Graph_create).

    ``reorder`` is accepted for API fidelity and ignored.  The graph must
    be symmetric for :meth:`GraphComm.neighbor_exchange` to terminate —
    as MPI requires for neighbour collectives.
    """
    yield from comm.barrier()
    context = comm.env.allocate_context()
    return GraphComm(comm.env, comm.group, context, index, edges)
