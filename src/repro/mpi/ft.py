"""ULFM-style fault tolerance: the MPI layer's view of rank failure.

One :class:`FTState` per rank's :class:`~repro.mpi.environment.MPIEnv`
turns the session-wide :class:`~repro.faults.death.FailureDetector`'s
declarations into structured MPI errors, implementing the User-Level
Failure Mitigation recovery model:

- operations naming a dead peer raise ``MPI_ERR_PROC_FAILED``
  (:class:`~repro.errors.MPIProcFailedError`) instead of hanging —
  pending receives, parked sends, in-flight rendezvous included;
- :meth:`revoke` poisons a communicator everywhere (a reliable flood:
  first receipt re-floods), after which any operation on it raises
  ``MPI_ERR_REVOKED``;
- :meth:`shrink` builds a dense survivor communicator deterministically
  (old rank order preserved);
- :meth:`agree` is a fault-tolerant bitwise-AND agreement over the
  survivors.

Internal FT traffic rides two reserved context ids far above anything
:meth:`~repro.mpi.environment.MPIEnv.allocate_context` can hand out:
``FT_CONTROL_CONTEXT`` (the revoke/failure flood, received by a daemon
listener on every rank) and ``FT_SYNC_CONTEXT`` (shrink/agree rounds).

Everything here is reachable only when the cluster enables the failure
model (``ClusterConfig.ft`` or a fault plan with deaths): ``env.ft`` is
None otherwise and no FT branch in the hot paths fires, keeping the
no-failure schedules bit-identical to a build without this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Iterable

from repro.errors import MPIProcFailedError, MPIRevokedError
from repro.mpi import point2point as _p2p
from repro.mpi.adi.queues import UnexpectedKind
from repro.mpi.adi.rhandle import RecvHandle
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    CONTEXTS_PER_COMM,
    ERR_PROC_FAILED,
    ERR_REVOKED,
    FT_CONTROL_CONTEXT,
    FT_SYNC_CONTEXT,
)
from repro.sim.coroutines import wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.death import FailureDetector
    from repro.mpi.adi.packets import Envelope
    from repro.mpi.communicator import Communicator
    from repro.mpi.environment import MPIEnv

#: Modelled wire size (bytes) of one FT control/sync message.
FT_MSG_BYTES = 64


class FTState:
    """Per-rank ULFM state machine (failure knowledge + revocations)."""

    def __init__(self, env: "MPIEnv", detector: "FailureDetector"):
        self.env = env
        self.detector = detector
        self.engine = env.process.engine
        #: World ranks this rank knows to be dead (mirrors the detector's
        #: declarations, applied through an engine callback so queue
        #: surgery never runs inside a polling thread).
        self.known_failures: set[int] = set()
        #: Revoked communicators, by *base* context id (covers the
        #: point-to-point and the hidden collective context).
        self.revoked: set[int] = set()
        #: Exact context ids poisoned by a failed collective -> the world
        #: rank whose death broke it (None when unknown).
        self.failed_contexts: dict[int, int | None] = {}
        #: base context id -> Communicator, for ANY_SOURCE adjudication
        #: and flood targeting.  Filled by Communicator.__init__.
        self.comms: dict[int, "Communicator"] = {}
        #: Lockstep sequence for shrink/agree rounds (tag space of
        #: FT_SYNC_CONTEXT).
        self._sync_seq = 0
        self._listener_handle: RecvHandle | None = None
        self._stopped = False
        detector.add_listener(self._on_death_declared)
        env.progress.ft = self

    # -- plumbing helpers ------------------------------------------------------

    @staticmethod
    def _base(context_id: int) -> int:
        return context_id - (context_id % CONTEXTS_PER_COMM)

    def _ins(self):
        return self.engine.instruments

    def register_comm(self, comm: "Communicator") -> None:
        self.comms[self._base(comm.context_id)] = comm

    def is_revoked(self, comm: "Communicator") -> bool:
        return self._base(comm.context_id) in self.revoked

    def live_members(self, comm: "Communicator") -> list[int]:
        """Comm members (world ranks, old order) not known to be dead."""
        return [r for r in comm.group.world_ranks
                if r not in self.detector.dead_ranks]

    # -- fail-fast checks (called from the p2p/collective hot paths) ----------

    def check_send(self, context_id: int, dest_world: int) -> None:
        """Raise instead of transmitting into a dead rank / revoked comm."""
        if context_id < FT_CONTROL_CONTEXT \
                and self._base(context_id) in self.revoked:
            raise MPIRevokedError(
                f"send on revoked communicator (context {context_id})")
        if dest_world in self.known_failures:
            raise MPIProcFailedError(
                f"send to rank {dest_world} failed: peer is dead",
                failed_rank=dest_world)

    def recv_precheck(self, context_id: int,
                      source_world: int) -> tuple[int, int | None] | None:
        """(status-error, failed_rank) for a receive that can never match,
        or None when the receive may be posted normally."""
        if context_id == FT_CONTROL_CONTEXT:
            return None
        if context_id < FT_CONTROL_CONTEXT:
            if self._base(context_id) in self.revoked:
                return (ERR_REVOKED, None)
            if context_id in self.failed_contexts:
                return (ERR_PROC_FAILED, self.failed_contexts[context_id])
        if source_world != ANY_SOURCE:
            if source_world in self.known_failures:
                return (ERR_PROC_FAILED, source_world)
            return None
        if context_id < FT_CONTROL_CONTEXT:
            # ULFM: a wildcard receive cannot be satisfied once any group
            # member is dead — the missing sender might have been it.
            comm = self.comms.get(self._base(context_id))
            if comm is not None:
                for member in comm.group.world_ranks:
                    if member in self.known_failures:
                        return (ERR_PROC_FAILED, member)
        return None

    def check_collective(self, comm: "Communicator") -> None:
        """Fail a collective before it starts when the comm is broken."""
        if self.is_revoked(comm):
            raise MPIRevokedError(
                f"collective on revoked communicator "
                f"(context {comm.context_id})")
        culprit = self.failed_contexts.get(comm.collective_context)
        if comm.collective_context in self.failed_contexts:
            raise MPIProcFailedError(
                f"collective context {comm.collective_context} was broken "
                f"by a rank failure", failed_rank=culprit)
        for member in comm.group.world_ranks:
            if member in self.known_failures:
                raise MPIProcFailedError(
                    f"collective with dead rank {member}",
                    failed_rank=member)

    # -- arrival filtering (progress-engine delivery gates) --------------------

    def should_discard(self, envelope: "Envelope") -> bool:
        if envelope.source in self.known_failures:
            return True
        ctx = envelope.context_id
        if ctx >= FT_CONTROL_CONTEXT:
            return False
        return self._base(ctx) in self.revoked or ctx in self.failed_contexts

    def note_discard(self, envelope: "Envelope", send_id: int = 0) -> None:
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.discards", 1, rank=self.env.rank,
                      source=envelope.source)
        checker = self.engine.checker
        if checker.enabled:
            checker.on_ft_discard(self.env.rank, envelope, send_id)

    # -- death handling --------------------------------------------------------

    def _on_death_declared(self, rank: int) -> None:
        """Detector listener (runs as a fresh engine callback)."""
        if self._stopped or self.env.finalized:
            return
        if getattr(self.env.process, "dead", False) or rank == self.env.rank:
            return
        self.on_peer_death(rank)

    def on_peer_death(self, rank: int) -> None:
        """Fail every local operation that waits on ``rank`` forever."""
        if rank in self.known_failures:
            return
        self.known_failures.add(rank)
        exc = MPIProcFailedError(
            f"rank {rank} died", failed_rank=rank)

        def doomed(handle: RecvHandle) -> bool:
            if handle.context_id == FT_CONTROL_CONTEXT:
                return False
            if handle.source_pattern == rank:
                return True
            if handle.source_pattern == ANY_SOURCE \
                    and handle.context_id < FT_CONTROL_CONTEXT:
                comm = self.comms.get(self._base(handle.context_id))
                return comm is not None and rank in comm.group
            return False

        self._sweep_local(doomed,
                          lambda shandle: shandle.dest_world == rank,
                          lambda envelope: envelope.source == rank,
                          lambda handle: handle.rndv_source == rank,
                          ERR_PROC_FAILED, rank, exc)

    def _fail_contexts_local(self, contexts: set[int], code: int,
                             failed_rank: int | None,
                             exc: Exception) -> None:
        """Fail every local operation bound to one of ``contexts``."""
        self._sweep_local(
            lambda handle: handle.context_id in contexts,
            lambda shandle: shandle.envelope.context_id in contexts,
            lambda envelope: envelope.context_id in contexts,
            lambda handle: handle.context_id in contexts,
            code, failed_rank, exc)

    def _sweep_local(self, doomed_posted, doomed_send, doomed_envelope,
                     doomed_sync, code: int, failed_rank: int | None,
                     exc: Exception) -> None:
        """The four-queue sweep shared by peer-death and revocation:
        posted receives, pending rendezvous sends, buffered unexpected
        arrivals, and armed rendezvous sync entries."""
        env = self.env
        progress = env.progress
        ins = self._ins()
        checker = self.engine.checker
        failed_ops = 0
        for handle in progress.posted.take_matching(doomed_posted):
            self._fail_recv(handle, code, failed_rank)
            failed_ops += 1
        for device in (env.smp_device, env.inter_device):
            pending = getattr(device, "_pending_sends", None)
            if not pending:
                continue
            for send_id, shandle in list(pending.items()):
                if not doomed_send(shandle):
                    continue
                del pending[send_id]
                shandle.error = exc
                shandle.ack_flag.set(None)
                failed_ops += 1
                if checker.enabled:
                    checker.on_ft_abort_send(env.rank, send_id)
        for entry in progress.unexpected.purge(
                lambda e: doomed_envelope(e.envelope)):
            send_id = 0
            if entry.kind is UnexpectedKind.RNDV_REQUEST:
                send_id = getattr(entry.rndv_token, "send_id", 0)
            self.note_discard(entry.envelope, send_id=send_id)
        for sync_id, sync in list(progress.sync_registry.items()):
            handle = sync.rhandle
            if handle.completed or not doomed_sync(handle):
                continue
            del progress.sync_registry[sync_id]
            self._fail_recv(handle, code, failed_rank)
            failed_ops += 1
        if failed_ops and ins.enabled:
            ins.count("ft.ops_failed", failed_ops, rank=env.rank,
                      error="proc-failed" if code == ERR_PROC_FAILED
                      else "revoked")
        progress.arrivals.notify_all()

    @staticmethod
    def _fail_recv(handle: RecvHandle, code: int,
                   failed_rank: int | None) -> None:
        handle.status.error = code
        handle.status.failed_rank = failed_rank
        handle.flag.set(handle)
        if handle.sync is not None:
            handle.sync.semaphore.release()

    # -- revocation ------------------------------------------------------------

    def revoke(self, comm: "Communicator") -> None:
        """MPI_Comm_revoke: poison ``comm`` on every rank (non-blocking
        local call; the flood propagates asynchronously)."""
        self._apply_revoke(self._base(comm.context_id), flood=True)

    def _apply_revoke(self, base_context: int, flood: bool) -> None:
        if base_context in self.revoked:
            return
        self.revoked.add(base_context)
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.revokes", 1, rank=self.env.rank)
            ins.emit("ft.revoke", rank=self.env.rank, context=base_context)
        checker = self.engine.checker
        if checker.enabled:
            checker.on_revoke(self.env.rank,
                              (base_context, base_context + 1))
        self._fail_contexts_local(
            {base_context, base_context + 1}, ERR_REVOKED, None,
            MPIRevokedError(f"communicator context {base_context} revoked"))
        if flood:
            self._flood(("revoke", base_context, self.env.rank),
                        self._flood_targets(base_context))

    # -- broken collectives ----------------------------------------------------

    def collective_failed(self, comm: "Communicator", exc: Exception) -> None:
        """A collective on ``comm`` raised an FT error on this rank:
        poison its collective context — and those of its cached
        hierarchical/multi-lane subcommunicators — everywhere, so ranks
        parked inside the same collective unblock with the same error
        instead of waiting on a peer that already bailed out."""
        if isinstance(exc, MPIRevokedError):
            return  # revocation already floods its own poison
        failed_rank = getattr(exc, "failed_rank", None)
        contexts = {comm.collective_context}
        hier = getattr(comm, "_hier_cache", None)
        if hier is not None:
            for sub in (hier.node_comm, hier.leader_comm):
                if sub is not None:
                    contexts.add(sub.context_id)
                    contexts.add(sub.collective_context)
        lanes = getattr(comm, "_lane_cache", None)
        if lanes:
            for lane in lanes:
                contexts.add(lane.context_id)
                contexts.add(lane.collective_context)
        self._apply_coll_failed(tuple(sorted(contexts)), failed_rank,
                                flood=True)

    def _apply_coll_failed(self, contexts: tuple[int, ...],
                           failed_rank: int | None, flood: bool) -> None:
        fresh = [c for c in contexts if c not in self.failed_contexts]
        if not fresh:
            return
        for context in fresh:
            self.failed_contexts[context] = failed_rank
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.coll_failures", 1, rank=self.env.rank)
        self._fail_contexts_local(
            set(fresh), ERR_PROC_FAILED, failed_rank,
            MPIProcFailedError("collective broken by rank failure",
                               failed_rank=failed_rank))
        if flood:
            self._flood(("coll_failed", tuple(contexts), failed_rank),
                        range(self.env.size))

    # -- the control flood -----------------------------------------------------

    def _flood_targets(self, base_context: int) -> Iterable[int]:
        comm = self.comms.get(base_context)
        if comm is not None:
            return comm.group.world_ranks
        return range(self.env.size)

    def _flood(self, message: tuple, targets: Iterable[int]) -> None:
        """Send ``message`` to every live target (reliable-broadcast leg:
        each first receipt re-floods, so one surviving link per pair
        suffices)."""
        env = self.env
        destinations = [r for r in targets
                        if r != env.rank and r not in self.known_failures]
        if not destinations:
            return
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.revoke_floods", 1, rank=env.rank,
                      kind=message[0])
            ins.observe("ft.flood_fanout", len(destinations),
                        kind=message[0])

        def body():
            for dest in destinations:
                try:
                    yield from _p2p.send_impl(
                        env.comm_world, message, dest, 0, FT_MSG_BYTES,
                        FT_CONTROL_CONTEXT)
                except MPIProcFailedError:
                    continue  # target died mid-flood; detector knows
        env.process.runtime.spawn_temporary(body(), name="ft-flood")

    # -- the control listener --------------------------------------------------

    def start(self) -> None:
        """Start the per-rank FT control listener (daemon thread)."""
        self.env.process.runtime.spawn(
            self._listen(), name=f"rank{self.env.rank}.ft-listener",
            daemon=True)

    def stop(self) -> None:
        """Finalize path: withdraw the listener's pending receive and
        drop straggler control messages, so the leak audit never mistakes
        FT infrastructure for application requests.  Revocation is
        asynchronous by design — a flood message still in flight when the
        job completes is expected residue, not a leak."""
        self._stopped = True
        handle = self._listener_handle
        if handle is not None:
            self.env.progress.posted.remove(handle)
            self._listener_handle = None
        checker = self.engine.checker
        stragglers = self.env.progress.unexpected.purge(
            lambda e: e.envelope.context_id >= FT_CONTROL_CONTEXT)
        if checker.enabled:
            for entry in stragglers:
                checker.on_ft_discard(self.env.rank, entry.envelope)

    def _listen(self) -> Generator:
        progress = self.env.progress
        while not self._stopped:
            # Drain control messages that arrived while the previous one
            # was being dispatched (they land in the unexpected queue).
            entry = progress.unexpected.match(FT_CONTROL_CONTEXT,
                                              ANY_SOURCE, ANY_TAG)
            if entry is not None:
                checker = self.engine.checker
                if checker.enabled:
                    checker.on_match(entry.envelope, self.env.rank)
                self._dispatch_control(entry.data)
                continue
            handle = RecvHandle(FT_CONTROL_CONTEXT, ANY_SOURCE, ANY_TAG)
            handle.flag.dep_describe = "ft control listener"
            self._listener_handle = handle
            progress.posted.post(handle)
            yield wait(handle.flag)
            self._listener_handle = None
            if self._stopped or getattr(self.env.process, "dead", False):
                return
            self._dispatch_control(handle.data)

    def _dispatch_control(self, message) -> None:
        kind = message[0]
        if kind == "revoke":
            _, base_context, _origin = message
            self._apply_revoke(base_context, flood=True)
        elif kind == "coll_failed":
            _, contexts, failed_rank = message
            self._apply_coll_failed(tuple(contexts), failed_rank, flood=True)

    # -- shrink / agree --------------------------------------------------------

    def shrink(self, comm: "Communicator") -> Generator:
        """MPI_Comm_shrink: a working communicator over the survivors.

        Deterministic: survivors keep their relative order, so new rank
        = old rank minus the dead ranks before it.  Collective over the
        survivors; raises ``MPI_ERR_PROC_FAILED`` if another member dies
        during the shrink itself (call it again, as ULFM allows).
        """
        env = self.env
        # Lockstep context allocation happens unconditionally, success or
        # not — every survivor burns the same id per attempt.
        context = env.allocate_context()
        survivors = self.live_members(comm)
        yield from self._sync_barrier(survivors)
        from repro.mpi.communicator import Communicator
        from repro.mpi.group import Group
        shrunk = Communicator(env, Group(survivors), context)
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.shrinks", 1, rank=env.rank)
        return shrunk

    def agree(self, comm: "Communicator", value: int) -> Generator:
        """MPIX_Comm_agree: fault-tolerant agreement on the bitwise AND
        of every survivor's ``value``."""
        survivors = self.live_members(comm)
        result = yield from self._sync_round(survivors, int(value))
        ins = self._ins()
        if ins.enabled:
            ins.count("ft.agreements", 1, rank=self.env.rank)
        return result

    def _sync_barrier(self, survivors: list[int]) -> Generator:
        yield from self._sync_round(survivors, ~0)

    def _sync_round(self, survivors: list[int], value: int) -> Generator:
        """One gather-AND-broadcast round among ``survivors`` over the
        reserved FT_SYNC_CONTEXT (root = lowest surviving world rank)."""
        env = self.env
        self._sync_seq += 1
        tag = self._sync_seq
        world = env.comm_world
        root = survivors[0]
        if env.rank == root:
            agreed = value
            for peer in survivors[1:]:
                request = _p2p.irecv_impl(world, peer, tag, None,
                                          FT_SYNC_CONTEXT)
                contribution, _status = yield from _p2p.recv_wait(world,
                                                                  request)
                agreed &= int(contribution)
            for peer in survivors[1:]:
                yield from _p2p.send_impl(world, agreed, peer, tag,
                                          FT_MSG_BYTES, FT_SYNC_CONTEXT)
            return agreed
        yield from _p2p.send_impl(world, value, root, tag, FT_MSG_BYTES,
                                  FT_SYNC_CONTEXT)
        request = _p2p.irecv_impl(world, root, tag, None, FT_SYNC_CONTEXT)
        agreed, _status = yield from _p2p.recv_wait(world, request)
        return int(agreed)

    # -- collective wrapper ----------------------------------------------------

    def run_collective(self, comm: "Communicator", gen: Generator) -> Generator:
        """Run a user collective with FT pre-flight and failure flooding."""
        self.check_collective(comm)
        try:
            result = yield from gen
        except (MPIProcFailedError, MPIRevokedError) as exc:
            self.collective_failed(comm, exc)
            raise
        return result
