"""Removed: the collective algorithm zoo lives in the registry.

The free functions that lived here are registered implementations in
:mod:`repro.mpi.coll` (see :mod:`repro.mpi.coll.flat`) and are selected
by name::

    yield from comm.bcast(obj, root=1, algorithm="linear")
    yield from comm.allreduce(x, algorithm="recursive_doubling")
    yield from comm.allgather(x, algorithm="bruck")

or fetched explicitly via ``repro.mpi.coll.get("bcast", "linear").fn``.
The old call shapes spent a release as :class:`DeprecationWarning`
shims and are now errors naming their replacement; the
``*_ALGORITHMS`` dicts keep their exact historical contents for
benches and ablation sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, NoReturn

from repro.errors import ConfigurationError
from repro.mpi.coll import flat as _flat
from repro.mpi.collectives import allreduce as _allreduce_default
from repro.mpi.reduce_ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def _removed(old: str, operation: str, name: str) -> NoReturn:
    raise ConfigurationError(
        f"repro.mpi.algorithms.{old}() was removed; use "
        f"comm.{operation}(..., algorithm={name!r}) or "
        f"repro.mpi.coll.get({operation!r}, {name!r}).fn")


def bcast_linear(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Removed: use the registry's ``("bcast", "linear")``."""
    _removed("bcast_linear", "bcast", "linear")


def bcast_binomial(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Removed: use the registry's ``("bcast", "binomial")``."""
    _removed("bcast_binomial", "bcast", "binomial")


def allreduce_recursive_doubling(comm: "Communicator", obj: Any,
                                 op: Op) -> Generator:
    """Removed: use the registry's ``("allreduce", "recursive_doubling")``."""
    _removed("allreduce_recursive_doubling", "allreduce",
             "recursive_doubling")


def allgather_bruck(comm: "Communicator", obj: Any) -> Generator:
    """Removed: use the registry's ``("allgather", "bruck")``."""
    _removed("allgather_bruck", "allgather", "bruck")


#: Name -> callable registries, exactly as before the registry existed
#: (warning-free implementations — sweeps iterate these in bulk).
BCAST_ALGORITHMS = {
    "linear": _flat.bcast_linear,
    "binomial": _flat.bcast_binomial,
}

ALLREDUCE_ALGORITHMS = {
    "reduce_bcast": _allreduce_default,
    "recursive_doubling": _flat.allreduce_recursive_doubling,
}
