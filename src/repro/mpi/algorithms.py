"""Deprecated: the collective algorithm zoo moved into the registry.

The free functions that lived here are now registered implementations
in :mod:`repro.mpi.coll` (see :mod:`repro.mpi.coll.flat`) and are
selected by name::

    yield from comm.bcast(obj, root=1, algorithm="linear")
    yield from comm.allreduce(x, algorithm="recursive_doubling")
    yield from comm.allgather(x, algorithm="bruck")

or fetched explicitly via ``repro.mpi.coll.get("bcast", "linear").fn``.
This module keeps the old call shapes working with
:class:`DeprecationWarning` shims (the same migration pattern as the
PR-5 ``enable_*`` -> ``EngineConfig`` move); the ``*_ALGORITHMS`` dicts
keep their exact historical contents for benches and ablation sweeps.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Generator

from repro.mpi.coll import flat as _flat
from repro.mpi.collectives import allreduce as _allreduce_default
from repro.mpi.reduce_ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def _warn(old: str, operation: str, name: str) -> None:
    warnings.warn(
        f"repro.mpi.algorithms.{old}() is deprecated; use "
        f"comm.{operation}(..., algorithm={name!r}) or "
        f"repro.mpi.coll.get({operation!r}, {name!r}).fn",
        DeprecationWarning, stacklevel=3)


def bcast_linear(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Deprecated shim for the registry's ``("bcast", "linear")``."""
    _warn("bcast_linear", "bcast", "linear")
    result = yield from _flat.bcast_linear(comm, obj, root)
    return result


def bcast_binomial(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Deprecated shim for the registry's ``("bcast", "binomial")``."""
    _warn("bcast_binomial", "bcast", "binomial")
    result = yield from _flat.bcast_binomial(comm, obj, root)
    return result


def allreduce_recursive_doubling(comm: "Communicator", obj: Any,
                                 op: Op) -> Generator:
    """Deprecated shim for ``("allreduce", "recursive_doubling")``."""
    _warn("allreduce_recursive_doubling", "allreduce", "recursive_doubling")
    result = yield from _flat.allreduce_recursive_doubling(comm, obj, op)
    return result


def allgather_bruck(comm: "Communicator", obj: Any) -> Generator:
    """Deprecated shim for the registry's ``("allgather", "bruck")``."""
    _warn("allgather_bruck", "allgather", "bruck")
    result = yield from _flat.allgather_bruck(comm, obj)
    return result


#: Name -> callable registries, exactly as before the registry existed
#: (warning-free implementations — sweeps iterate these in bulk).
BCAST_ALGORITHMS = {
    "linear": _flat.bcast_linear,
    "binomial": _flat.bcast_binomial,
}

ALLREDUCE_ALGORITHMS = {
    "reduce_bcast": _allreduce_default,
    "recursive_doubling": _flat.allreduce_recursive_doubling,
}
