"""An MPICH-like MPI implementation (paper §2, §4).

Layering follows MPICH (Figure 1 of the paper):

- **Generic part** — :mod:`~repro.mpi.communicator` (groups, contexts,
  communicators), :mod:`~repro.mpi.collectives` (collective operations
  built on point-to-point), :mod:`~repro.mpi.datatypes` (the datatype
  engine).
- **ADI** — :mod:`~repro.mpi.adi`: request handles, posted/unexpected
  queues with envelope matching, eager/rendezvous protocol selection,
  and the abstract device interface.
- **Devices** — :mod:`~repro.mpi.devices`: ``ch_self`` (intra-process),
  ``smp_plug`` (intra-node shared memory), ``ch_p4`` (the classic MPICH
  TCP device, our baseline), and ``ch_mad`` (the paper's contribution:
  all inter-node traffic through Madeleine channels).

User programs are generator coroutines receiving an
:class:`~repro.mpi.environment.MPIEnv`; the API mirrors mpi4py's shape:
lowercase methods move Python objects, uppercase methods move numpy
buffers with MPI datatypes.
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED
from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Datatype,
    contiguous,
    hvector,
    indexed,
    struct,
    vector,
)
from repro.mpi.environment import MPIEnv
from repro.mpi.group import Group
from repro.mpi.reduce_ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    Op,
)
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "BXOR",
    "BYTE",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "Group",
    "INT",
    "LAND",
    "LONG",
    "LOR",
    "MAX",
    "MAXLOC",
    "MIN",
    "MINLOC",
    "MPIEnv",
    "Op",
    "PROC_NULL",
    "PROD",
    "Request",
    "SUM",
    "Status",
    "UNDEFINED",
    "contiguous",
    "hvector",
    "indexed",
    "struct",
    "vector",
]
