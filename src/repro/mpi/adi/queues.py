"""The ADI's request queues (Fig. 1: "request queues mgmt").

Two queues per process, shared by every device:

- :class:`PostedQueue` — receives posted before their message arrived;
- :class:`UnexpectedQueue` — arrivals with no matching posted receive:
  buffered eager payloads or pending rendezvous requests.

Both honour MPI's matching order: the *first* entry (in post/arrival
order) that matches wins, with ``MPI_ANY_SOURCE``/``MPI_ANY_TAG``
wildcards on the receive side only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.rhandle import RecvHandle


class PostedQueue:
    """Receives waiting for their message."""

    def __init__(self) -> None:
        self._entries: list[RecvHandle] = []

    def post(self, handle: RecvHandle) -> None:
        self._entries.append(handle)

    def match(self, envelope: Envelope) -> RecvHandle | None:
        """Find-and-remove the first posted receive matching ``envelope``."""
        for i, handle in enumerate(self._entries):
            if handle.accepts(envelope):
                del self._entries[i]
                return handle
        return None

    def remove(self, handle: RecvHandle) -> bool:
        """Withdraw a posted receive (cancellation).  True if it was queued."""
        try:
            self._entries.remove(handle)
            return True
        except ValueError:
            return False

    def take_matching(self, predicate) -> list[RecvHandle]:
        """Remove and return every posted receive satisfying ``predicate``.

        Used by the FT layer to pull out receives doomed by a peer death
        or a communicator revocation so they can be completed with a
        structured error instead of hanging forever.
        """
        taken = [h for h in self._entries if predicate(h)]
        if taken:
            self._entries = [h for h in self._entries if not predicate(h)]
        return taken

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class UnexpectedKind(enum.Enum):
    """What an unexpected entry holds."""

    EAGER = "eager"              # buffered payload, awaiting a recv
    RNDV_REQUEST = "rndv-request"  # sender is waiting for OK_TO_SEND


@dataclass
class UnexpectedEntry:
    """One buffered arrival."""

    envelope: Envelope
    kind: UnexpectedKind
    #: Buffered payload for EAGER entries (already copied once).
    data: Any = None
    #: Device-specific token for RNDV_REQUEST entries: whatever the device
    #: needs to send the acknowledgement back (device, sender, send_id...).
    rndv_token: Any = None


class UnexpectedQueue:
    """Arrivals that beat their receive."""

    def __init__(self) -> None:
        self._entries: list[UnexpectedEntry] = []
        #: Total bytes currently buffered in EAGER entries (diagnostic —
        #: a real MPICH would bound this).
        self.buffered_bytes = 0

    def add(self, entry: UnexpectedEntry) -> None:
        self._entries.append(entry)
        if entry.kind is UnexpectedKind.EAGER:
            self.buffered_bytes += entry.envelope.size

    def match(self, context_id: int, source_pattern: int,
              tag_pattern: int) -> UnexpectedEntry | None:
        """Find-and-remove the first entry matching a receive pattern."""
        for i, entry in enumerate(self._entries):
            env = entry.envelope
            if env.context_id == context_id and env.matches(source_pattern,
                                                            tag_pattern):
                del self._entries[i]
                if entry.kind is UnexpectedKind.EAGER:
                    self.buffered_bytes -= env.size
                return entry
        return None

    def purge(self, predicate) -> list[UnexpectedEntry]:
        """Remove and return every buffered arrival satisfying ``predicate``.

        FT path: arrivals from a dead rank (or on a revoked context) must
        never match a later receive; purged EAGER entries release their
        buffered bytes.
        """
        purged = [e for e in self._entries if predicate(e)]
        if purged:
            self._entries = [e for e in self._entries if not predicate(e)]
            for entry in purged:
                if entry.kind is UnexpectedKind.EAGER:
                    self.buffered_bytes -= entry.envelope.size
        return purged

    def __iter__(self):
        return iter(self._entries)

    def peek(self, context_id: int, source_pattern: int,
             tag_pattern: int) -> UnexpectedEntry | None:
        """Like :meth:`match` but non-destructive (MPI_Probe)."""
        for entry in self._entries:
            env = entry.envelope
            if env.context_id == context_id and env.matches(source_pattern,
                                                            tag_pattern):
                return entry
        return None

    def __len__(self) -> int:
        return len(self._entries)
