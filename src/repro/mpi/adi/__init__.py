"""The Abstract Device Interface (paper §2.2).

The ADI sits between the generic MPI layer and the devices.  It owns:

- :mod:`~repro.mpi.adi.packets` — envelopes and packet kind definitions;
- :mod:`~repro.mpi.adi.queues` — the posted-receive and unexpected-message
  queues with MPI envelope matching (these queues are shared by *all*
  devices of a process, which is what makes multi-device receives and
  ``MPI_ANY_SOURCE`` work);
- :mod:`~repro.mpi.adi.rhandle` — receive handles and the ``MPID_RNDV_T``
  rendezvous synchronization structure (§4.2.2);
- :mod:`~repro.mpi.adi.protocol` — eager/rendezvous transfer-mode
  selection against the device's single threshold field;
- :mod:`~repro.mpi.adi.device` — the device base class and the progress
  engine that devices deliver into.
"""

from repro.mpi.adi.device import Device, ProgressEngine
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.protocol import TransferMode, select_mode
from repro.mpi.adi.queues import PostedQueue, UnexpectedKind, UnexpectedQueue
from repro.mpi.adi.rhandle import RecvHandle, RndvSync, SendHandle

__all__ = [
    "Device",
    "Envelope",
    "PostedQueue",
    "ProgressEngine",
    "RecvHandle",
    "RndvSync",
    "SendHandle",
    "TransferMode",
    "UnexpectedKind",
    "UnexpectedQueue",
    "select_mode",
]
