"""Receive/send handles and the rendezvous sync structure (§4.2.2).

The paper: "On receiving side, transaction is handled by an ADI rhandle
structure.  This structure has a field whose type is MPID_RNDV_T.  In our
case, it corresponds to a synchronization structure containing a
semaphore and the address of the rhandle it belongs to."

:class:`RndvSync` is exactly that pair; its ``sync_id`` plays the role of
the structure's *address*, communicated to the sender inside the
acknowledgement packet and sent back inside the data packet header so the
polling thread can find the rhandle without any queue search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.mpi.adi.packets import Envelope
from repro.mpi.status import Status
from repro.sim.sync import Flag, Semaphore

_sync_ids = itertools.count(1)


@dataclass
class RndvSync:
    """MPID_RNDV_T: a semaphore plus a back-pointer to its rhandle."""

    rhandle: "RecvHandle"
    semaphore: Semaphore = field(default_factory=lambda: Semaphore(0, name="rndv"))
    sync_id: int = field(default_factory=lambda: next(_sync_ids))


class RecvHandle:
    """One pending receive transaction.

    Completion is signalled through :attr:`flag`; rendezvous transactions
    additionally own a :class:`RndvSync` whose semaphore the main thread
    blocks on while the polling thread waits for the data packet.
    """

    def __init__(self, context_id: int, source_pattern: int, tag_pattern: int,
                 capacity: int | None = None):
        self.context_id = context_id
        self.source_pattern = source_pattern
        self.tag_pattern = tag_pattern
        #: Receive buffer capacity in bytes (None = unbounded object recv).
        self.capacity = capacity
        self.flag = Flag(name="rhandle")
        self.status = Status()
        self.data: Any = None
        self.sync: RndvSync | None = None
        #: World rank of the matched rendezvous sender (set when the
        #: OK_TO_SEND goes out) — lets the FT layer fail a receive whose
        #: data packet will never arrive because that sender died.
        self.rndv_source: int | None = None

    def make_sync(self) -> RndvSync:
        """Attach a rendezvous sync structure (idempotent per transaction)."""
        if self.sync is None:
            self.sync = RndvSync(self)
        return self.sync

    def accepts(self, envelope: Envelope) -> bool:
        """Envelope matching against this handle's pattern."""
        return (envelope.context_id == self.context_id
                and envelope.matches(self.source_pattern, self.tag_pattern))

    def complete(self, envelope: Envelope, data: Any) -> None:
        """Fill in data/status and wake the waiter."""
        self.data = data
        self.status.source = envelope.source
        self.status.source_world = envelope.source
        self.status.tag = envelope.tag
        self.status.count = envelope.size
        self.flag.set(self)
        if self.sync is not None:
            self.sync.semaphore.release()

    @property
    def completed(self) -> bool:
        return self.flag.is_set

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RecvHandle ctx={self.context_id} src={self.source_pattern} "
                f"tag={self.tag_pattern} done={self.completed}>")


class SendHandle:
    """One in-flight send transaction (rendezvous bookkeeping).

    The sender blocks on :attr:`ack_flag` until the receiver's
    OK_TO_SEND arrives carrying the remote ``sync_id``; :attr:`flag`
    signals full local completion.  Devices call
    :meth:`notify_request_sent` right after the rendezvous *request* is
    out: at that point the message's matching slot at the receiver is
    secured, and the sender's ordering gate may admit the next send
    (MPI non-overtaking).
    """

    _ids = itertools.count(1)

    def __init__(self, envelope: Envelope, data: Any):
        self.send_id = next(SendHandle._ids)
        self.envelope = envelope
        self.data = data
        self.ack_flag = Flag(name="shandle-ack")
        self.flag = Flag(name="shandle-done")
        self.on_request_sent = None
        #: World rank this rendezvous targets (set by the device) — how
        #: the FT layer finds in-flight sends towards a dead peer.
        self.dest_world: int | None = None
        #: Structured failure installed by the FT layer before it
        #: releases :attr:`ack_flag` with ``None`` (peer death / revoke).
        self.error: Exception | None = None

    def notify_request_sent(self) -> None:
        callback, self.on_request_sent = self.on_request_sent, None
        if callback is not None:
            callback()

    @property
    def completed(self) -> bool:
        return self.flag.is_set
