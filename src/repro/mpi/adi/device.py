"""Device base class and the per-process progress engine.

The :class:`ProgressEngine` is the receive-side heart of the ADI: every
device — ch_self, smp_plug, ch_p4, ch_mad — delivers arrivals into the
same posted/unexpected queues, which is what makes ``MPI_ANY_SOURCE``
receives work across devices (§2.3: the ADI data structures are
"multi-device-ready"; our single progress engine realizes that).

Deadlock rule (§4.2.3): a *polling thread* must never block in a send.
``deliver_rndv_request`` therefore spawns a temporary Marcel thread to
emit the acknowledgement when the matching receive was already posted;
when the receive arrives later, the application's own (main) thread sends
the acknowledgement inline.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Generator, TYPE_CHECKING

import numpy as np

from repro.errors import MPIError
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.queues import (
    PostedQueue,
    UnexpectedEntry,
    UnexpectedKind,
    UnexpectedQueue,
)
from repro.mpi.adi.rhandle import RecvHandle, RndvSync, SendHandle
from repro.mpi.request import RecvRequest
from repro.mpi.status import Status
from repro.sim.coroutines import charge
from repro.sim.ring import Ring
from repro.sim.sync import Condition

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.session import MadProcess

#: MPI_ERR_TRUNCATE as a status error code.
ERR_TRUNCATE = 15

#: Free-list capacity for blocking-receive request shells (per process).
_RECV_POOL_MAX = 32


def clone_payload(obj: Any) -> Any:
    """Detach a payload from the sender's buffer (MPI value semantics).

    Immutable objects pass through; numpy arrays and general mutables are
    copied so a receiver can never alias the sender's memory (only
    observable with ch_self/smp_plug, where no wire intervenes).
    """
    if obj is None or isinstance(obj, (bytes, str, int, float, bool, complex,
                                       frozenset, tuple)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return _copy.deepcopy(obj)


class ProgressEngine:
    """Shared receive-side state of one MPI process."""

    def __init__(self, process: "MadProcess", byte_order: str = "little",
                 heterogeneity_conversion: bool = True):
        self.process = process
        self.memory = process.memory
        self.runtime = process.runtime
        #: This node's native representation and whether the ADI converts
        #: foreign-order numeric payloads (Fig. 1 "heterogeneity").
        self.byte_order = byte_order
        self.heterogeneity_conversion = heterogeneity_conversion
        #: Conversions performed (diagnostic).
        self.conversions = 0
        #: Diagnostics.
        self.eager_delivered = 0
        self.rndv_completed = 0
        #: Fault-tolerance state of the owning env (None = FT off).
        #: When set, arrivals from dead ranks or on revoked/failed
        #: contexts are discarded before they can reach user code.
        self.ft = None
        #: Set when this rank died: its free-lists are cleared and
        #: never hand out (or take back) shells again.
        self._pools_retired = False
        self.runtime.cpu.on_retire_pools(self._retire_pools)
        # NOTE: posted / unexpected / send_gates / sync_registry /
        # arrivals / _recv_pool are *lazy* — see __getattr__ below.  A
        # quiescent member of a 1024-rank world never materializes them.

    def __getattr__(self, name: str) -> Any:
        """Materialize per-rank receive-side state on first touch.

        Building these eagerly for every rank made 1000+-rank world
        construction O(ranks) in objects nobody touches; most members of
        a large world only ever talk to a few neighbours.  ``__getattr__``
        only fires while the attribute is missing, so after the first
        touch every access is a plain instance-dict lookup.
        """
        if name == "posted":
            value = PostedQueue()
        elif name == "unexpected":
            value = UnexpectedQueue()
        elif name == "send_gates":
            #: Per-(context, destination) send-ordering gates (MPI
            #: non-overtaking; see repro.mpi.point2point.SendGate).
            value = {}
        elif name == "sync_registry":
            #: sync_id -> RndvSync, the MPID_RNDV_T "address book".
            value = {}
        elif name == "arrivals":
            #: Broadcast on every arrival; blocking probes wait here.
            value = Condition(name="adi-arrivals")
        elif name == "_recv_pool":
            value = Ring(_RECV_POOL_MAX)
        else:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}")
        setattr(self, name, value)
        return value

    # -- blocking-receive shell pool -----------------------------------------

    def acquire_recv(self, comm: Any, context_id: int, source_pattern: int,
                     tag_pattern: int, capacity: int | None) -> RecvRequest:
        """A RecvRequest+RecvHandle shell for a *blocking* receive.

        Blocking ``comm.recv`` is the eager hot path: the request never
        escapes to user code, so its shell (request, handle, flag) can be
        recycled through a free-list instead of allocated per message.
        The Status is always fresh — it *does* escape, inside the
        ``(data, status)`` result.
        """
        if not self._pools_retired:
            pool = self._recv_pool
            if pool:
                request = pool.pop()
                handle = request.handle
                handle.context_id = context_id
                handle.source_pattern = source_pattern
                handle.tag_pattern = tag_pattern
                handle.capacity = capacity
                handle.status = Status()
                handle.data = None
                flag = handle.flag
                flag.is_set = False
                flag.value = None
                request.comm = comm
                request.pending_copy_bytes = 0
                request.posted_queue = None
                return request
        request = RecvRequest(
            RecvHandle(context_id, source_pattern, tag_pattern, capacity),
            comm)
        request._pooled = True
        return request

    def release_recv(self, request: RecvRequest) -> None:
        """Return a cleanly-completed blocking-receive shell to the pool.

        Only the eager happy path recycles: rendezvous transactions
        (``handle.sync`` set), errored or cancelled receives keep their
        shells — those paths are cold and their handles may still be
        referenced (sync registry, FT bookkeeping).
        """
        handle = request.handle
        status = handle.status
        if (self._pools_retired or handle.sync is not None
                or not handle.flag.is_set
                or status.error or status.cancelled):
            return
        request.comm = None
        handle.data = None
        self._recv_pool.push(request)

    def _retire_pools(self) -> None:
        self._pools_retired = True
        pool = self.__dict__.get("_recv_pool")
        if pool is not None:
            pool.clear()

    # -- registry ------------------------------------------------------------

    def register_sync(self, handle: RecvHandle) -> RndvSync:
        sync = handle.make_sync()
        self.sync_registry[sync.sync_id] = sync
        return sync

    # -- arrival paths (run by polling threads or ch_self) ----------------------

    def deliver_eager(self, envelope: Envelope, data: Any,
                      charge_copy: bool = True,
                      copy_on_match: bool | None = None,
                      copy_on_buffer: bool | None = None) -> Generator:
        """An eager data packet arrived: match or buffer.

        Copy charging is device-specific: ch_mad pays the paper's eager
        "intermediary copy on the receiving side" in both branches
        (default); ch_self charges its single memcpy itself
        (``charge_copy=False``); ch_p4 reads straight into a posted user
        buffer but must buffer unexpected arrivals
        (``copy_on_match=False, copy_on_buffer=True``).
        """
        if copy_on_match is None:
            copy_on_match = charge_copy
        if copy_on_buffer is None:
            copy_on_buffer = charge_copy
        if self.ft is not None and self.ft.should_discard(envelope):
            self.ft.note_discard(envelope)
            return
        data = yield from self._heterogeneity(envelope, data)
        handle = self.posted.match(envelope)
        if handle is not None:
            checker = self.runtime.engine.checker
            if checker.enabled:
                checker.on_match(envelope, self.process.rank)
            if copy_on_match:
                yield charge(self.memory.copy_cost(envelope.size))
            self._check_truncation(handle, envelope)
            handle.complete(envelope, data)
            self.eager_delivered += 1
        else:
            if copy_on_buffer:
                # Copy into the unexpected buffer; a second copy happens
                # when the receive finally matches.
                yield charge(self.memory.copy_cost(envelope.size))
            self.unexpected.add(UnexpectedEntry(envelope, UnexpectedKind.EAGER,
                                                data=data))
        self.arrivals.notify_all()

    def deliver_rndv_request(self, envelope: Envelope, token: Any,
                             device: "Device") -> Generator:
        """A rendezvous request arrived (MAD_REQUEST_PKT path)."""
        if self.ft is not None and self.ft.should_discard(envelope):
            self.ft.note_discard(envelope, send_id=getattr(token, "send_id", 0))
            return
        handle = self.posted.match(envelope)
        if handle is not None:
            checker = self.runtime.engine.checker
            if checker.enabled:
                checker.on_match(envelope, self.process.rank)
            self._check_truncation(handle, envelope)
            handle.rndv_source = envelope.source
            sync = self.register_sync(handle)
            # Polling threads must not send: spawn the ack thread (§4.2.3).
            self.runtime.spawn_temporary(
                device.send_rndv_ack(token, sync.sync_id), name="rndv-ack"
            )
        else:
            self.unexpected.add(UnexpectedEntry(envelope,
                                                UnexpectedKind.RNDV_REQUEST,
                                                rndv_token=token))
        self.arrivals.notify_all()
        return
        yield  # pragma: no cover - generator marker

    def deliver_rndv_data(self, sync_id: int, envelope: Envelope,
                          data: Any) -> Generator:
        """The zero-copy data packet arrived: finish the transaction."""
        if self.ft is not None and self.ft.should_discard(envelope):
            self.sync_registry.pop(sync_id, None)
            self.ft.note_discard(envelope)
            return
        sync = self.sync_registry.pop(sync_id, None)
        if sync is None:
            if self.ft is not None:
                # The FT layer drained this sync entry when it failed the
                # receive; the straggler data packet is expected.
                self.ft.note_discard(envelope)
                return
            raise MPIError(f"rendezvous data for unknown sync_id {sync_id}")
        # Zero-copy: the data lands in the user buffer; no memcpy charge
        # (heterogeneity conversion, when needed, is charged).
        data = yield from self._heterogeneity(envelope, data)
        sync.rhandle.complete(envelope, data)
        self.rndv_completed += 1
        self.arrivals.notify_all()
        return
        yield  # pragma: no cover - generator marker

    def _heterogeneity(self, envelope: Envelope, data: Any) -> Generator:
        """Convert a foreign-byte-order payload to the local order.

        Conversion only applies to numeric buffers (numpy arrays) — the
        ADI's datatype engine knows their element layout.  With
        conversion disabled (ablation), foreign arrays arrive raw: the
        receiver sees byte-swapped garbage, exactly what a heterogeneous
        cluster without Fig. 1's "heterogeneity" box would produce.
        """
        if envelope.byte_order == self.byte_order:
            return data
        if not isinstance(data, np.ndarray) or data.dtype.itemsize <= 1:
            return data
        if not self.heterogeneity_conversion:
            return data.byteswap()  # raw foreign bytes, misinterpreted
        # Swap in place conceptually: one pass over the payload.
        yield charge(self.memory.copy_cost(envelope.size))
        self.conversions += 1
        return data

    @staticmethod
    def _check_truncation(handle: RecvHandle, envelope: Envelope) -> None:
        if handle.capacity is not None and envelope.size > handle.capacity:
            handle.status.error = ERR_TRUNCATE


class Device:
    """Abstract device (an MPID_Device).

    Concrete devices implement the three send-side entry points as
    generators run in the *sending process*:

    - :meth:`send_eager` — transmit envelope+data; returns at local
      completion (data is out of the user's hands);
    - :meth:`send_rndv` — run the full rendezvous from the sender side:
      emit the request, block until the acknowledgement delivers the
      remote sync id, transmit the data packet;
    - :meth:`send_rndv_ack` — receiver side: emit OK_TO_SEND for a
      pending request ``token`` carrying our ``sync_id``.

    ``eager_threshold`` is the single integer the ADI reserves for the
    transfer-mode switch point (§4.2.2).
    """

    name = "device"
    eager_threshold: int = 0

    def threshold(self, dest_world: int) -> int:
        """Eager/rendezvous switch point towards ``dest_world``.

        The generic ADI stores a single integer per device
        (:attr:`eager_threshold`); devices whose networks differ per
        destination (ch_mad's per-network ablation) override this.
        """
        return self.eager_threshold

    def send_eager(self, dest_world: int, envelope: Envelope,
                   data: Any) -> Generator:
        raise NotImplementedError  # pragma: no cover

    def send_rndv(self, dest_world: int, shandle: SendHandle) -> Generator:
        raise NotImplementedError  # pragma: no cover

    def send_rndv_ack(self, token: Any, sync_id: int) -> Generator:
        raise NotImplementedError  # pragma: no cover

    def shutdown(self) -> None:
        """Stop polling threads etc. (MPI_Finalize)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.name} threshold={self.eager_threshold}>"
