"""Envelopes and ADI packet headers.

The :class:`Envelope` is the matching key of every MPI message:
(context id, source world rank, tag) plus the payload size for
truncation checks.  Sizes below are the modelled byte weights of the ADI
header structures (MPID_PKT_*), used so control packets have realistic
wire footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.constants import ANY_SOURCE, ANY_TAG


@dataclass(frozen=True)
class Envelope:
    """The matching envelope carried by every data/request packet.

    ``byte_order`` is the sender's native representation — the ADI's
    "heterogeneity management" (Fig. 1) converts on the receiving side
    when it differs from the local order.  It never participates in
    matching.
    """

    context_id: int
    source: int      # world rank of the sender
    tag: int
    size: int        # payload bytes
    byte_order: str = "little"

    def matches(self, source_pattern: int, tag_pattern: int) -> bool:
        """Does this envelope satisfy a receive pattern (wildcards ok)?"""
        if source_pattern != ANY_SOURCE and source_pattern != self.source:
            return False
        if tag_pattern != ANY_TAG and tag_pattern != self.tag:
            return False
        return True


#: Modelled sizes (bytes) of the ADI packet structures that ride inside
#: device headers.  MPID_PKT_HEAD_T carries the envelope; the others add
#: their specific fields (paper Fig. 5).
PKT_HEAD_BYTES = 24          # MPID_PKT_HEAD_T: envelope + mode bits
PKT_REQUEST_SEND_BYTES = 32  # MPID_PKT_REQUEST_SEND_T: envelope + send id
PKT_OK_TO_SEND_BYTES = 16    # MPID_PKT_OK_TO_SEND_T: send id + sync_address
SYNC_ADDRESS_BYTES = 8       # MPID_RNDV_T handle on the wire
TYPE_FIELD_BYTES = 4         # the leading integer type field
