"""Transfer-mode selection (paper §2.2.1, §4.1, §4.2.2).

The portable ADI selects an exchange protocol per message from
device-specific thresholds.  The MPID_Device structure "only reserves a
single integer field to store the transfer mode selection threshold for a
given device" — the limitation that forces ch_mad to *elect* one switch
point across all its networks (see
:mod:`repro.mpi.devices.ch_mad.switchpoints`).
"""

from __future__ import annotations

import enum


class TransferMode(enum.Enum):
    """The two ch_mad transfer modes (§4.1)."""

    #: Data sent immediately; optimized for latency at the cost of an
    #: intermediary copy on the receiving side.
    EAGER = "eager"
    #: Request/acknowledge synchronization first, then zero-copy data.
    RENDEZVOUS = "rendezvous"


def select_mode(size: int, eager_threshold: int) -> TransferMode:
    """Pick the transfer mode for a ``size``-byte payload.

    Messages strictly larger than the threshold go rendezvous; the
    threshold itself still ships eagerly (the paper's "switch point
    beyond which the rendezvous transfer mode replaces the classical
    eager mode").
    """
    if size > eager_threshold:
        return TransferMode.RENDEZVOUS
    return TransferMode.EAGER
