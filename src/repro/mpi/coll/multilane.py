"""Multi-lane collectives (Träff-style decomposition across rails).

A cluster whose nodes carry several boards — rails ``"sisci"``,
``"sisci#1"``, ... — exposes independent physical lanes that flat
collectives leave idle: ch_mad's channel selection always picks the
first live preferred rail.  A multi-lane collective instead

1. agrees on a lane width (the minimum live rail count over the
   communicator, so every pair of ranks can honour it),
2. duplicates the communicator once per lane (distinct contexts keep
   each lane's tag sequence and matching isolated),
3. pins lane *i*'s contexts to rail ``i`` in every rank's ch_mad device
   (:meth:`~repro.mpi.devices.ch_mad.device.ChMadDevice.assign_lane`),
4. splits the payload into near-equal pieces and runs one flat
   sub-collective per lane *concurrently* (temporary Marcel threads,
   the §4.2.3 mechanism), then reassembles.

Payloads must be splittable — numpy arrays (and byte strings for
bcast/allgather).  Anything else, a single lane, or an empty split falls
back to the flat default, so ``algorithm="multilane"`` is always safe to
request.  The lane comms are cached per communicator; the first
multi-lane call pays the (collective) setup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from repro.mpi import collectives as _coll
from repro.mpi.reduce_ops import MIN, Op
from repro.sim.coroutines import wait

from repro.mpi.coll.registry import register

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def lane_comms(comm: "Communicator") -> Generator:
    """Build (or fetch) the per-lane duplicate communicators.

    Collective on first use.  The lane width is agreed with a MIN
    allreduce of each rank's live rail count, so heterogeneous worlds
    (nodes with different board sets) settle on what everyone has.
    """
    cached = getattr(comm, "_lane_cache", None)
    if cached is not None:
        return cached
    device = comm.env.inter_device
    local = device.lane_count() if hasattr(device, "lane_count") else 1
    width = yield from _coll.allreduce(comm, int(local), MIN)
    width = max(1, int(width))
    lanes = []
    for index in range(width):
        lane = yield from comm.dup()
        if hasattr(device, "assign_lane"):
            device.assign_lane((lane.context_id, lane.collective_context),
                               index)
        lanes.append(lane)
    comm._lane_cache = lanes
    return lanes


def _split_payload(obj: Any, width: int) -> list[Any] | None:
    """Per-lane self-describing pieces of ``obj``, or None if unsplittable.

    Lane 0's piece carries the reassembly metadata (shape/dtype for
    arrays); every piece is an ordinary Python object, so the existing
    payload machinery (size inference, cloning) applies unchanged.
    """
    if width < 2:
        return None
    if isinstance(obj, np.ndarray) and obj.size >= width:
        flat = obj.reshape(-1)
        parts = np.array_split(flat, width)
        pieces: list[Any] = [("nd", obj.shape, str(obj.dtype), parts[0])]
        pieces += [("part", part) for part in parts[1:]]
        return pieces
    if isinstance(obj, (bytes, bytearray)) and len(obj) >= width:
        bounds = np.linspace(0, len(obj), width + 1).astype(int)
        return [("bytes", bytes(obj[bounds[i]:bounds[i + 1]]))
                for i in range(width)]
    return None


def _assemble(pieces: list[Any]) -> Any:
    kind = pieces[0][0]
    if kind == "nd":
        _, shape, dtype, first = pieces[0]
        flat = np.concatenate(
            [np.asarray(first).reshape(-1)]
            + [np.asarray(piece[1]).reshape(-1) for piece in pieces[1:]])
        return flat.reshape(shape).astype(np.dtype(dtype), copy=False)
    if kind == "bytes":
        return b"".join(piece[1] for piece in pieces)
    return pieces[0][1]  # ("raw", obj): lane 0 carried it whole


def _run_lanes(comm: "Communicator", generators: list) -> Generator:
    """Run one sub-collective per lane concurrently; list of results."""
    runtime = comm.env.process.runtime
    # recycle=False: these handles are retained and joined below, which
    # a recyclable (pooled) task shell does not permit.
    tasks = [runtime.spawn_temporary(gen, name=f"coll-lane{i}", recycle=False)
             for i, gen in enumerate(generators)]
    results = []
    for task in tasks:
        result = yield wait(task)
        results.append(result)
    return results


def _lane_op(fn, lane, *args) -> Generator:
    result = yield from fn(lane, *args)
    return result


def allreduce_multilane(comm: "Communicator", obj: Any, op: Op) -> Generator:
    """Elementwise array allreduce, one near-equal slice per rail."""
    lanes = yield from lane_comms(comm)
    if (len(lanes) < 2 or not isinstance(obj, np.ndarray)
            or obj.size < len(lanes)):
        result = yield from _coll.allreduce(comm, obj, op)
        return result
    parts = np.array_split(obj.reshape(-1), len(lanes))
    reduced = yield from _run_lanes(comm, [
        _lane_op(_coll.allreduce, lane, part, op)
        for lane, part in zip(lanes, parts)])
    flat = np.concatenate([np.asarray(part).reshape(-1) for part in reduced])
    return flat.reshape(obj.shape)


def bcast_multilane(comm: "Communicator", obj: Any,
                    root: int = 0) -> Generator:
    """Broadcast one payload slice per rail, concurrently."""
    _coll._check_root(comm, root)
    lanes = yield from lane_comms(comm)
    width = len(lanes)
    if width < 2:
        result = yield from _coll.bcast(comm, obj, root)
        return result
    if comm.rank == root:
        pieces = _split_payload(obj, width)
        if pieces is None:  # unsplittable: lane 0 carries it whole
            pieces = [("raw", obj)] + [("none",)] * (width - 1)
    else:
        pieces = [None] * width
    received = yield from _run_lanes(comm, [
        _lane_op(_coll.bcast, lane, piece, root)
        for lane, piece in zip(lanes, pieces)])
    if comm.rank == root:
        return obj
    return _assemble(received)


def allgather_multilane(comm: "Communicator", obj: Any) -> Generator:
    """Per-rail allgathers of payload slices, reassembled per rank.

    Each rank splits (or not) its own contribution independently — the
    pieces are self-describing, so no cross-rank agreement is needed
    beyond the shared lane width.
    """
    lanes = yield from lane_comms(comm)
    width = len(lanes)
    if width < 2:
        result = yield from _coll.allgather(comm, obj)
        return result
    pieces = _split_payload(obj, width)
    if pieces is None:
        pieces = [("raw", obj)] + [("none",)] * (width - 1)
    per_lane = yield from _run_lanes(comm, [
        _lane_op(_coll.allgather, lane, piece)
        for lane, piece in zip(lanes, pieces)])
    return [_assemble([per_lane[lane][rank] for lane in range(width)])
            for rank in range(comm.size)]


register("allreduce", "multilane", allreduce_multilane,
         "array slices allreduced concurrently, one rail per lane")
register("bcast", "multilane", bcast_multilane,
         "payload slices broadcast concurrently, one rail per lane")
register("allgather", "multilane", allgather_multilane,
         "payload slices allgathered concurrently, one rail per lane")
