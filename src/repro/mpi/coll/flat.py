"""Flat (topology-blind) collective algorithms.

Registers the per-operation defaults from :mod:`repro.mpi.collectives`
and hosts the classic MPICH algorithm zoo that used to live in
:mod:`repro.mpi.algorithms` (that module's free functions were removed;
only the ``*_ALGORITHMS`` name dicts remain there):

- broadcast: linear (root sends size-1 messages) vs binomial tree;
- allreduce: reduce+bcast vs recursive doubling;
- allgather: ring vs Bruck's algorithm (log rounds, large messages).

All variants are drop-in equivalent to the defaults — the equivalence is
property-tested — and differ only in message schedule, hence in cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.mpi import collectives as _coll
from repro.mpi.collectives import _crecv, _csend, _csendrecv
from repro.mpi.reduce_ops import Op

from repro.mpi.coll.registry import register

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


def bcast_linear(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """Root sends to every rank in turn: O(size) root-serialized sends.

    Optimal for tiny worlds or when only the root has the NIC warm;
    loses badly to the binomial tree as size grows.
    """
    tag = comm._coll_tag()
    if comm.rank == root:
        for dest in range(comm.size):
            if dest != root:
                yield from _csend(comm, obj, dest, tag)
        return obj
    received = yield from _crecv(comm, root, tag)
    return received


def bcast_binomial(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """The default binomial-tree broadcast (re-exported for symmetry)."""
    result = yield from _coll.bcast(comm, obj, root)
    return result


def allreduce_recursive_doubling(comm: "Communicator", obj: Any,
                                 op: Op) -> Generator:
    """Recursive doubling: log2(p) exchange rounds, all ranks finish with
    the result simultaneously.

    Non-power-of-two worlds first fold the surplus ranks onto partners
    (the MPICH pre/post phase).  Requires a commutative operator; falls
    back to the default reduce+bcast otherwise.
    """
    if not op.commutative:
        result = yield from _coll.allreduce(comm, obj, op)
        return result
    tag = comm._coll_tag()
    size, rank = comm.size, comm.rank
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    value = obj
    new_rank = -1
    # Pre-phase: ranks [0, 2*rem) pair up; odd members fold into even.
    if rank < 2 * rem:
        if rank % 2:  # odd: send and retire
            yield from _csend(comm, value, rank - 1, tag)
        else:
            incoming = yield from _crecv(comm, rank + 1, tag)
            value = op(value, incoming)
            new_rank = rank // 2
    else:
        new_rank = rank - rem
    # Core: recursive doubling among pof2 virtual ranks.
    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            partner_virtual = new_rank ^ mask
            partner = (partner_virtual * 2 if partner_virtual < rem
                       else partner_virtual + rem)
            incoming = yield from _csendrecv(comm, value, partner, partner,
                                             tag)
            value = op(value, incoming)
            mask *= 2
    # Post-phase: even members hand results back to the retired odds.
    if rank < 2 * rem:
        if rank % 2:
            value = yield from _crecv(comm, rank - 1, tag)
        else:
            yield from _csend(comm, value, rank + 1, tag)
    return value


def allgather_bruck(comm: "Communicator", obj: Any) -> Generator:
    """Bruck's allgather: ceil(log2(p)) rounds of doubling block
    exchanges — fewer, larger messages than the ring for small payloads.
    """
    tag = comm._coll_tag()
    size, rank = comm.size, comm.rank
    blocks: list[Any] = [obj]
    distance = 1
    while distance < size:
        dest = (rank - distance) % size
        source = (rank + distance) % size
        want = min(distance, size - distance)
        incoming = yield from _csendrecv(comm, blocks[:want], dest, source,
                                         tag)
        blocks.extend(incoming)
        distance *= 2
    blocks = blocks[:size]
    # blocks[i] currently holds rank (rank + i) % size's contribution.
    out: list[Any] = [None] * size
    for i, item in enumerate(blocks):
        out[(rank + i) % size] = item
    return out


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------
#
# "default" is the exact callable from repro.mpi.collectives, so runs
# that never select an algorithm keep their pre-registry virtual-time
# goldens bit for bit.

register("barrier", "default", _coll.barrier, "dissemination (log2 rounds)")
register("bcast", "default", _coll.bcast, "binomial tree")
register("reduce", "default", _coll.reduce,
         "binomial tree (rank-order preserving)")
register("allreduce", "default", _coll.allreduce, "reduce-to-root + bcast")
register("gather", "default", _coll.gather, "linear, root-centric")
register("scatter", "default", _coll.scatter, "linear, root-centric")
register("allgather", "default", _coll.allgather, "ring (size-1 steps)")
register("alltoall", "default", _coll.alltoall, "pairwise sendrecv rotation")

register("bcast", "linear", bcast_linear, "root sends size-1 messages")
register("bcast", "binomial", bcast_binomial, "binomial tree (alias)")
register("allreduce", "reduce_bcast", _coll.allreduce,
         "reduce-to-root + bcast (alias of default)")
register("allreduce", "recursive_doubling", allreduce_recursive_doubling,
         "log2(p) exchange rounds; commutative ops only")
register("allgather", "ring", _coll.allgather, "ring (alias of default)")
register("allgather", "bruck", allgather_bruck,
         "ceil(log2(p)) doubling block exchanges")
