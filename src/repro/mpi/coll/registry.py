"""The collective-algorithm registry (selection by ``(operation, name)``).

Every collective algorithm the simulator knows — the flat defaults from
:mod:`repro.mpi.collectives`, the classic MPICH zoo, the node-aware
hierarchical family and the multi-lane decompositions — registers here
under its operation ("bcast", "allreduce", ...) and a short name.  The
same implementation is then reachable three ways, in precedence order:

1. per call:        ``yield from comm.allreduce(x, algorithm="hier")``
2. per communicator: ``comm.set_coll_algorithm("allreduce", "hier")``
3. globally:        ``EngineConfig(coll_algorithm="allreduce=hier")`` or
                    the ``REPRO_COLL_ALG`` environment variable.

With no selection anywhere, :func:`resolve` returns the exact default
callables from :mod:`repro.mpi.collectives`, so unselected runs are
bit-identical (same virtual time, same traffic) to the pre-registry
simulator.

A selection string is either one bare name (applied to every operation
that registers it) or a comma list of ``operation=name`` pairs::

    REPRO_COLL_ALG=hier
    REPRO_COLL_ALG=allreduce=multilane,bcast=binomial

Unknown operations or names raise
:class:`~repro.errors.ConfigurationError` at parse time —
``EngineConfig`` validation happens in ``Engine.apply_config``, before
any rank runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator

#: Operations the registry covers (the selectable subset of the
#: collective API; scan/exscan/reduce_scatter/alltoallv have a single
#: implementation each and stay direct).
OPERATIONS = ("barrier", "bcast", "reduce", "allreduce",
              "gather", "scatter", "allgather", "alltoall")

#: Environment variable consulted when neither the call, the
#: communicator nor the engine config selects an algorithm.
ENV_VAR = "REPRO_COLL_ALG"


@dataclass(frozen=True)
class CollectiveAlgorithm:
    """One registered implementation of one collective operation."""

    operation: str
    name: str
    fn: Callable[..., Generator]
    description: str = ""


#: ``(operation, name) -> CollectiveAlgorithm``.
REGISTRY: dict[tuple[str, str], CollectiveAlgorithm] = {}


def register(operation: str, name: str, fn: Callable[..., Generator],
             description: str = "") -> CollectiveAlgorithm:
    """Register ``fn`` as ``operation``'s ``name`` algorithm."""
    if operation not in OPERATIONS:
        raise ConfigurationError(
            f"unknown collective operation {operation!r}; "
            f"known: {OPERATIONS}")
    key = (operation, name)
    if key in REGISTRY:
        raise ConfigurationError(
            f"collective algorithm {name!r} already registered for "
            f"{operation!r}")
    algorithm = CollectiveAlgorithm(operation, name, fn, description)
    REGISTRY[key] = algorithm
    return algorithm


def get(operation: str, name: str) -> CollectiveAlgorithm:
    """Look up one algorithm; raises ConfigurationError when unknown."""
    try:
        return REGISTRY[(operation, name)]
    except KeyError:
        raise ConfigurationError(
            f"no {operation!r} algorithm named {name!r}; "
            f"known: {names(operation)}") from None


def names(operation: str) -> list[str]:
    """Sorted algorithm names registered for ``operation``."""
    return sorted(n for (op, n) in REGISTRY if op == operation)


def operations_with(name: str) -> list[str]:
    """Operations for which an algorithm called ``name`` exists."""
    return [op for op in OPERATIONS if (op, name) in REGISTRY]


def parse_selection(text: str) -> dict[str, str]:
    """Parse a selection string into ``{operation: name}``.

    A bare name selects that algorithm for every operation registering
    it; ``op=name`` pairs pin individual operations.  Raises
    :class:`~repro.errors.ConfigurationError` on unknown operations or
    names, so a bad ``EngineConfig``/env var fails before the first rank
    runs rather than mid-collective.
    """
    selection: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            operation, _, name = part.partition("=")
            operation, name = operation.strip(), name.strip()
            get(operation, name)  # validates both halves
            selection[operation] = name
        else:
            covered = operations_with(part)
            if not covered:
                known = sorted({n for (_, n) in REGISTRY})
                raise ConfigurationError(
                    f"no collective algorithm named {part!r}; "
                    f"known names: {known}")
            for operation in covered:
                selection[operation] = part
    return selection


def _engine_selection(engine) -> dict[str, str]:
    """The engine-wide selection: ``EngineConfig.coll_algorithm`` if set
    (validated by ``apply_config``), else ``REPRO_COLL_ALG``, else {}.

    Cached on the engine so the environment is read once per run —
    selection is part of the run's configuration, not live state.
    """
    selection = getattr(engine, "coll_selection", None)
    if selection is None:
        text = os.environ.get(ENV_VAR, "")
        selection = parse_selection(text) if text else {}
        engine.coll_selection = selection
    return selection


def resolve(comm: "Communicator", operation: str,
            name: str | None = None) -> Callable[..., Generator]:
    """The callable to run for ``operation`` on ``comm``.

    Precedence: explicit ``name`` (per call) > the communicator's
    :meth:`~repro.mpi.communicator.Communicator.set_coll_algorithm`
    table > the engine-wide selection > ``"default"``.
    """
    if name is None:
        name = comm._coll_algorithms.get(operation)
    if name is None:
        name = _engine_selection(comm.env.process.engine).get(operation)
    if name is None:
        name = "default"
    return get(operation, name).fn
