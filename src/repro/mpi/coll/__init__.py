"""Pluggable collective-algorithm selection (the registry package).

Importing this package registers every built-in algorithm family:

- :mod:`repro.mpi.coll.flat` — the per-operation defaults plus the
  classic MPICH zoo (linear/binomial bcast, recursive doubling, Bruck);
- :mod:`repro.mpi.coll.hierarchical` — node-aware two-level algorithms
  over ``Communicator.split_type()`` subcommunicators;
- :mod:`repro.mpi.coll.multilane` — payload decomposition across rails
  with concurrent per-lane sub-collectives.

See :mod:`repro.mpi.coll.registry` for the selection precedence
(per call > per communicator > ``EngineConfig.coll_algorithm`` /
``REPRO_COLL_ALG`` > default).
"""

from repro.mpi.coll.registry import (
    ENV_VAR,
    OPERATIONS,
    REGISTRY,
    CollectiveAlgorithm,
    get,
    names,
    operations_with,
    parse_selection,
    register,
    resolve,
)
from repro.mpi.coll import flat, hierarchical, multilane  # noqa: F401  (registration side effects)

__all__ = [
    "ENV_VAR",
    "OPERATIONS",
    "REGISTRY",
    "CollectiveAlgorithm",
    "get",
    "names",
    "operations_with",
    "parse_selection",
    "register",
    "resolve",
    "flat",
    "hierarchical",
    "multilane",
]
