"""Node-aware hierarchical collectives (chainermn-style two-level trees).

The cluster model knows which ranks share an SMP node (the smp_plug vs
ch_mad boundary); these algorithms exploit it by splitting every
collective into an intra-node phase over the cheap shared-memory device
and an inter-node phase among one *leader* per node over ch_mad:

- allreduce: intra-node reduce -> inter-node allreduce among leaders ->
  intra-node bcast (the classic hierarchical decomposition);
- bcast: root hands to its node leader -> leader bcast -> node bcast;
- barrier: node gather (arrival) -> leader barrier -> node bcast (release);
- allgather: node gather -> leader allgather -> node bcast.

The node/leader subcommunicators are derived once per communicator via
:meth:`~repro.mpi.communicator.Communicator.split_type` and cached; the
first hierarchical call on a communicator therefore pays the (collective)
setup cost and later calls reuse it.  All internal phases run the *flat
default* algorithms directly — resolving through the registry again
would recurse when a hierarchical algorithm is selected globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.mpi import collectives as _coll
from repro.mpi.collectives import _crecv, _csend
from repro.mpi.reduce_ops import Op

from repro.mpi.coll.flat import allreduce_recursive_doubling
from repro.mpi.coll.registry import register

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator


@dataclass
class HierComms:
    """Cached two-level decomposition of one communicator."""

    #: All ranks of this communicator on my node (I am a member).
    node_comm: "Communicator"
    #: One leader per node (node_comm rank 0); None on non-leaders.
    leader_comm: "Communicator | None"
    #: node index of every communicator rank (locally derived).
    node_of: tuple[int, ...]
    #: node index -> lowest communicator rank on that node (the leader).
    leader_of_node: dict[int, int]
    #: node index -> that leader's rank inside leader_comm.
    leader_index_of_node: dict[int, int]
    #: True when comm ranks fill nodes contiguously, which makes the
    #: node-then-leader reduction order equal the rank order (and the
    #: decomposition safe for non-commutative operators).
    contiguous: bool


def hier_comms(comm: "Communicator") -> Generator:
    """Build (or fetch) the node/leader decomposition of ``comm``.

    Collective: the first call must happen at the same point on every
    rank, which any hierarchical collective guarantees by construction.
    """
    cached = getattr(comm, "_hier_cache", None)
    if cached is not None:
        return cached
    env = comm.env
    node_of = tuple(env.node_of_rank[comm._dest_world(r)]
                    for r in range(comm.size))
    leader_of_node: dict[int, int] = {}
    for rank, node in enumerate(node_of):
        leader_of_node.setdefault(node, rank)
    leader_ranks = sorted(leader_of_node.values())
    leader_index_of_node = {node: leader_ranks.index(rank)
                            for node, rank in leader_of_node.items()}
    contiguous = all(node_of[i] <= node_of[i + 1]
                     for i in range(len(node_of) - 1))
    node_comm = yield from comm.split_type()
    is_leader = node_comm.rank == 0
    # Leader membership is locally derivable (lowest comm rank per node,
    # ordered by comm rank — the same order the old
    # ``comm.split(0/UNDEFINED, key=comm.rank)`` produced), so the
    # O(ranks^2)-message allgather inside MPI_Comm_split is dead weight
    # at 1000+ ranks.  Agree with a barrier and build the communicator
    # locally — the ``split_type()`` mechanism.
    from repro.mpi.communicator import Communicator
    from repro.mpi.group import Group
    yield from _coll.barrier(comm)
    context = comm.env.allocate_context()
    if is_leader:
        leader_comm = Communicator(
            comm.env,
            Group([comm._dest_world(r) for r in leader_ranks]),
            context)
    else:
        leader_comm = None
    cache = HierComms(node_comm, leader_comm, node_of, leader_of_node,
                      leader_index_of_node, contiguous)
    comm._hier_cache = cache
    return cache


def bcast_hier(comm: "Communicator", obj: Any, root: int = 0) -> Generator:
    """root -> its node leader -> all leaders -> intra-node fan-out."""
    _coll._check_root(comm, root)
    hier = yield from hier_comms(comm)
    tag = comm._coll_tag()  # every rank, in lockstep (even if unused)
    root_node = hier.node_of[root]
    root_leader = hier.leader_of_node[root_node]
    if root != root_leader:
        if comm.rank == root:
            yield from _csend(comm, obj, root_leader, tag)
        elif comm.rank == root_leader:
            obj = yield from _crecv(comm, root, tag)
    if hier.leader_comm is not None:
        obj = yield from _coll.bcast(hier.leader_comm, obj,
                                     hier.leader_index_of_node[root_node])
    obj = yield from _coll.bcast(hier.node_comm, obj, 0)
    return obj


def reduce_hier(comm: "Communicator", obj: Any, op: Op,
                root: int = 0) -> Generator:
    """Intra-node reduce -> leader reduce -> hand to ``root``."""
    _coll._check_root(comm, root)
    hier = yield from hier_comms(comm)
    if not op.commutative and not hier.contiguous:
        # Scattered placement breaks rank-order folding; stay flat.
        result = yield from _coll.reduce(comm, obj, op, root)
        return result
    tag = comm._coll_tag()
    root_node = hier.node_of[root]
    root_leader = hier.leader_of_node[root_node]
    value = yield from _coll.reduce(hier.node_comm, obj, op, 0)
    if hier.leader_comm is not None:
        value = yield from _coll.reduce(
            hier.leader_comm, value, op,
            hier.leader_index_of_node[root_node])
    if root != root_leader:
        if comm.rank == root_leader:
            yield from _csend(comm, value, root, tag)
            value = None
        elif comm.rank == root:
            value = yield from _crecv(comm, root_leader, tag)
    return value if comm.rank == root else None


def allreduce_hier(comm: "Communicator", obj: Any, op: Op) -> Generator:
    """Intra-node reduce -> inter-node allreduce -> intra-node bcast.

    The inter-node phase among leaders uses recursive doubling: log2(n)
    wire latencies instead of reduce+bcast's 2*log2(n), which is where
    the hierarchy beats the flat default (the intra-node phases ride the
    cheap smp_plug device).  Non-commutative operators fall back inside
    recursive doubling (contiguous placement keeps leader order = rank
    order, so the folds stay rank-ordered either way).
    """
    hier = yield from hier_comms(comm)
    if not op.commutative and not hier.contiguous:
        result = yield from _coll.allreduce(comm, obj, op)
        return result
    value = yield from _coll.reduce(hier.node_comm, obj, op, 0)
    if hier.leader_comm is not None:
        value = yield from allreduce_recursive_doubling(
            hier.leader_comm, value, op)
    value = yield from _coll.bcast(hier.node_comm, value, 0)
    return value


def barrier_hier(comm: "Communicator") -> Generator:
    """Arrival gather per node, leader barrier, intra-node release."""
    hier = yield from hier_comms(comm)
    yield from _coll.gather(hier.node_comm, None, 0)
    if hier.leader_comm is not None:
        yield from _coll.barrier(hier.leader_comm)
    yield from _coll.bcast(hier.node_comm, None, 0)


def allgather_hier(comm: "Communicator", obj: Any) -> Generator:
    """Node gather -> leader allgather -> intra-node bcast."""
    hier = yield from hier_comms(comm)
    mine = (comm.rank, obj)
    local = yield from _coll.gather(hier.node_comm, mine, 0)
    out = None
    if hier.leader_comm is not None:
        groups = yield from _coll.allgather(hier.leader_comm, local)
        out = [None] * comm.size
        for group in groups:
            for rank, value in group:
                out[rank] = value
    out = yield from _coll.bcast(hier.node_comm, out, 0)
    return out


register("bcast", "hier", bcast_hier,
         "root -> node leader -> leader bcast -> node bcast")
register("reduce", "hier", reduce_hier,
         "node reduce -> leader reduce -> root")
register("allreduce", "hier", allreduce_hier,
         "node reduce -> leader allreduce -> node bcast")
register("barrier", "hier", barrier_hier,
         "node gather -> leader barrier -> node release")
register("allgather", "hier", allgather_hier,
         "node gather -> leader allgather -> node bcast")
