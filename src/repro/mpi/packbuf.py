"""MPI_Pack / MPI_Unpack: explicit user-driven packing.

The ADI's datatype engine gathers/scatters automatically inside
``Send``/``Recv``; these functions expose the same machinery to
applications that want to build heterogeneous message buffers by hand
(the MPI-1 idiom for sending a struct-of-arrays in one message).

A packed buffer is a plain ``uint8`` numpy array; ``position`` cursors
follow the MPI convention (in/out byte offsets).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIDatatypeError
from repro.mpi.datatypes import Datatype


def pack_size(count: int, datatype: Datatype) -> int:
    """Upper bound on the packed size (MPI_Pack_size) — exact here."""
    if count < 0:
        raise MPIDatatypeError("negative count")
    return count * datatype.size


def pack(inbuf: np.ndarray, count: int, datatype: Datatype,
         outbuf: np.ndarray, position: int) -> int:
    """Pack ``count`` items of ``datatype`` from ``inbuf`` into ``outbuf``
    starting at byte ``position``; returns the new position."""
    datatype._require_committed()
    nbytes = pack_size(count, datatype)
    out = _as_bytes(outbuf)
    if position < 0 or position + nbytes > out.size:
        raise MPIDatatypeError(
            f"pack of {nbytes} bytes at position {position} overflows "
            f"buffer of {out.size}"
        )
    data = datatype.pack(inbuf, count)
    out[position:position + nbytes] = np.frombuffer(
        np.ascontiguousarray(data).tobytes(), dtype=np.uint8
    )
    return position + nbytes


def unpack(inbuf: np.ndarray, position: int, outbuf: np.ndarray,
           count: int, datatype: Datatype) -> int:
    """Unpack ``count`` items of ``datatype`` from byte ``position`` of
    ``inbuf`` into ``outbuf``; returns the new position."""
    datatype._require_committed()
    nbytes = pack_size(count, datatype)
    raw = _as_bytes(inbuf)
    if position < 0 or position + nbytes > raw.size:
        raise MPIDatatypeError(
            f"unpack of {nbytes} bytes at position {position} overruns "
            f"buffer of {raw.size}"
        )
    window = raw[position:position + nbytes]
    if datatype.base_dtype is None:
        data = window.copy()
    else:
        data = np.frombuffer(window.tobytes(), dtype=datatype.base_dtype)
    datatype.unpack(data, outbuf, count)
    return position + nbytes


def _as_bytes(buffer: np.ndarray) -> np.ndarray:
    arr = np.asarray(buffer)
    if arr.dtype != np.uint8:
        raise MPIDatatypeError("pack buffers must be uint8 arrays")
    return arr.reshape(-1)
