"""MPI-level constants."""

from __future__ import annotations

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1
#: Null process: sends/receives to it complete immediately with no data.
PROC_NULL = -2
#: Returned by comparisons / split with no membership.
UNDEFINED = -3

#: ``Communicator.split_type`` selector: ranks sharing an SMP node
#: (MPI_COMM_TYPE_SHARED; the only supported type).
COMM_TYPE_SHARED = 1

#: Highest tag value applications may use (MPI guarantees >= 32767).
TAG_UB = 2**20

#: Context id of MPI_COMM_WORLD point-to-point traffic.
WORLD_CONTEXT = 0

#: Offset between a communicator's point-to-point context and the hidden
#: context its collective operations run in (the MPICH trick that keeps
#: collective traffic from matching user receives).
COLLECTIVE_CONTEXT_OFFSET = 1

#: Number of context ids consumed per communicator.
CONTEXTS_PER_COMM = 2

#: Default size attributed to an object whose size cannot be inferred.
DEFAULT_OBJECT_SIZE = 64

#: Status.error codes (MPI reserves 0 for success).
ERR_TRUNCATE = 15
ERR_PROC_FAILED = 75
ERR_REVOKED = 76

#: Context id of the fault-tolerance control plane (revoke floods and
#: collective-failure notices).  Far above anything
#: ``MPIEnv.allocate_context`` can reach, so the FT listener's permanent
#: ANY_SOURCE/ANY_TAG receive can never steal application traffic.
FT_CONTROL_CONTEXT = 10**9
#: Context id of FT synchronizing traffic (shrink barriers, agree trees).
FT_SYNC_CONTEXT = 10**9 + 2


def infer_size(obj: object) -> int:
    """Best-effort wire size of a Python object, in bytes.

    Exact for bytes-like objects and numpy arrays; container types get a
    recursive estimate; everything else a flat default.  MPI calls accept
    an explicit ``size=`` to override (benchmarks always pass it).
    """
    if obj is None:
        return 0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(infer_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(infer_size(k) + infer_size(v) for k, v in obj.items())
    return DEFAULT_OBJECT_SIZE
