"""MPI process groups (MPI_Group)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import MPIRankError
from repro.mpi.constants import UNDEFINED

#: Comparison results (MPI_Group_compare / MPI_Comm_compare).
IDENT = 0
SIMILAR = 1
UNEQUAL = 2


class Group:
    """An ordered set of world ranks."""

    def __init__(self, world_ranks: Sequence[int]):
        ranks = tuple(int(r) for r in world_ranks)
        if len(set(ranks)) != len(ranks):
            raise MPIRankError(f"duplicate ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise MPIRankError(f"negative world rank in group: {ranks}")
        self.world_ranks = ranks
        #: Lazy world-rank -> group-rank index.  ``rank_of`` runs per
        #: *received message* (status translation), so ``tuple.index``'s
        #: O(size) scan made every receive O(ranks); the dict makes it
        #: O(1).  Built on first lookup so groups that are never queried
        #: (most subgroups) cost nothing.
        self._index: dict[int, int] | None = None

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def _rank_index(self) -> dict[int, int]:
        index = self._index
        if index is None:
            index = self._index = {
                r: i for i, r in enumerate(self.world_ranks)
            }
        return index

    def rank_of(self, world_rank: int) -> int:
        """Group rank of ``world_rank`` (UNDEFINED if absent).  O(1)."""
        return self._rank_index().get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """World rank of group member ``group_rank``."""
        if not 0 <= group_rank < self.size:
            raise MPIRankError(
                f"group rank {group_rank} out of range [0, {self.size})"
            )
        return self.world_ranks[group_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._rank_index()

    def compare(self, other: "Group") -> int:
        """IDENT if same ranks in same order, SIMILAR if same set, else
        UNEQUAL."""
        if self.world_ranks == other.world_ranks:
            return IDENT
        if set(self.world_ranks) == set(other.world_ranks):
            return SIMILAR
        return UNEQUAL

    def translate_ranks(self, ranks: Iterable[int], other: "Group") -> list[int]:
        """Map our group ranks to the corresponding ranks in ``other``."""
        return [other.rank_of(self.world_rank(r)) for r in ranks]

    # -- set operations ------------------------------------------------------------

    def union(self, other: "Group") -> "Group":
        """Our members, then other's members not already present."""
        extra = [r for r in other.world_ranks if r not in self.world_ranks]
        return Group(self.world_ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group(tuple(r for r in self.world_ranks if r in other.world_ranks))

    def difference(self, other: "Group") -> "Group":
        return Group(tuple(r for r in self.world_ranks if r not in other.world_ranks))

    def incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup of the listed group ranks, in the listed order."""
        return Group(tuple(self.world_rank(r) for r in ranks))

    def excl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup without the listed group ranks."""
        drop = {self.world_rank(r) for r in ranks}
        return Group(tuple(r for r in self.world_ranks if r not in drop))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Group {self.world_ranks}>"
