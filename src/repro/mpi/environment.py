"""The per-process MPI environment (MPI_Init state).

An :class:`MPIEnv` is handed to each rank's program coroutine.  It owns
the progress engine, the device set, device selection by destination
locality (§2.3: ch_self for self, smp_plug within a node, the inter-node
device otherwise), context-id allocation, and MPI_COMM_WORLD.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError, MPIRankError
from repro.mpi.adi.device import Device, ProgressEngine
from repro.mpi.constants import CONTEXTS_PER_COMM, WORLD_CONTEXT
from repro.mpi.group import Group

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.session import MadProcess
    from repro.mpi.communicator import Communicator


class MPIEnv:
    """Everything one MPI process needs at runtime."""

    def __init__(self, process: "MadProcess", world_rank: int,
                 node_of_rank: Sequence[int], byte_order: str = "little",
                 heterogeneity_conversion: bool = True):
        self.process = process
        self.rank = world_rank
        #: node index of every world rank (locality map for device selection).
        self.node_of_rank = tuple(node_of_rank)
        self.size = len(self.node_of_rank)
        self.node = self.node_of_rank[world_rank]
        self.progress = ProgressEngine(
            process, byte_order=byte_order,
            heterogeneity_conversion=heterogeneity_conversion)
        self.self_device: Device | None = None
        self.smp_device: Device | None = None
        self.inter_device: Device | None = None
        self._next_context = WORLD_CONTEXT + CONTEXTS_PER_COMM
        self.comm_world: "Communicator | None" = None
        self.finalized = False
        #: ULFM-style fault-tolerance state (:class:`repro.mpi.ft.FTState`);
        #: None when the cluster runs without a failure model.
        self.ft = None

    # -- wiring (cluster session) -----------------------------------------------

    def install_devices(self, self_device: Device,
                        smp_device: Device | None,
                        inter_device: Device | None) -> None:
        self.self_device = self_device
        self.smp_device = smp_device
        self.inter_device = inter_device

    def make_comm_world(self, world_group: Group | None = None) -> "Communicator":
        """Build MPI_COMM_WORLD.

        The cluster session passes one shared ``world_group`` for every
        rank (Group is immutable; per-env world groups were O(ranks²)
        memory).  Standalone envs build their own.
        """
        from repro.mpi.communicator import Communicator
        if world_group is None:
            world_group = Group(range(self.size))
        self.comm_world = Communicator(self, world_group,
                                       context_id=WORLD_CONTEXT)
        return self.comm_world

    # -- device selection (the ADI's multi-device dispatch, §2.3) ------------------

    def select_device(self, dest_world: int) -> Device:
        """Pick the device by destination locality."""
        if not 0 <= dest_world < self.size:
            raise MPIRankError(f"world rank {dest_world} out of range")
        if dest_world == self.rank:
            return self.self_device
        if self.node_of_rank[dest_world] == self.node:
            if self.smp_device is None:
                raise ConfigurationError(
                    f"ranks {self.rank} and {dest_world} share node "
                    f"{self.node} but smp_plug is not installed"
                )
            return self.smp_device
        if self.inter_device is None:
            raise ConfigurationError(
                f"rank {self.rank} has no inter-node device for rank "
                f"{dest_world}"
            )
        return self.inter_device

    # -- context ids ------------------------------------------------------------------

    def allocate_context(self) -> int:
        """Allocate a context-id pair for a new communicator.

        Communicator creation is collective and every process performs
        the same creations in the same order, so identical counters stay
        in lockstep across ranks (the standard MPICH assumption).
        """
        context = self._next_context
        self._next_context += CONTEXTS_PER_COMM
        return context

    def reserve_context(self, context: int) -> None:
        """Mark ``context`` as taken (intercommunicator handshakes agree
        on a context that may be ahead of this process's counter)."""
        self._next_context = max(self._next_context,
                                 context + CONTEXTS_PER_COMM)

    # -- buffered-send buffer (MPI_Buffer_attach / MPI_Buffer_detach) -------

    def attach_buffer(self, nbytes: int) -> None:
        """Provide the process-wide buffer used by ``bsend``."""
        if getattr(self, "_bsend_capacity", 0):
            from repro.errors import MPIError
            raise MPIError("a bsend buffer is already attached")
        self._bsend_capacity = int(nbytes)
        self._bsend_in_use = 0

    def detach_buffer(self) -> int:
        """Release the bsend buffer; returns its size.  Blocks nothing:
        outstanding bsends keep their reservations until completion."""
        capacity = getattr(self, "_bsend_capacity", 0)
        self._bsend_capacity = 0
        return capacity

    def _bsend_reserve(self, nbytes: int) -> None:
        from repro.errors import MPIError
        capacity = getattr(self, "_bsend_capacity", 0)
        in_use = getattr(self, "_bsend_in_use", 0)
        if in_use + nbytes > capacity:
            raise MPIError(
                f"MPI_ERR_BUFFER: bsend of {nbytes} bytes exceeds the "
                f"attached buffer ({capacity - in_use} of {capacity} free)"
            )
        self._bsend_in_use = in_use + nbytes

    def _bsend_release(self, nbytes: int) -> None:
        self._bsend_in_use = max(0, getattr(self, "_bsend_in_use", 0) - nbytes)

    # -- clock ------------------------------------------------------------------------

    def wtime(self) -> float:
        """MPI_Wtime: current simulated time in seconds."""
        return self.process.engine.now / 1e9

    # -- teardown -----------------------------------------------------------------------

    def shutdown(self) -> None:
        """MPI_Finalize teardown: stop device threads, kill daemons."""
        if self.finalized:
            return
        self.finalized = True
        for device in (self.self_device, self.smp_device, self.inter_device):
            if device is not None:
                device.shutdown()
        self.process.runtime.kill_daemons()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MPIEnv rank={self.rank}/{self.size} node={self.node}>"
