"""Intercommunicators (MPI_Intercomm_create / MPI_Intercomm_merge).

An intercommunicator joins two disjoint groups: point-to-point ranks
refer to the *remote* group.  The classic use is coupling two
independently-spawned applications — on the paper's meta-clusters, the
natural shape is one intracommunicator per island joined by an
intercommunicator across the slow link.

Context agreement: the two sides may have allocated different numbers of
contexts, so the leaders exchange proposals over the peer communicator
and everyone reserves the maximum (the MPICH handshake, simplified).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import MPICommError, MPIRankError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group
from repro.mpi.reduce_ops import MAX


class Intercommunicator(Communicator):
    """A communicator whose sends/receives address the remote group."""

    def __init__(self, env, local_group: Group, remote_group: Group,
                 context_id: int, local_comm: Communicator):
        super().__init__(env, local_group, context_id)
        self.remote_group = remote_group
        #: The intracommunicator of the local side (used by merge()).
        self.local_comm = local_comm
        overlap = set(local_group.world_ranks) & set(remote_group.world_ranks)
        if overlap:
            raise MPICommError(
                f"intercommunicator groups overlap on world ranks {overlap}"
            )

    is_inter = True

    @property
    def remote_size(self) -> int:
        return self.remote_group.size

    # -- rank translation: destinations/sources are remote ranks -------------

    def _dest_world(self, rank: int) -> int:
        return self.remote_group.world_rank(rank)

    def _source_world(self, rank: int) -> int:
        return self.remote_group.world_rank(rank)

    def _rank_of_world(self, world_rank: int) -> int:
        return self.remote_group.rank_of(world_rank)

    @property
    def _peer_size(self) -> int:
        return self.remote_group.size

    # -- collectives: only merge is provided (MPI-1 scope) ---------------------

    def _no_collectives(self, *args: Any, **kwargs: Any):
        raise MPICommError(
            "collective operations on intercommunicators are not supported; "
            "merge() to an intracommunicator first"
        )
        yield  # pragma: no cover

    barrier = bcast = reduce = allreduce = gather = scatter = _no_collectives
    allgather = alltoall = scan = exscan = _no_collectives

    def merge(self, high: bool = False) -> Generator:
        """Collective over both groups: fuse into one intracommunicator
        (MPI_Intercomm_merge).  The ``high`` side's ranks come second;
        both sides must pass opposite values (or at least one consistent
        ordering emerges from the low side's choice).
        """
        # Agree on a fresh context across both sides: local max via the
        # local intracomm, leader exchange over the intercommunicator.
        proposal = self.env._next_context
        local_max = yield from self.local_comm.allreduce(proposal, op=MAX)
        if self.local_comm.rank == 0:
            remote_max, _ = yield from self.sendrecv(
                local_max, dest=0, sendtag=_MERGE_TAG, source=0,
                recvtag=_MERGE_TAG)
            agreed = max(local_max, remote_max)
            remote_high, _ = yield from self.sendrecv(
                high, dest=0, sendtag=_MERGE_TAG + 1, source=0,
                recvtag=_MERGE_TAG + 1)
            if remote_high == high:
                # Tie: the group with the lower leading world rank is low.
                ours = self.group.world_ranks[0]
                theirs = self.remote_group.world_ranks[0]
                effective_high = ours > theirs
            else:
                effective_high = high
            agreed = (agreed, effective_high)
        else:
            agreed = None
        agreed, effective_high = (yield from self.local_comm.bcast(
            agreed, root=0))
        self.env.reserve_context(agreed)
        if effective_high:
            ranks = self.remote_group.world_ranks + self.group.world_ranks
        else:
            ranks = self.group.world_ranks + self.remote_group.world_ranks
        return Communicator(self.env, Group(ranks), agreed)


_CREATE_TAG = 2_000_000 % (2**20)  # inside TAG_UB
_MERGE_TAG = _CREATE_TAG + 2


def create_intercomm(local_comm: Communicator, local_leader: int,
                     peer_comm: Communicator, remote_leader: int,
                     tag: int = _CREATE_TAG) -> Generator:
    """Collective over both local communicators: build the
    intercommunicator (MPI_Intercomm_create).

    ``peer_comm`` must contain both leaders (typically MPI_COMM_WORLD);
    ``remote_leader`` is the remote group's leader rank *in peer_comm*.
    """
    if not 0 <= local_leader < local_comm.size:
        raise MPIRankError(f"local leader {local_leader} out of range")
    env = local_comm.env
    # Local context proposal.
    proposal = env._next_context
    local_max = yield from local_comm.allreduce(proposal, op=MAX)
    # Leaders exchange (context proposal, group membership).
    if local_comm.rank == local_leader:
        payload = (local_max, local_comm.group.world_ranks)
        (remote_max, remote_ranks), _ = yield from peer_comm.sendrecv(
            payload, dest=remote_leader, sendtag=tag,
            source=remote_leader, recvtag=tag)
        info = (max(local_max, remote_max), remote_ranks)
    else:
        info = None
    context, remote_ranks = (yield from local_comm.bcast(info,
                                                         root=local_leader))
    env.reserve_context(context)
    return Intercommunicator(env, local_comm.group, Group(remote_ranks),
                             context, local_comm)
