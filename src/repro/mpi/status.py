"""MPI_Status equivalent."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.constants import ANY_SOURCE, ANY_TAG


@dataclass
class Status:
    """Completion information for a receive (or probe)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    #: Received payload size in bytes (MPI_Get_count with MPI_BYTE).
    count: int = 0
    error: int = 0
    cancelled: bool = False
    #: World rank of the sender (set on completion; ``source`` holds the
    #: communicator-relative rank, translated by the owning request).
    source_world: int = ANY_SOURCE
    #: World rank whose death failed this operation (``error`` is
    #: :data:`~repro.mpi.constants.ERR_PROC_FAILED`); None otherwise.
    failed_rank: int | None = None

    def get_count(self, datatype=None) -> int:
        """Number of ``datatype`` elements received (bytes if None).

        Returns :data:`~repro.mpi.constants.UNDEFINED` when the byte count
        is not a whole number of elements, as MPI_Get_count does.
        """
        if datatype is None:
            return self.count
        if datatype.size == 0:
            return 0
        elements, rem = divmod(self.count, datatype.size)
        if rem:
            from repro.mpi.constants import UNDEFINED
            return UNDEFINED
        return elements
