"""Communicators: the user-facing MPI object.

API shape mirrors mpi4py: lowercase methods move arbitrary Python
objects; uppercase methods move numpy buffers through the datatype
engine.  All communication methods are generators — call them with
``yield from`` inside a program coroutine::

    yield from comm.send(obj, dest=1, tag=7)
    data, status = yield from comm.recv(source=0)
    total = yield from comm.allreduce(comm.rank)
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from repro.errors import MPICommError, MPIDatatypeError
from repro.mpi import coll as _collreg
from repro.mpi import collectives as _coll
from repro.mpi import point2point as _p2p
from repro.mpi.adi.device import clone_payload
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_CONTEXT_OFFSET,
    COMM_TYPE_SHARED,
    UNDEFINED,
)
from repro.mpi.datatypes import BYTE, Datatype
from repro.mpi.group import Group
from repro.mpi.reduce_ops import SUM, Op
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status
from repro.sim.coroutines import charge


class Communicator:
    """An MPI communicator: a group plus an isolated context."""

    def __init__(self, env, group: Group, context_id: int):
        self.env = env
        self.group = group
        self.context_id = context_id
        self.rank = group.rank_of(env.rank)
        if self.rank == UNDEFINED:
            raise MPICommError(
                f"process {env.rank} constructed a communicator it is not in"
            )
        self._coll_seq = 0
        self.freed = False
        #: Attribute cache (MPI keyval mechanism, per-communicator).
        self._attributes: dict[Any, Any] = {}
        #: Per-communicator collective algorithm selection
        #: (operation -> registry name); see :meth:`set_coll_algorithm`.
        self._coll_algorithms: dict[str, str] = {}
        if env.ft is not None:
            env.ft.register_comm(self)

    #: True on intercommunicators (MPI_Comm_test_inter).
    is_inter = False

    @property
    def size(self) -> int:
        return self.group.size

    @property
    def collective_context(self) -> int:
        """Hidden context for collective traffic (the MPICH trick)."""
        return self.context_id + COLLECTIVE_CONTEXT_OFFSET

    # -- rank translation hooks (intercommunicators override these) ---------

    def _dest_world(self, rank: int) -> int:
        """World rank a send to ``rank`` targets."""
        return self.group.world_rank(rank)

    def _source_world(self, rank: int) -> int:
        """World rank a receive from ``rank`` matches."""
        return self.group.world_rank(rank)

    def _rank_of_world(self, world_rank: int) -> int:
        """Communicator-relative rank of a sender's world rank."""
        return self.group.rank_of(world_rank)

    @property
    def _peer_size(self) -> int:
        """Valid range bound for dest/source arguments."""
        return self.size

    def _check_live(self) -> None:
        if self.freed:
            raise MPICommError("operation on a freed communicator")
        ft = self.env.ft
        if ft is not None and ft.is_revoked(self):
            from repro.errors import MPIRevokedError
            raise MPIRevokedError(
                f"operation on revoked communicator (context "
                f"{self.context_id})")

    # =====================================================================
    # fault tolerance (ULFM: revoke / shrink / agree)
    # =====================================================================

    def _ft(self):
        ft = self.env.ft
        if ft is None:
            raise MPICommError(
                "fault-tolerance API requires a cluster with the failure "
                "model enabled (ClusterConfig.ft or a plan with deaths)")
        return ft

    def revoke(self) -> None:
        """MPIX_Comm_revoke: poison this communicator on every rank.

        Local and non-blocking; the revocation floods the group
        reliably.  Subsequent operations on this communicator raise
        :class:`~repro.errors.MPIRevokedError` everywhere.
        """
        if self.freed:
            raise MPICommError("operation on a freed communicator")
        self._ft().revoke(self)

    def shrink(self) -> Generator:
        """MPIX_Comm_shrink: evaluates to a new communicator over the
        surviving members (dense ranks, old order preserved).  Works on
        a revoked communicator — that is its purpose."""
        if self.freed:
            raise MPICommError("operation on a freed communicator")
        shrunk = yield from self._ft().shrink(self)
        return shrunk

    def agree(self, value: int = 1) -> Generator:
        """MPIX_Comm_agree: evaluates to the bitwise AND of every
        survivor's ``value`` (fault-tolerant agreement)."""
        if self.freed:
            raise MPICommError("operation on a freed communicator")
        result = yield from self._ft().agree(self, value)
        return result

    def _run_coll(self, gen: Generator) -> Generator:
        """FT wrapper for user collectives: pre-flight check, and flood
        the broken collective context when a failure surfaces mid-flight
        so the whole group unblocks with the same error.  With FT off
        this is a plain delegation."""
        ft = self.env.ft
        if ft is None:
            result = yield from gen
            return result
        result = yield from ft.run_collective(self, gen)
        return result

    # =====================================================================
    # point-to-point, object flavour (lowercase)
    # =====================================================================

    def send(self, obj: Any, dest: int, tag: int = 0,
             size: int | None = None) -> Generator:
        """Blocking standard-mode send.

        ``size`` overrides the inferred wire size (benchmarks use this to
        decouple payload objects from modelled bytes).  A declared size
        of 0 sends an empty message: the receiver gets ``None``, exactly
        as a real 0-byte MPI message carries no data.
        """
        self._check_live()
        yield from _p2p.send_impl(self, obj, dest, tag, size, self.context_id)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             size: int | None = None) -> Generator:
        """Blocking receive; evaluates to ``(data, Status)``.

        ``size`` is the receive capacity in bytes: a longer incoming
        message raises :class:`~repro.errors.MPITruncationError`.
        """
        self._check_live()
        request = _p2p.irecv_impl(self, source, tag, size, self.context_id,
                                  pooled=True)
        result = yield from _p2p.recv_wait(self, request)
        return result

    def ssend(self, obj: Any, dest: int, tag: int = 0,
              size: int | None = None) -> Generator:
        """Synchronous send: completes only once the receive has started
        (forces the rendezvous protocol regardless of size)."""
        self._check_live()
        yield from _p2p.send_impl(self, obj, dest, tag, size, self.context_id,
                                  synchronous=True)

    def bsend(self, obj: Any, dest: int, tag: int = 0,
              size: int | None = None) -> Generator:
        """Buffered send: copies into the attached buffer and returns
        immediately (MPI_Bsend).  Requires :meth:`MPIEnv.attach_buffer`;
        raises when the buffer cannot hold the message.
        """
        self._check_live()
        from repro.mpi.constants import infer_size
        nbytes = infer_size(obj) if size is None else int(size)
        self.env._bsend_reserve(nbytes)
        # The defining cost of bsend: an extra local copy.
        yield charge(self.env.progress.memory.copy_cost(nbytes))
        request = _p2p.isend_impl(self, obj, dest, tag, size, self.context_id)

        def reclaim():
            yield from request.wait()
            self.env._bsend_release(nbytes)

        self.env.process.runtime.spawn_temporary(reclaim(), name="bsend")

    def isend(self, obj: Any, dest: int, tag: int = 0,
              size: int | None = None) -> SendRequest:
        """Non-blocking send (runs in a temporary Marcel thread, §4.2.3)."""
        self._check_live()
        return _p2p.isend_impl(self, obj, dest, tag, size, self.context_id)

    def issend(self, obj: Any, dest: int, tag: int = 0,
               size: int | None = None) -> SendRequest:
        """Non-blocking synchronous send."""
        self._check_live()
        return _p2p.isend_impl(self, obj, dest, tag, size, self.context_id,
                               synchronous=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              size: int | None = None) -> RecvRequest:
        """Non-blocking receive."""
        self._check_live()
        return _p2p.irecv_impl(self, source, tag, size, self.context_id)

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
                 size: int | None = None,
                 recvsize: int | None = None) -> Generator:
        """Combined send+receive (deadlock-free); evaluates to
        ``(data, Status)``."""
        self._check_live()
        send_request = self.isend(sendobj, dest, sendtag, size=size)
        result = yield from self.recv(source, recvtag, size=recvsize)
        yield from send_request.wait()
        return result

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking probe; evaluates to a :class:`Status`."""
        self._check_live()
        status = yield from _p2p.probe_impl(self, source, tag, self.context_id)
        return status

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> tuple[bool, Status | None]:
        """Non-blocking probe."""
        self._check_live()
        return _p2p.iprobe_impl(self, source, tag, self.context_id)

    # =====================================================================
    # point-to-point, buffer flavour (uppercase, numpy + datatypes)
    # =====================================================================

    def _resolve_buffer(self, buf) -> tuple[np.ndarray, int, Datatype]:
        """Normalize ``array`` / ``(array, datatype)`` / ``(array, count,
        datatype)`` buffer specifications (mpi4py style)."""
        if isinstance(buf, (tuple, list)):
            if len(buf) == 2:
                array, datatype = buf
                count = None
            elif len(buf) == 3:
                array, count, datatype = buf
            else:
                raise MPIDatatypeError(
                    "buffer spec must be array, (array, type) or "
                    "(array, count, type)"
                )
        else:
            array, count, datatype = buf, None, None
        array = np.asarray(array)
        if datatype is None:
            datatype = _dtype_to_datatype(array.dtype)
        if count is None:
            if datatype.extent == 0:
                count = 0
            else:
                count = (array.size * array.itemsize) // max(datatype.extent, 1)
        return array, int(count), datatype

    def Send(self, buf, dest: int, tag: int = 0) -> Generator:
        """Send a numpy buffer described by an MPI datatype."""
        self._check_live()
        array, count, datatype = self._resolve_buffer(buf)
        if datatype.is_contiguous:
            packed = array.reshape(-1)[:count * _elems(datatype)]
        else:
            # Gathering a non-contiguous layout costs a real copy.
            yield from self._charge_pack(count * datatype.size)
            packed = datatype.pack(array, count)
        yield from self.send(packed, dest, tag, size=count * datatype.size)

    def Recv(self, buf, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator:
        """Receive into a numpy buffer; evaluates to a :class:`Status`."""
        self._check_live()
        array, count, datatype = self._resolve_buffer(buf)
        data, status = yield from self.recv(source, tag,
                                            size=count * datatype.size)
        yield from self._fill_buffer(array, count, datatype, data)
        return status

    def Isend(self, buf, dest: int, tag: int = 0) -> SendRequest:
        """Non-blocking buffer send (mpi4py's MPI_Isend shape).

        The buffer is packed at call time, so the caller may reuse it
        immediately; a non-contiguous datatype's gather copy is charged
        by the transfer's temporary thread, not the caller.
        """
        self._check_live()
        array, count, datatype = self._resolve_buffer(buf)
        pre_charge = 0
        if datatype.is_contiguous:
            packed = array.reshape(-1)[:count * _elems(datatype)]
        else:
            pre_charge = self.env.progress.memory.copy_cost(
                count * datatype.size)
            packed = datatype.pack(array, count)
        return _p2p.isend_impl(self, packed, dest, tag,
                               count * datatype.size, self.context_id,
                               pre_charge=pre_charge)

    def Irecv(self, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> "_BufferRecvRequest":
        """Non-blocking buffer receive.

        Returns a request whose ``wait()`` scatters the payload into
        ``buf`` and evaluates to the :class:`Status`.
        """
        self._check_live()
        array, count, datatype = self._resolve_buffer(buf)
        inner = _p2p.irecv_impl(self, source, tag, count * datatype.size,
                                self.context_id)
        return _BufferRecvRequest(inner, self, array, count, datatype)

    def Sendrecv(self, sendbuf, dest: int, sendtag: int = 0,
                 recvbuf=None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG) -> Generator:
        """Combined buffer send+receive (deadlock-free); evaluates to the
        receive's :class:`Status`."""
        self._check_live()
        send_request = self.Isend(sendbuf, dest, sendtag)
        status = yield from self.Recv(recvbuf, source, recvtag)
        yield from send_request.wait()
        return status

    def _fill_buffer(self, array: np.ndarray, count: int,
                     datatype: Datatype, data: Any) -> Generator:
        """Scatter received ``data`` into ``array`` per ``datatype``."""
        incoming = np.asarray(data)
        if datatype.is_contiguous:
            flat = array.reshape(-1)
            flat[:incoming.size] = incoming
        else:
            yield from self._charge_pack(count * datatype.size)
            datatype.unpack(incoming, array, count)

    def _charge_pack(self, nbytes: int) -> Generator:
        yield charge(self.env.progress.memory.copy_cost(nbytes))

    # =====================================================================
    # collectives (object flavour; see repro.mpi.collectives)
    # =====================================================================

    def _coll_tag(self) -> int:
        """Fresh tag for one collective invocation (same sequence on all
        ranks — MPI requires identical collective call order)."""
        self._coll_seq += 1
        return self._coll_seq

    def set_coll_algorithm(self, operation: str, name: str) -> None:
        """Pin ``operation`` to registry algorithm ``name`` on this
        communicator (overridden by a per-call ``algorithm=``).

        Like any collective-selection change, apply it at the same point
        on every rank: algorithm choice shapes the traffic pattern, and
        MPI requires identical collective behaviour across the group.
        """
        self._check_live()
        _collreg.get(operation, name)  # validate before storing
        self._coll_algorithms[operation] = name

    def barrier(self, algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _collreg.resolve(self, "barrier", algorithm)(self))

    def bcast(self, obj: Any, root: int = 0,
              algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "bcast", algorithm)
        result = yield from self._run_coll(fn(self, obj, root))
        return result

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0,
               algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "reduce", algorithm)
        result = yield from self._run_coll(fn(self, obj, op, root))
        return result

    def allreduce(self, obj: Any, op: Op = SUM,
                  algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "allreduce", algorithm)
        result = yield from self._run_coll(fn(self, obj, op))
        return result

    def gather(self, obj: Any, root: int = 0,
               algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "gather", algorithm)
        result = yield from self._run_coll(fn(self, obj, root))
        return result

    def scatter(self, objs: Sequence[Any] | None, root: int = 0,
                algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "scatter", algorithm)
        result = yield from self._run_coll(fn(self, objs, root))
        return result

    def allgather(self, obj: Any, algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "allgather", algorithm)
        result = yield from self._run_coll(fn(self, obj))
        return result

    def alltoall(self, objs: Sequence[Any],
                 algorithm: str | None = None) -> Generator:
        fn = _collreg.resolve(self, "alltoall", algorithm)
        result = yield from self._run_coll(fn(self, objs))
        return result

    def reduce_scatter(self, objs: Sequence[Any], op: Op = SUM) -> Generator:
        result = yield from self._run_coll(_coll.reduce_scatter(self, objs, op))
        return result

    def alltoallv(self, objs: Sequence[Any]) -> Generator:
        result = yield from self._run_coll(_coll.alltoallv(self, objs))
        return result

    def scan(self, obj: Any, op: Op = SUM) -> Generator:
        result = yield from self._run_coll(_coll.scan(self, obj, op))
        return result

    def exscan(self, obj: Any, op: Op = SUM) -> Generator:
        result = yield from self._run_coll(_coll.exscan(self, obj, op))
        return result

    # Buffer-flavour collectives (numpy arrays, elementwise ops).

    def Bcast(self, array: np.ndarray, root: int = 0,
              algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Bcast(self, array, root, algorithm=algorithm))

    def Reduce(self, sendarr: np.ndarray, recvarr: np.ndarray | None,
               op: Op = SUM, root: int = 0,
               algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Reduce(self, sendarr, recvarr, op, root,
                         algorithm=algorithm))

    def Allreduce(self, sendarr: np.ndarray, recvarr: np.ndarray,
                  op: Op = SUM, algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Allreduce(self, sendarr, recvarr, op,
                            algorithm=algorithm))

    def Gather(self, sendarr: np.ndarray, recvarr: np.ndarray | None,
               root: int = 0, algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Gather(self, sendarr, recvarr, root,
                         algorithm=algorithm))

    def Scatter(self, sendarr: np.ndarray | None,
                recvarr: np.ndarray, root: int = 0,
                algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Scatter(self, sendarr, recvarr, root,
                          algorithm=algorithm))

    def Allgather(self, sendarr: np.ndarray, recvarr: np.ndarray,
                  algorithm: str | None = None) -> Generator:
        yield from self._run_coll(
            _coll.Allgather(self, sendarr, recvarr,
                            algorithm=algorithm))

    def Gatherv(self, sendarr: np.ndarray, recvspec: tuple | None,
                root: int = 0) -> Generator:
        yield from self._run_coll(_coll.Gatherv(self, sendarr, recvspec,
                                                 root))

    def Scatterv(self, sendspec: tuple | None, recvarr: np.ndarray,
                 root: int = 0) -> Generator:
        yield from self._run_coll(_coll.Scatterv(self, sendspec, recvarr,
                                                  root))

    def create_cart(self, dims, periods=None, reorder: bool = False) -> Generator:
        """Collective: attach a Cartesian topology (MPI_Cart_create)."""
        from repro.mpi.cartesian import create_cart
        cart = yield from create_cart(self, dims, periods, reorder)
        return cart

    # =====================================================================
    # communicator management
    # =====================================================================

    def dup(self) -> Generator:
        """Collective: duplicate this communicator with a fresh context.

        Communicator machinery (dup/split/create/split_type) always runs
        the flat default collectives directly: it must work identically
        whatever algorithm selection is active — the hierarchical and
        multi-lane families build their subcommunicators through here.
        """
        self._check_live()
        yield from _coll.barrier(self)
        return Communicator(self.env, self.group, self.env.allocate_context())

    def split(self, color: int, key: int | None = None) -> Generator:
        """Collective: partition by ``color``, order by ``key`` (MPI_Comm_split).

        Evaluates to the new communicator, or None for ``UNDEFINED`` color.
        """
        self._check_live()
        key = self.rank if key is None else key
        pairs = yield from _coll.allgather(self, (color, key, self.rank))
        context = self.env.allocate_context()
        if color == UNDEFINED:
            return None
        members = sorted(
            (k, r) for (c, k, r) in pairs if c == color
        )
        world_ranks = [self.group.world_rank(r) for _, r in members]
        return Communicator(self.env, Group(world_ranks), context)

    def split_type(self, split_type: int = COMM_TYPE_SHARED,
                   key: int | None = None) -> Generator:
        """Collective: split into node-local subcommunicators
        (MPI_Comm_split_type with MPI_COMM_TYPE_SHARED).

        Node membership comes from the cluster configuration's locality
        map (:attr:`MPIEnv.node_of_rank`), so with the default ``key``
        no rank exchange is needed beyond a barrier — membership and
        ordering (by communicator rank) are locally derivable on every
        rank.  ``UNDEFINED`` evaluates to None, like :meth:`split`.
        """
        self._check_live()
        if split_type == UNDEFINED:
            yield from _coll.barrier(self)
            self.env.allocate_context()
            return None
        if split_type != COMM_TYPE_SHARED:
            raise MPICommError(
                f"unsupported split_type {split_type!r}; only "
                "COMM_TYPE_SHARED (and UNDEFINED) exist")
        if key is not None:
            result = yield from self.split(self.env.node, key)
            return result
        yield from _coll.barrier(self)
        context = self.env.allocate_context()
        node_of = self.env.node_of_rank
        world_ranks = [self._dest_world(r) for r in range(self.size)
                       if node_of[self._dest_world(r)] == self.env.node]
        return Communicator(self.env, Group(world_ranks), context)

    def create(self, group: Group) -> Generator:
        """Collective over this comm: new communicator for ``group``."""
        self._check_live()
        yield from _coll.barrier(self)
        context = self.env.allocate_context()
        if self.env.rank not in group:
            return None
        return Communicator(self.env, group, context)

    def free(self) -> None:
        """Mark the communicator unusable (MPI_Comm_free)."""
        self.freed = True

    # -- one-sided communication (MPI-2 RMA) --------------------------------

    def win_create(self, size: int) -> Generator:
        """Collective: expose ``size`` bytes per rank as an RMA window
        (MPI_Win_create).  Evaluates to a :class:`~repro.mpi.win.Win`;
        access it between :meth:`~repro.mpi.win.Win.fence` calls.
        """
        self._check_live()
        from repro.mpi.win import Win
        win = yield from Win.create(self, size)
        return win

    # -- attribute caching (MPI_Comm_set_attr and friends) ----------------

    def set_attr(self, key: Any, value: Any) -> None:
        """Cache an attribute on this communicator."""
        self._check_live()
        self._attributes[key] = value

    def get_attr(self, key: Any, default: Any = None) -> Any:
        """Read a cached attribute (None/default if absent)."""
        return self._attributes.get(key, default)

    def delete_attr(self, key: Any) -> None:
        """Remove a cached attribute.  Missing keys are ignored."""
        self._attributes.pop(key, None)

    # -- persistent requests (MPI_Send_init / MPI_Recv_init) -----------------

    def send_init(self, obj: Any, dest: int, tag: int = 0,
                  size: int | None = None):
        """Create a persistent send request (start()/wait() repeatedly)."""
        self._check_live()
        from repro.mpi.persistent import PersistentSend
        return PersistentSend(self, obj, dest, tag, size)

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                  size: int | None = None):
        """Create a persistent receive request."""
        self._check_live()
        from repro.mpi.persistent import PersistentRecv
        return PersistentRecv(self, source, tag, size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Communicator ctx={self.context_id} rank={self.rank}/"
                f"{self.size}>")


class _BufferRecvRequest(Request):
    """Handle for an uppercase ``Irecv``: completion fills the buffer.

    ``wait()`` evaluates to the :class:`Status`; the payload lands in
    the user's array (scattered through the datatype when the layout is
    non-contiguous).  ``test()`` reports completion but, like mpi4py,
    yields its result only through ``wait()``.
    """

    def __init__(self, inner: RecvRequest, comm: Communicator,
                 array: np.ndarray, count: int, datatype: Datatype):
        super().__init__(inner._flag)
        self.inner = inner
        self.comm = comm
        self._array = array
        self._count = count
        self._datatype = datatype

    def wait(self) -> Generator:
        data, status = yield from _p2p.recv_wait(self.comm, self.inner)
        yield from self.comm._fill_buffer(self._array, self._count,
                                          self._datatype, data)
        return status

    def cancel(self) -> bool:
        """Withdraw the underlying receive (MPI_Cancel)."""
        return self.inner.cancel()


def _elems(datatype: Datatype) -> int:
    return int(datatype.byte_offsets.size)


def _dtype_to_datatype(dtype: np.dtype) -> Datatype:
    from repro.mpi import datatypes as dt
    table = {
        np.dtype("uint8"): dt.BYTE,
        np.dtype("int8"): dt.CHAR,
        np.dtype("int16"): dt.SHORT,
        np.dtype("int32"): dt.INT,
        np.dtype("int64"): dt.LONG,
        np.dtype("float32"): dt.FLOAT,
        np.dtype("float64"): dt.DOUBLE,
        np.dtype("complex64"): dt.COMPLEX,
        np.dtype("complex128"): dt.DOUBLE_COMPLEX,
    }
    try:
        return table[dtype]
    except KeyError:
        raise MPIDatatypeError(f"no MPI datatype for numpy dtype {dtype}") from None
