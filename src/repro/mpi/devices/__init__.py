"""MPICH devices.

The paper's three-device structure (§4.1, Figure 3):

- :mod:`~repro.mpi.devices.ch_self` — intra-process communication;
- :mod:`~repro.mpi.devices.smp_plug` — intra-node (shared memory);
- :mod:`~repro.mpi.devices.ch_mad` — **all** inter-node communication
  through Madeleine channels (the paper's contribution);
- :mod:`~repro.mpi.devices.ch_p4` — the classic MPICH TCP device,
  implemented as the Figure-6 baseline.
"""

from repro.mpi.devices.ch_self import ChSelfDevice
from repro.mpi.devices.smp_plug import SmpPlugDevice
from repro.mpi.devices.ch_p4 import ChP4Device
from repro.mpi.devices.ch_mad import ChMadDevice

__all__ = ["ChMadDevice", "ChP4Device", "ChSelfDevice", "SmpPlugDevice"]
