"""ch_self — the loop-back device (paper §2.3, §4.1).

Self-messages never leave the process: one memcpy moves the payload from
the send buffer to the receive buffer (or to the unexpected buffer, plus
a second copy on the eventual match).  Everything is "eager" — the
threshold is unbounded, there is nothing to rendezvous with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.mpi.adi.device import Device, ProgressEngine, clone_payload
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.rhandle import SendHandle
from repro.sim.coroutines import charge, wait
from repro.units import us

#: Fixed software cost of the loop-back path (queue ops, request setup).
SELF_OVERHEAD = us(0.4)


class ChSelfDevice(Device):
    """Intra-process device."""

    name = "ch_self"

    def __init__(self, progress: ProgressEngine):
        self.progress = progress
        self.eager_threshold = 2**62  # everything is eager (by size)
        self._pending_sends: dict[int, SendHandle] = {}

    def send_eager(self, dest_world: int, envelope: Envelope,
                   data: Any) -> Generator:
        yield charge(SELF_OVERHEAD)
        # The single self-copy; deliver_eager is told not to charge again.
        yield charge(self.progress.memory.copy_cost(envelope.size))
        yield from self.progress.deliver_eager(envelope, clone_payload(data),
                                               charge_copy=False)

    # Rendezvous is never selected by size (the threshold is unbounded),
    # but MPI_Ssend forces it: a synchronous self-send must block until
    # the matching receive is posted.
    def send_rndv(self, dest_world: int, shandle: SendHandle) -> Generator:
        yield charge(SELF_OVERHEAD)
        token = ChSelfRndvToken(self, self_rank=dest_world,
                                send_id=shandle.send_id)
        self._pending_sends[shandle.send_id] = shandle
        yield from self.progress.deliver_rndv_request(shandle.envelope,
                                                      token, self)
        shandle.notify_request_sent()
        sync_id = yield wait(shandle.ack_flag)
        yield charge(self.progress.memory.copy_cost(shandle.envelope.size))
        yield from self.progress.deliver_rndv_data(
            sync_id, shandle.envelope, clone_payload(shandle.data)
        )
        shandle.flag.set()

    def send_rndv_ack(self, token: "ChSelfRndvToken", sync_id: int) -> Generator:
        shandle = self._pending_sends.pop(token.send_id)
        shandle.ack_flag.set(sync_id)
        return
        yield  # pragma: no cover - generator marker


@dataclass(frozen=True)
class ChSelfRndvToken:
    """Identity of a pending self rendezvous."""

    device: ChSelfDevice
    self_rank: int
    send_id: int
