"""ch_mad polling-thread machinery (paper §4.2.3).

One Marcel thread polls each Madeleine channel.  The handler below runs
*inside* the polling thread; it unpacks the EXPRESS header, dispatches on
the packet type, and — critically — never performs a send itself: when a
rendezvous request matches an already-posted receive, the progress engine
spawns a temporary thread for the acknowledgement, and when a forwarded
packet must be relayed onwards, a temporary thread performs the relay
("a polling thread must not proceed by itself to any send operation
because deadlock situations might appear").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import MPIError
from repro.madeleine.channel import ChannelPort
from repro.madeleine.reliable import DeadChannelNotice
from repro.madeleine.constants import RECEIVE_CHEAPER, RECEIVE_EXPRESS, SEND_CHEAPER
from repro.marcel.polling import PollingThread
from repro.mpi.devices.ch_mad.forwarding import ForwardWrapper, relay
from repro.mpi.devices.ch_mad.packets import ChMadHeader, MadPktType
from repro.networks.fabric import Delivery
from repro.sim.coroutines import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.devices.ch_mad.device import ChMadDevice


def dispatch_local(device: "ChMadDevice", header: ChMadHeader,
                   body: Any) -> Generator:
    """Process one ch_mad packet addressed to this process.

    Shared by the direct receive path and the final hop of a forwarded
    packet.  Runs in the polling thread; must not send (it spawns
    temporary threads where a send is required).
    """
    checker = device.progress.runtime.engine.checker
    if checker.enabled:
        # Final-destination counterpart of the origin's on_chmad_send
        # hook — forwarded packets land here exactly once.
        checker.on_chmad_recv(device.world_rank, header)
    kind = header.pkt_type
    if kind is MadPktType.MAD_SHORT_PKT:
        yield from device.progress.deliver_eager(header.envelope, body)
    elif kind is MadPktType.MAD_REQUEST_PKT:
        from repro.mpi.devices.ch_mad.device import ChMadRndvToken
        token = ChMadRndvToken(device, header.envelope.source, header.send_id)
        yield from device.progress.deliver_rndv_request(header.envelope,
                                                        token, device)
    elif kind is MadPktType.MAD_RDMA_REQ_PKT:
        # Same matching flow as MAD_REQUEST_PKT; the token records that
        # the body will arrive by RDMA write, so the ack path registers
        # the receive buffer and answers MAD_RDMA_ACK_PKT.
        from repro.mpi.devices.ch_mad.device import ChMadRndvToken
        token = ChMadRndvToken(device, header.envelope.source, header.send_id,
                               rdma=True, envelope=header.envelope)
        yield from device.progress.deliver_rndv_request(header.envelope,
                                                        token, device)
    elif kind is MadPktType.MAD_SENDOK_PKT or \
            kind is MadPktType.MAD_RDMA_ACK_PKT:
        device._complete_ack(header.send_id, header.sync_id)
    elif kind is MadPktType.MAD_RNDV_PKT:
        yield from device.progress.deliver_rndv_data(header.sync_id,
                                                     header.envelope, body)
    elif kind is MadPktType.MAD_TERM_PKT:
        device.term_received += 1
    elif kind is MadPktType.MAD_HB_PKT:
        # Liveness was already credited where every delivery is: the
        # process demux (piggybacked detection).  Nothing else to do.
        device.heartbeats_received += 1
    else:  # pragma: no cover - defensive
        raise MPIError(f"unknown ch_mad packet type {kind!r}")


class ChannelPoller:
    """The persistent polling thread of one Madeleine channel."""

    def __init__(self, device: "ChMadDevice", port: ChannelPort):
        self.device = device
        self.port = port
        from repro.networks import base_protocol
        self.tuning = device.tuning[base_protocol(port.channel.protocol)]
        self.thread = PollingThread(
            device.progress.runtime, port.poll_source(), self.handle
        )

    def stop(self) -> None:
        self.thread.stop()

    # -- the handler (runs in the polling thread) -----------------------------

    def handle(self, delivery: Delivery) -> Generator:
        device = self.device
        if isinstance(delivery, DeadChannelNotice):
            # The channel died; keep polling — in-flight traffic of this
            # channel is tunnelled to this very port by the transport.
            return
        checker = device.progress.runtime.engine.checker
        if checker.enabled:
            checker.on_chmad_wire(device.world_rank,
                                  self.port.channel.protocol,
                                  delivery.payload)
        incoming = yield from self.port.open_delivery(delivery)
        header = yield from incoming.unpack(
            incoming.next_block_size(), SEND_CHEAPER, RECEIVE_EXPRESS
        )
        yield charge(self.tuning.recv_handling)
        ins = device.progress.runtime.engine.instruments
        if ins.enabled and isinstance(header, ChMadHeader):
            ins.count("chmad.packets", 1, pkt=header.pkt_type.name,
                      protocol=self.port.channel.protocol,
                      rank=device.world_rank, dir="recv")
        if isinstance(header, ForwardWrapper):
            body = None
            if header.body_size > 0:
                body = yield from incoming.unpack(
                    header.body_size, SEND_CHEAPER, RECEIVE_CHEAPER
                )
            yield from incoming.end_unpacking()
            wrapper = ForwardWrapper(header.final_dest, header.origin,
                                     header.header, body, header.body_size,
                                     header.hops)
            if wrapper.final_dest == device.world_rank:
                yield from dispatch_local(device, wrapper.header, wrapper.body)
            else:
                # Relay from a temporary thread (never send while polling).
                device.packets_relayed += 1
                device.progress.runtime.spawn_temporary(
                    relay(device, wrapper), name="fwd-relay"
                )
            return
        body = None
        if incoming.remaining_blocks:
            # next_block_size() also absorbs the padded-short ablation,
            # where the body block is larger than the actual payload.
            body = yield from incoming.unpack(
                incoming.next_block_size(), SEND_CHEAPER, RECEIVE_CHEAPER
            )
        yield from incoming.end_unpacking()
        yield from dispatch_local(device, header, body)


class RdmaCompletionPoller:
    """Polls one IB endpoint's RDMA completion queue (CQ).

    An inbound rendezvous body written by a remote HCA completes here:
    the op carries its own synthetic MAD_RDMA_DATA_PKT header (the
    piggybacked completion record), so the handler can feed the ordinary
    ``deliver_rndv_data`` path — same matching, same checker shadowing —
    without the body ever having crossed the channel packet machinery.
    Like every poller, it never sends.
    """

    def __init__(self, device: "ChMadDevice", port: ChannelPort):
        self.device = device
        self.port = port
        from repro.networks import base_protocol
        from repro.marcel.polling import PollSource
        endpoint = port.endpoint
        self.tuning = device.tuning[base_protocol(port.channel.protocol)]
        source = PollSource(
            name=f"{port.channel.name}.cq@{port.rank}",
            mode=endpoint.params.poll_mode,
            mailbox=endpoint.rdma_mailbox,
            poll_cost=endpoint.params.poll_cost,
            period=endpoint.params.poll_period,
            idle_period=endpoint.params.poll_idle_period,
        )
        self.thread = PollingThread(device.progress.runtime, source,
                                    self.handle)

    def stop(self) -> None:
        self.thread.stop()

    def handle(self, op: Any) -> Generator:
        device = self.device
        checker = device.progress.runtime.engine.checker
        if checker.enabled:
            checker.on_chmad_recv(device.world_rank, op.header)
        ins = device.progress.runtime.engine.instruments
        if ins.enabled:
            ins.count("chmad.packets", 1, pkt=op.header.pkt_type.name,
                      protocol=self.port.channel.protocol,
                      rank=device.world_rank, dir="recv")
        yield charge(self.tuning.recv_handling)
        yield from device.progress.deliver_rndv_data(op.sync_id,
                                                     op.header.envelope,
                                                     op.data)
