"""Eager/rendezvous switch points and the election rule (paper §4.2.2).

"Experiments pointed out that the switch point values for
TCP/Fast-Ethernet, SISCI/SCI and BIP/Myrinet were respectively of 64 KB,
8 KB and 7 KB" — but the ADI's MPID_Device reserves a *single* integer
for the threshold, so ch_mad must elect one value:

- if SCI is among the supported networks, its 8 KB value wins ("the
  network with the most influent switch point value is SCI");
- otherwise the switch point of the most performant network is elected
  (e.g. Myrinet's 7 KB beats TCP's 64 KB in a Myrinet+TCP setup).

This module also carries the per-driver handling-cost calibration of the
ch_mad glue (the paper's "messages handling" overhead: ~7 us TCP,
~8.5 us SCI, ~6.5 us BIP, §5.2-5.4), split across send and receive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.units import us

#: Experimental switch points per protocol (bytes).  IB follows Liu et
#: al.: eager copies through pre-registered bounce buffers up to 16 KB,
#: past which the rendezvous(-over-RDMA) path wins.
SWITCH_POINTS: dict[str, int] = {
    "tcp": 64 * 1024,
    "sisci": 8 * 1024,
    "bip": 7 * 1024,
    "ib": 16 * 1024,
}

#: Networks ordered by performance (bandwidth), best first — used when
#: SCI is absent.
PERFORMANCE_RANK: tuple[str, ...] = ("ib", "bip", "sisci", "tcp")


def elect_threshold(protocols: Iterable[str],
                    switch_points: dict[str, int] | None = None) -> int:
    """Elect the single device threshold from the supported protocols.

    Rail-suffixed names (``"bip#1"``) count as their base protocol.
    """
    from repro.networks import base_protocol
    points = switch_points or SWITCH_POINTS
    protocols = {base_protocol(p) for p in protocols}
    if not protocols:
        raise ConfigurationError("ch_mad needs at least one network")
    unknown = protocols - points.keys()
    if unknown:
        raise ConfigurationError(
            f"no switch point known for protocols {sorted(unknown)}"
        )
    if "sisci" in protocols:
        return points["sisci"]
    for protocol in PERFORMANCE_RANK:
        if protocol in protocols:
            return points[protocol]
    # All protocols are known but outside the performance ranking table.
    return min(points[p] for p in protocols)  # pragma: no cover - defensive


@dataclass(frozen=True)
class ChMadTuning:
    """Per-driver ch_mad glue costs (request setup, queue ops, wakeups).

    ``rndv_body_ns_per_byte`` is extra sender CPU per body byte on the
    rendezvous path — nonzero only for BIP, whose driver must feed the
    LANai credit machinery chunk by chunk for very long messages (the
    reason ch_mad tops out at ~115 MB/s on Myrinet while raw Madeleine
    reaches ~122 MB/s, Table 2 vs Table 1).
    """

    send_handling: int   # ns charged on the sending thread per message
    recv_handling: int   # ns charged by the polling thread per message
    rndv_body_ns_per_byte: float = 0.0


#: Calibrated so the full MPI ping-pong lands on the paper's Table 2.
CH_MAD_TUNING: dict[str, ChMadTuning] = {
    # TCP handling is mostly the polling-loop/select overhead, which the
    # simulation charges through the periodic poller itself; only small
    # queue costs remain here.
    "tcp": ChMadTuning(send_handling=us(0.3), recv_handling=us(0.7)),
    "sisci": ChMadTuning(send_handling=us(2.8), recv_handling=us(4.0)),
    "bip": ChMadTuning(send_handling=us(2.0), recv_handling=us(3.0),
                       rndv_body_ns_per_byte=0.55),
    # IB glue is modern verbs-style: a WQE post and a CQ poll.
    "ib": ChMadTuning(send_handling=us(1.0), recv_handling=us(1.5)),
}

#: Channel-selection preference when several networks reach a peer:
#: the fastest common network wins.
CHANNEL_PREFERENCE: tuple[str, ...] = ("ib", "bip", "sisci", "tcp")
