"""ch_mad packet structures (paper Figure 5).

Every ch_mad message is one Madeleine message of one or two blocks:

- the **header** (always present, sent ``receive_EXPRESS``): an integer
  type field followed by a buffer whose content depends on the type;
- the **body** (only for user/MPI data: MAD_SHORT_PKT and MAD_RNDV_PKT,
  sent ``receive_CHEAPER``): the user payload itself.

"The number of packets has to be kept low to ensure a high level of
performance, since each pack operation induces a significant overhead"
(§4.2.1) — which is exactly why control messages have no body and why a
zero-byte MPI message skips the body block entirely (the source of the
Table 2 gap between 0-byte and 4-byte latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.mpi.adi.packets import (
    Envelope,
    PKT_HEAD_BYTES,
    PKT_OK_TO_SEND_BYTES,
    PKT_REQUEST_SEND_BYTES,
    SYNC_ADDRESS_BYTES,
    TYPE_FIELD_BYTES,
)


class MadPktType(enum.IntEnum):
    """The header type field."""

    MAD_SHORT_PKT = 1     # eager data message
    MAD_RNDV_PKT = 2      # rendezvous data message
    MAD_REQUEST_PKT = 3   # rendezvous request
    MAD_SENDOK_PKT = 4    # rendezvous acknowledgement
    MAD_TERM_PKT = 5      # program termination
    MAD_FWD_PKT = 6       # gateway-forwarded packet (extension, §6)
    MAD_HB_PKT = 7        # liveness heartbeat (fault tolerance extension)
    # Rendezvous-over-RDMA (IB extension, after Liu et al.): the request
    # and ack are ordinary channel control packets; the body travels as
    # one RDMA write that never enters the packet state machine.
    MAD_RDMA_REQ_PKT = 8  # rendezvous request, RDMA body to follow
    MAD_RDMA_ACK_PKT = 9  # receive buffer registered, RDMA write may go
    MAD_RDMA_DATA_PKT = 10  # synthetic: tags the RDMA-written body for
    #                         tracing/checking; never on the channel wire


#: Extra routing fields carried by a forwarded packet's header
#: (final destination, origin, hop count).
FWD_ROUTING_BYTES = 12


#: The header block has a fixed wire size: the type field plus the
#: largest of the per-type buffers, so the receiving side can always
#: unpack it before knowing the type.
CH_MAD_HEADER_BYTES = TYPE_FIELD_BYTES + max(
    PKT_HEAD_BYTES,                                # MAD_SHORT_PKT
    SYNC_ADDRESS_BYTES + PKT_HEAD_BYTES,           # MAD_RNDV_PKT
    PKT_REQUEST_SEND_BYTES,                        # MAD_REQUEST_PKT
    PKT_OK_TO_SEND_BYTES,                          # MAD_SENDOK_PKT
    0,                                             # MAD_TERM_PKT (empty)
    # MAD_RDMA_REQ_PKT reuses the request layout, MAD_RDMA_ACK_PKT the
    # sendok layout — neither grows the header.
)


@dataclass(frozen=True)
class ChMadHeader:
    """The EXPRESS header block of every ch_mad message.

    Field usage by type (Figure 5):

    ========================  ==========================================
    MAD_SHORT_PKT             ``envelope`` (the split MPID_PKT_SHORT_T
                              head; the body carries the user buffer)
    MAD_RNDV_PKT              ``sync_id`` + ``envelope``
    MAD_REQUEST_PKT           ``envelope`` + ``send_id``
    MAD_SENDOK_PKT            ``send_id`` + ``sync_id``
    MAD_TERM_PKT              (empty)
    ========================  ==========================================
    """

    pkt_type: MadPktType
    envelope: Envelope | None = None
    send_id: int = 0
    sync_id: int = 0
