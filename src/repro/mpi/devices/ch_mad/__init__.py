"""ch_mad — the paper's contribution (§4).

A *single* MPICH device that handles every inter-node message by mapping
each destination onto a Madeleine channel (one channel per network
protocol).  Network heterogeneity is hidden below the device: the ADI
sees one device, Madeleine speaks TCP, SISCI and BIP simultaneously.

Components:

- :mod:`~repro.mpi.devices.ch_mad.packets` — the MAD_*_PKT wire
  structures of Figure 5 (header sent EXPRESS, body CHEAPER);
- :mod:`~repro.mpi.devices.ch_mad.switchpoints` — per-network
  eager/rendezvous switch points and the election rule of §4.2.2;
- :mod:`~repro.mpi.devices.ch_mad.polling` — the per-channel polling
  thread handler (§4.2.3), including the spawn-a-thread-to-send rule;
- :mod:`~repro.mpi.devices.ch_mad.device` — the device proper: channel
  selection, eager mode with the header/body split, and the three-step
  rendezvous built on MPID_RNDV_T sync structures.
"""

from repro.mpi.devices.ch_mad.device import ChMadDevice
from repro.mpi.devices.ch_mad.packets import ChMadHeader, MadPktType
from repro.mpi.devices.ch_mad.switchpoints import (
    SWITCH_POINTS,
    elect_threshold,
)

__all__ = [
    "ChMadDevice",
    "ChMadHeader",
    "MadPktType",
    "SWITCH_POINTS",
    "elect_threshold",
]
