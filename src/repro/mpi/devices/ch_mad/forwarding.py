"""Gateway forwarding across heterogeneous networks (the paper's §6
future work, implemented).

"Currently, our prototype is not able to forward packets across
heterogeneous networks ... We are working on a low-level
high-performance forwarding mechanism within Madeleine that will allow
messages to cross gateway nodes while keeping the associated overhead as
low as possible."

Design: every ch_mad message may carry a :class:`ForwardWrapper` naming
its *final* destination.  When a device has no direct channel to the
destination, it wraps the packet and sends it to the next hop from the
routing table (computed by :func:`repro.cluster.topology.compute_gateway_routes`).
A gateway's polling thread recognizes wrappers addressed elsewhere and
spawns a temporary thread (send-from-polling-thread is still forbidden)
that relays the message over the gateway's own best channel — a
store-and-forward hop costing one receive path plus one send path on the
gateway, with no extra copies of the body beyond the receive buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.mpi.devices.ch_mad.packets import ChMadHeader

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.devices.ch_mad.device import ChMadDevice


@dataclass(frozen=True)
class ForwardWrapper:
    """A ch_mad packet in transit through gateways.

    ``header``/``body`` are the original packet pieces; ``final_dest``
    is the world rank that should process them; ``hops`` counts relays
    so routing loops die loudly instead of silently.
    """

    final_dest: int
    origin: int
    header: ChMadHeader
    body: Any
    body_size: int
    hops: int = 0

    MAX_HOPS = 8

    def next_hop(self) -> "ForwardWrapper":
        if self.hops + 1 > self.MAX_HOPS:
            from repro.errors import RouteError
            raise RouteError(
                f"forwarding loop: packet for rank {self.final_dest} "
                f"exceeded {self.MAX_HOPS} hops"
            )
        return ForwardWrapper(self.final_dest, self.origin, self.header,
                              self.body, self.body_size, self.hops + 1)


def relay(device: "ChMadDevice", wrapper: ForwardWrapper):
    """Generator run in a gateway temporary thread: one store-and-forward
    hop towards the wrapper's final destination."""
    yield from device.send_wrapped(wrapper.final_dest, wrapper.next_hop())
