"""The ch_mad device proper (paper §4).

Responsibilities:

- map each destination process onto a Madeleine channel (the fastest
  network both ends have a board for — channel selection is the
  multi-protocol heart of the device);
- eager mode: one Madeleine message of header (EXPRESS) + body
  (CHEAPER) — the §4.2.2 split of the ADI short packet that avoids
  shipping a padded MPID_PKT_MAX_DATA_SIZE buffer;
- rendezvous mode: MAD_REQUEST_PKT → MAD_SENDOK_PKT (carrying the
  receiver's MPID_RNDV_T sync address) → MAD_RNDV_PKT zero-copy data;
- one polling thread per channel (§4.2.3);
- the single elected eager/rendezvous threshold (§4.2.2), with an
  opt-in per-network mode used by the ablation benchmarks;
- EXTENSION (paper §6 future work): gateway forwarding for destinations
  with no shared network, via :mod:`repro.mpi.devices.ch_mad.forwarding`.
"""

from __future__ import annotations

from typing import Any, Generator

from dataclasses import dataclass

from repro.errors import (
    ChannelDeadError,
    ConfigurationError,
    FailoverExhaustedError,
    MPIError,
    MPIProcFailedError,
    RouteError,
)
from repro.networks import base_protocol
from repro.madeleine.channel import ChannelPort
from repro.madeleine.constants import RECEIVE_CHEAPER, RECEIVE_EXPRESS, SEND_CHEAPER
from repro.mpi.adi.device import Device, ProgressEngine
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.rhandle import SendHandle
from repro.mpi.devices.ch_mad.forwarding import ForwardWrapper
from repro.mpi.devices.ch_mad.packets import (
    CH_MAD_HEADER_BYTES,
    FWD_ROUTING_BYTES,
    ChMadHeader,
    MadPktType,
)
from repro.mpi.devices.ch_mad.polling import ChannelPoller, RdmaCompletionPoller
from repro.mpi.devices.ch_mad.switchpoints import (
    CH_MAD_TUNING,
    CHANNEL_PREFERENCE,
    SWITCH_POINTS,
    ChMadTuning,
    elect_threshold,
)
from repro.sim.coroutines import charge, sleep, wait


@dataclass(frozen=True)
class ChMadRndvToken:
    """Identity of a pending rendezvous request (who to acknowledge).

    ``rdma`` marks a rendezvous whose body will arrive as one RDMA write
    instead of a MAD_RNDV_PKT: the ack path must pre-register the receive
    buffer (``envelope`` carries its size) and answer with
    MAD_RDMA_ACK_PKT so the sender knows the write may go.
    """

    device: "ChMadDevice"
    requester_world: int
    send_id: int
    rdma: bool = False
    envelope: Envelope | None = None


class ChMadDevice(Device):
    """All inter-node communication, over Madeleine channels."""

    name = "ch_mad"

    def __init__(self, progress: ProgressEngine, world_rank: int,
                 ports: dict[str, ChannelPort],
                 tuning: dict[str, ChMadTuning] | None = None,
                 per_network_thresholds: bool = False,
                 switch_points: dict[str, int] | None = None,
                 preference: tuple[str, ...] | None = None,
                 forward_routes: dict[int, int] | None = None,
                 padded_short_packets: bool = False,
                 rdma_rendezvous: bool = True):
        if not ports:
            raise ConfigurationError("ch_mad needs at least one channel port")
        self.progress = progress
        self.world_rank = world_rank
        self.ports = dict(ports)
        self.tuning = dict(tuning or CH_MAD_TUNING)
        self.switch_points = dict(switch_points or SWITCH_POINTS)
        #: The ADI's single threshold field: the elected value (§4.2.2).
        self.eager_threshold = elect_threshold(ports.keys(),
                                               self.switch_points)
        #: Ablation switch: pretend the ADI could store one threshold per
        #: network (what the paper wishes for) — see the ablation bench.
        self.per_network_thresholds = per_network_thresholds
        #: Ablation switch: ship eager bodies inside a fixed
        #: MPID_PKT_MAX_DATA_SIZE buffer instead of the §4.2.2 split —
        #: reproduces the padding waste the paper's design avoids.
        self.padded_short_packets = padded_short_packets
        #: Channel-selection order (fastest-first by default); overridable
        #: to steer traffic onto a specific network (Figure 9 experiment).
        self.preference = tuple(preference or CHANNEL_PREFERENCE)
        #: Next-hop table for destinations with no shared network
        #: (forwarding extension; empty = paper's §6 limitation applies).
        self.forward_routes = dict(forward_routes or {})
        #: Rendezvous-over-RDMA on IB channels (off = packetized ablation:
        #: large messages take the MAD_RNDV_PKT path even on IB).
        self.rdma_rendezvous = rdma_rendezvous
        self._pending_sends: dict[int, SendHandle] = {}
        self._pollers: list = []
        self.term_received = 0
        self.packets_relayed = 0
        self.heartbeats_received = 0
        #: Session failure detector; set by :meth:`start_heartbeats` when
        #: the run is fault-tolerant.  When present, stale rendezvous
        #: acks (whose pending send the FT layer already failed) are
        #: tolerated instead of fatal.
        self.detector = None
        #: context id -> lane index, installed by the multi-lane
        #: collectives (:mod:`repro.mpi.coll.multilane`).  Traffic on an
        #: assigned context is steered to rail ``lane % live rails``
        #: instead of the preference-order winner.
        self.context_lanes: dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn one polling thread per channel (§4.2.3).

        IB channels get a second poller over the endpoint's RDMA
        completion queue: inbound rendezvous bodies written by remote
        HCAs complete there, never through the channel packet machinery.
        """
        for protocol in sorted(self.ports):
            port = self.ports[protocol]
            self._pollers.append(ChannelPoller(self, port))
            if base_protocol(protocol) == "ib" and \
                    hasattr(port.endpoint, "rdma_mailbox"):
                self._pollers.append(RdmaCompletionPoller(self, port))
            port.channel.add_death_listener(self._on_channel_death)

    def _on_channel_death(self, channel) -> None:
        """A channel died: future traffic re-routes, threshold re-elects.

        New sends naturally avoid the dead channel (``direct_port`` skips
        it); already-queued wire traffic is tunnelled by the reliable
        transport.  The ADI's single threshold field must be re-elected
        from the survivors — losing SCI, for example, drops the elected
        8 KB back to the survivors' own switch point (§4.2.2).
        """
        live = [name for name, port in self.ports.items()
                if not port.channel.dead]
        if not live:
            return  # nothing to elect from; sends will fail over loudly
        old = self.eager_threshold
        self.eager_threshold = elect_threshold(live, self.switch_points)
        engine = self.progress.runtime.engine
        engine.tracer.emit(
            "chmad.reelect_threshold", rank=self.world_rank,
            dead=channel.name, old=old, new=self.eager_threshold,
        )

    def start_heartbeats(self, detector) -> None:
        """Spawn the low-rate liveness heartbeat daemon (FT runs only).

        Piggybacked liveness covers busy periods for free; the heartbeat
        covers *idle* ones, where a dead peer's silence would otherwise
        be indistinguishable from a quiet one.  Beats go out on **every**
        live channel towards each peer, not just the preferred one — one
        fabric dying must not starve the liveness evidence that keeps
        the detector from misdiagnosing the peer itself as dead.
        """
        self.detector = detector

        def body() -> Generator:
            process = self.progress.process
            while True:
                yield sleep(detector.heartbeat_interval)
                if process.dead:
                    return
                yield from self._send_heartbeats()

        self.progress.runtime.spawn(body(), name="ft-heartbeat", daemon=True)

    def _send_heartbeats(self) -> Generator:
        engine = self.progress.runtime.engine
        header = ChMadHeader(MadPktType.MAD_HB_PKT)
        for name in sorted(self.ports):
            port = self.ports[name]
            if port.channel.dead:
                continue
            tuning = self.tuning[base_protocol(port.channel.protocol)]
            for peer in sorted(port.channel.ports):
                if peer == self.world_rank or peer in self.detector.dead_ranks:
                    continue
                try:
                    yield charge(tuning.send_handling)
                    message = port.begin_packing(peer)
                    yield from message.pack(header, CH_MAD_HEADER_BYTES,
                                            SEND_CHEAPER, RECEIVE_EXPRESS)
                    yield from message.end_packing()
                except FailoverExhaustedError:
                    self.detector.on_unreachable(peer)
                except (ChannelDeadError, RouteError):
                    continue  # the channel died mid-beat; next round adapts
                else:
                    ins = engine.instruments
                    if ins.enabled:
                        ins.count("ft.heartbeats", 1, rank=self.world_rank,
                                  protocol=port.channel.protocol)

    def shutdown(self) -> None:
        for poller in self._pollers:
            poller.stop()
        self._pollers.clear()
        for port in self.ports.values():
            if port.transport is not None:
                # One transport per process: cancel trailing ack timers so
                # they cannot fire into the torn-down session.
                port.transport.cancel_pending()
                break

    # -- channel selection ---------------------------------------------------------

    def direct_port(self, dest_world: int,
                    lane: int | None = None) -> ChannelPort | None:
        """Fastest channel shared with the destination, if any.

        Rails of one protocol (``"bip"``, ``"bip#1"``) share a preference
        slot; the lowest-named rail that reaches the destination wins.
        With a ``lane``, selection rotates through *all* live rails that
        reach the destination (preference order, then name order), so
        lanes land on distinct rails wherever enough exist — and fold
        onto the survivors, modulo, when rails die.
        """
        candidates: list[ChannelPort] = []
        for protocol in self.preference:
            for name in sorted(self.ports):
                if base_protocol(name) != protocol:
                    continue
                port = self.ports[name]
                if port.channel.dead:
                    continue
                if dest_world in port.channel.ports:
                    if lane is None:
                        return port
                    candidates.append(port)
        if not candidates:
            return None
        return candidates[lane % len(candidates)]

    # -- multi-lane support (repro.mpi.coll.multilane) -------------------------

    def lane_count(self, dest_world: int | None = None) -> int:
        """Number of live rails (optionally: that reach ``dest_world``)."""
        count = 0
        for port in self.ports.values():
            if port.channel.dead:
                continue
            if dest_world is not None and \
                    dest_world not in port.channel.ports:
                continue
            count += 1
        return max(count, 1)

    def assign_lane(self, context_ids, lane: int) -> None:
        """Steer every context in ``context_ids`` onto rail ``lane``."""
        for context_id in context_ids:
            self.context_lanes[int(context_id)] = int(lane)

    def _lane_of(self, header: ChMadHeader) -> int | None:
        """Lane of one outgoing packet, from its envelope's context.

        Control packets without an envelope (SENDOK, TERM) take the
        default rail — they are tiny and order-insensitive.
        """
        if not self.context_lanes:
            return None
        envelope = header.envelope
        if envelope is None:
            return None
        return self.context_lanes.get(envelope.context_id)

    def select_port(self, dest_world: int) -> ChannelPort:
        port = self.direct_port(dest_world)
        if port is None:
            if any(dest_world in p.channel.ports
                   for p in self.ports.values() if p.channel.dead):
                raise FailoverExhaustedError(
                    f"rank {self.world_rank}: every channel towards rank "
                    f"{dest_world} is dead",
                    remote_rank=dest_world,
                )
            raise ConfigurationError(
                f"rank {self.world_rank} shares no network with rank "
                f"{dest_world} (enable forwarding, or see "
                "repro.mpi.devices.ch_mad.forwarding)"
            )
        return port

    def threshold(self, dest_world: int) -> int:
        """Effective eager/rendezvous switch point towards ``dest_world``."""
        if not self.per_network_thresholds:
            return self.eager_threshold
        port = self.direct_port(dest_world)
        if port is None:
            return self.eager_threshold
        return self.switch_points[base_protocol(port.channel.protocol)]

    def _padded_body_size(self, size: int) -> int:
        """Eager body size on the wire under the padded-short ablation.

        The padded MPID_PKT_SHORT_T buffer must fit the largest switch
        point among the supported networks (§4.2.2's problem statement).
        """
        if not self.padded_short_packets:
            return size
        return max(self.switch_points[base_protocol(p)] for p in self.ports)

    # -- packet transmission core ----------------------------------------------------

    def _transmit_packet(self, dest_world: int, header: ChMadHeader,
                         body: Any, body_size: int,
                         wire_body_size: int | None = None) -> Generator:
        """Send one ch_mad packet, forwarding through a gateway if needed."""
        engine = self.progress.runtime.engine
        checker = engine.checker
        if checker.enabled:
            # Hooked before the forwarding branch: the checker sees each
            # logical packet exactly once, at its origin (relays re-enter
            # through send_wrapped, never through here).
            checker.on_chmad_send(self.world_rank, dest_world, header)
        port = self.direct_port(dest_world, lane=self._lane_of(header))
        if port is None:
            if dest_world not in self.forward_routes:
                self.select_port(dest_world)  # raises the descriptive error
            wrapper = ForwardWrapper(final_dest=dest_world,
                                     origin=self.world_rank,
                                     header=header, body=body,
                                     body_size=body_size)
            yield from self.send_wrapped(dest_world, wrapper)
            return
        tuning = self.tuning[base_protocol(port.channel.protocol)]
        engine.tracer.emit(
            "chmad.send", src=self.world_rank, dst=dest_world,
            pkt=header.pkt_type.name, protocol=port.channel.protocol,
            body=body_size,
        )
        ins = engine.instruments
        if ins.enabled:
            ins.count("chmad.packets", 1, pkt=header.pkt_type.name,
                      protocol=port.channel.protocol, rank=self.world_rank,
                      dir="send")
        yield charge(tuning.send_handling)
        message = port.begin_packing(dest_world)
        yield from message.pack(header, CH_MAD_HEADER_BYTES,
                                SEND_CHEAPER, RECEIVE_EXPRESS)
        if body_size > 0 or (wire_body_size or 0) > 0:
            yield from message.pack(body, wire_body_size
                                    if wire_body_size is not None
                                    else body_size,
                                    SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()

    def send_wrapped(self, final_dest: int, wrapper: ForwardWrapper) -> Generator:
        """Transmit a forwarded packet to the next hop towards its dest."""
        if self.direct_port(final_dest) is not None:
            hop = final_dest  # last hop: deliver the wrapper directly
        else:
            hop = self.forward_routes.get(final_dest)
        if hop is None:
            raise RouteError(
                f"rank {self.world_rank}: no route to rank {final_dest} "
                "(forwarding disabled or topology disconnected)"
            )
        port = self.direct_port(hop)
        if port is None:
            raise RouteError(
                f"rank {self.world_rank}: next hop {hop} for rank "
                f"{final_dest} is not directly reachable"
            )
        tuning = self.tuning[base_protocol(port.channel.protocol)]
        yield charge(tuning.send_handling)
        message = port.begin_packing(hop)
        yield from message.pack(wrapper,
                                CH_MAD_HEADER_BYTES + FWD_ROUTING_BYTES,
                                SEND_CHEAPER, RECEIVE_EXPRESS)
        if wrapper.body_size > 0:
            yield from message.pack(wrapper.body, wrapper.body_size,
                                    SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()

    # -- send paths ------------------------------------------------------------------

    def send_eager(self, dest_world: int, envelope: Envelope,
                   data: Any) -> Generator:
        """Eager mode: MAD_SHORT_PKT header + optional CHEAPER body."""
        header = ChMadHeader(MadPktType.MAD_SHORT_PKT, envelope=envelope)
        # The §4.2.2 split: the user buffer goes as the message body
        # (zero-copy on the sending side), never as padding inside a
        # MPID_PKT_MAX_DATA_SIZE-sized short packet — unless the padded
        # ablation is on, which shows exactly that waste.
        wire_size = self._padded_body_size(envelope.size) if envelope.size else 0
        yield from self._transmit_packet(dest_world, header, data,
                                         envelope.size,
                                         wire_body_size=wire_size)

    def send_rndv(self, dest_world: int, shandle: SendHandle) -> Generator:
        """Rendezvous, sender side: request, await ack, send data (§4.2.2)."""
        if self.rdma_rendezvous:
            port = self.direct_port(dest_world,
                                    lane=self._lane_of(
                                        ChMadHeader(MadPktType.MAD_REQUEST_PKT,
                                                    envelope=shandle.envelope)))
            if port is not None and \
                    base_protocol(port.channel.protocol) == "ib" and \
                    hasattr(port.endpoint, "rdma_write"):
                yield from self._send_rndv_rdma(dest_world, shandle, port)
                return
        shandle.dest_world = dest_world
        self._pending_sends[shandle.send_id] = shandle
        yield from self._transmit_packet(
            dest_world,
            ChMadHeader(MadPktType.MAD_REQUEST_PKT, envelope=shandle.envelope,
                        send_id=shandle.send_id),
            None, 0,
        )
        shandle.notify_request_sent()  # match slot secured: release ordering
        # Step 2: the receiver replies with the sync structure's address.
        # Wait-for-graph metadata: this wait depends on the receiver rank.
        shandle.ack_flag.rank_dep = dest_world
        shandle.ack_flag.dep_describe = (
            f"rendezvous SENDOK from rank {dest_world} "
            f"(send_id={shandle.send_id})")
        sync_id = yield wait(shandle.ack_flag)
        if sync_id is None:
            # The FT layer failed this send (peer death / revoke) and
            # released the ack flag with no sync address.  Surface the
            # structured error instead of transmitting into the void.
            self._pending_sends.pop(shandle.send_id, None)
            raise shandle.error or MPIProcFailedError(
                f"rendezvous to rank {dest_world} aborted: peer failed",
                failed_rank=dest_world,
            )
        # Step 3: data destination is known — zero-copy transfer.
        protocol = self._protocol_towards(dest_world)
        tuning = self.tuning[base_protocol(protocol)]
        if tuning.rndv_body_ns_per_byte:
            # Driver-side per-byte feeding cost (BIP credit machinery).
            yield charge(round(shandle.envelope.size
                               * tuning.rndv_body_ns_per_byte))
        yield from self._transmit_packet(
            dest_world,
            ChMadHeader(MadPktType.MAD_RNDV_PKT, envelope=shandle.envelope,
                        sync_id=sync_id),
            shandle.data, shandle.envelope.size,
        )
        shandle.flag.set()

    def _send_rndv_rdma(self, dest_world: int, shandle: SendHandle,
                        port: ChannelPort) -> Generator:
        """Rendezvous over RDMA (Liu et al.): zero-copy body, no packets.

        Control flow mirrors :meth:`send_rndv` — request, await ack —
        but the request pre-registers the send buffer (amortized by the
        registration cache), the ack certifies the receive buffer is
        registered, and the body goes as **one RDMA write** straight
        into it: no MAD_RNDV_PKT, no pack/unpack, no per-byte CPU on
        either side.  Completion is piggybacked: the write itself is the
        receiver's notification (via its HCA completion queue).
        """
        engine = self.progress.runtime.engine
        envelope = shandle.envelope
        shandle.dest_world = dest_world
        self._pending_sends[shandle.send_id] = shandle
        endpoint = port.endpoint
        yield from endpoint.register(
            ("rndv-send", envelope.context_id, dest_world, envelope.tag,
             envelope.size),
            envelope.size,
        )
        yield from self._transmit_packet(
            dest_world,
            ChMadHeader(MadPktType.MAD_RDMA_REQ_PKT, envelope=envelope,
                        send_id=shandle.send_id),
            None, 0,
        )
        shandle.notify_request_sent()
        shandle.ack_flag.rank_dep = dest_world
        shandle.ack_flag.dep_describe = (
            f"RDMA rendezvous ack from rank {dest_world} "
            f"(send_id={shandle.send_id})")
        sync_id = yield wait(shandle.ack_flag)
        if sync_id is None:
            self._pending_sends.pop(shandle.send_id, None)
            raise shandle.error or MPIProcFailedError(
                f"rendezvous to rank {dest_world} aborted: peer failed",
                failed_rank=dest_world,
            )
        header = ChMadHeader(MadPktType.MAD_RDMA_DATA_PKT, envelope=envelope,
                             sync_id=sync_id)
        checker = engine.checker
        if checker.enabled:
            checker.on_chmad_send(self.world_rank, dest_world, header)
        engine.tracer.emit(
            "chmad.send", src=self.world_rank, dst=dest_world,
            pkt=header.pkt_type.name, protocol=port.channel.protocol,
            body=envelope.size,
        )
        ins = engine.instruments
        if ins.enabled:
            ins.count("chmad.packets", 1, pkt=header.pkt_type.name,
                      protocol=port.channel.protocol, rank=self.world_rank,
                      dir="send")
        remote = port.channel.port(dest_world).endpoint
        yield from endpoint.rdma_write(remote, header, envelope, sync_id,
                                       shandle.data, envelope.size)
        shandle.flag.set()

    def send_rndv_ack(self, token: ChMadRndvToken, sync_id: int) -> Generator:
        """Rendezvous, receiver side: MAD_SENDOK_PKT with our sync id.

        For an RDMA rendezvous the receive buffer must be registered
        *before* the ack goes out — the ack is the sender's licence to
        write — and the ack travels as MAD_RDMA_ACK_PKT.
        """
        if token.rdma:
            port = self.direct_port(token.requester_world)
            if port is not None and hasattr(port.endpoint, "register") and \
                    token.envelope is not None:
                yield from port.endpoint.register(
                    ("rndv-recv", token.envelope.context_id,
                     token.requester_world, token.envelope.tag,
                     token.envelope.size),
                    token.envelope.size,
                )
            yield from self._transmit_packet(
                token.requester_world,
                ChMadHeader(MadPktType.MAD_RDMA_ACK_PKT,
                            send_id=token.send_id, sync_id=sync_id),
                None, 0,
            )
            return
        yield from self._transmit_packet(
            token.requester_world,
            ChMadHeader(MadPktType.MAD_SENDOK_PKT, send_id=token.send_id,
                        sync_id=sync_id),
            None, 0,
        )

    def send_term(self, dest_world: int) -> Generator:
        """MAD_TERM_PKT: program termination notification (MPI_Finalize)."""
        yield from self._transmit_packet(
            dest_world, ChMadHeader(MadPktType.MAD_TERM_PKT), None, 0,
        )

    def _protocol_towards(self, dest_world: int) -> str:
        port = self.direct_port(dest_world)
        if port is not None:
            return port.channel.protocol
        hop = self.forward_routes.get(dest_world)
        if hop is not None:
            hop_port = self.direct_port(hop)
            if hop_port is not None:
                return hop_port.channel.protocol
        raise RouteError(f"no path towards rank {dest_world}")

    # -- polling-thread callbacks -------------------------------------------------------

    def _complete_ack(self, send_id: int, sync_id: int) -> None:
        shandle = self._pending_sends.pop(send_id, None)
        if shandle is None:
            if self.detector is not None:
                # FT already failed this send (its peer was declared
                # dead, or the comm revoked) — the straggler SENDOK from
                # a rank that was merely slow is expected, not fatal.
                ins = self.progress.runtime.engine.instruments
                if ins.enabled:
                    ins.count("ft.stale_acks", 1, rank=self.world_rank)
                return
            raise MPIError(f"MAD_SENDOK_PKT for unknown send id {send_id}")
        shandle.ack_flag.set(sync_id)
