"""ch_p4 — the classic MPICH TCP device (the Figure 6 baseline).

Historically MPICH's default workstation device, built on the P4
portability library.  Implemented here straight over the TCP endpoint
model (no Madeleine underneath — it predates it), with P4's measured
behaviours:

- higher fixed software overhead per message than ch_mad (P4 queue
  locking and buffer management), which is why ch_mad wins below
  ~256 bytes (Figure 6a) and why the gap becomes relatively "limited"
  as the per-byte wire time dominates for longer messages;
- a posted eager receive readv()s from the socket into the user buffer,
  so ch_p4's per-byte eager cost is marginally below ch_mad's
  (bandwidths "similar" below 64 KB, Figure 6b, with the fixed-overhead
  gap shrinking as size grows);
- beyond its 64 KB threshold P4 switches to a rendezvous that still
  stalls on socket flow control (modelled as a receiver per-byte stall),
  producing the famous ~10 MB/s ceiling of Figure 6b, while ch_mad's
  zero-copy rendezvous climbs past 11 MB/s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import ConfigurationError, MPIError
from repro.marcel.polling import PollingThread
from repro.mpi.adi.device import Device, ProgressEngine
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.rhandle import SendHandle
from repro.networks.fabric import Delivery, NetworkFabric
from repro.networks.tcp import TcpEndpoint
from repro.sim.coroutines import charge, wait
from repro.units import us

#: P4 wire header per packet (envelope, lengths, checksums).
P4_HEADER_BYTES = 40
#: Fixed P4 software costs per message (queue locks, buffer management —
#: the P4 library was built for portability, not latency).
P4_SEND_OVERHEAD = us(35)
P4_RECV_OVERHEAD = us(42)
#: P4's eager/rendezvous switch point.
P4_EAGER_THRESHOLD = 64 * 1024
#: Receiver-side stall per byte on the rendezvous path (socket flow
#: control with P4's fixed-size socket buffers): the 10 MB/s ceiling.
P4_RNDV_STALL_NS_PER_BYTE = 10.0


class P4Kind(enum.Enum):
    EAGER = "eager"
    RNDV_REQUEST = "rndv-request"
    RNDV_ACK = "rndv-ack"
    RNDV_DATA = "rndv-data"


@dataclass(frozen=True)
class P4Packet:
    kind: P4Kind
    source_world: int
    envelope: Envelope | None = None
    data: Any = None
    send_id: int = 0
    sync_id: int = 0


@dataclass(frozen=True)
class P4RndvToken:
    device: "ChP4Device"
    requester_world: int
    send_id: int


class ChP4Device(Device):
    """The TCP-only baseline device."""

    name = "ch_p4"

    def __init__(self, progress: ProgressEngine, world_rank: int,
                 tcp_fabric: NetworkFabric):
        self.progress = progress
        self.world_rank = world_rank
        self.eager_threshold = P4_EAGER_THRESHOLD
        # ch_p4 owns its own adapter on the TCP fabric (its own socket set),
        # separate from any Madeleine channel.
        self.endpoint = TcpEndpoint(progress.runtime.engine, tcp_fabric,
                                    owner=self)
        self._peers: dict[int, "ChP4Device"] = {}
        self._pending_sends: dict[int, SendHandle] = {}
        self._poll_thread: PollingThread | None = None

    # -- wiring -----------------------------------------------------------------

    def connect(self, peers: dict[int, "ChP4Device"],
                shared: bool = False) -> None:
        """Register the other processes' ch_p4 devices (full mesh).

        With ``shared=True`` the mapping is kept by reference — the
        cluster session builds *one* world-wide dict and hands it to all
        ranks (a private copy per device was O(ranks²) memory).  The
        shared map may include this device's own entry; ``_peer`` never
        looks up ``self.world_rank`` because device selection routes
        self-sends to ch_self.
        """
        if shared:
            self._peers = peers
            return
        self._peers = dict(peers)
        self._peers.pop(self.world_rank, None)

    def start(self) -> None:
        """Spawn the select() polling thread (periodic, TCP-style)."""
        self._poll_thread = PollingThread(
            self.progress.runtime,
            self.endpoint.poll_source(name=f"p4@{self.world_rank}"),
            self._handle,
        )

    def shutdown(self) -> None:
        if self._poll_thread is not None:
            self._poll_thread.stop()
            self._poll_thread = None

    def _peer(self, dest_world: int) -> "ChP4Device":
        try:
            if dest_world == self.world_rank:
                raise KeyError(dest_world)  # shared map includes self
            return self._peers[dest_world]
        except KeyError:
            raise ConfigurationError(
                f"ch_p4 of rank {self.world_rank} has no connection to "
                f"rank {dest_world}"
            ) from None

    def _transmit(self, dest_world: int, packet: P4Packet,
                  payload_bytes: int) -> Generator:
        peer = self._peer(dest_world)
        yield from self.endpoint.send_message(
            peer.endpoint, payload_bytes + P4_HEADER_BYTES, packet
        )

    # -- send side ------------------------------------------------------------------

    def send_eager(self, dest_world: int, envelope: Envelope,
                   data: Any) -> Generator:
        yield charge(P4_SEND_OVERHEAD)
        packet = P4Packet(P4Kind.EAGER, self.world_rank, envelope, data)
        yield from self._transmit(dest_world, packet, envelope.size)

    def send_rndv(self, dest_world: int, shandle: SendHandle) -> Generator:
        yield charge(P4_SEND_OVERHEAD)
        self._pending_sends[shandle.send_id] = shandle
        yield from self._transmit(
            dest_world,
            P4Packet(P4Kind.RNDV_REQUEST, self.world_rank, shandle.envelope,
                     send_id=shandle.send_id),
            0,
        )
        shandle.notify_request_sent()
        sync_id = yield wait(shandle.ack_flag)
        yield charge(P4_SEND_OVERHEAD)
        yield from self._transmit(
            dest_world,
            P4Packet(P4Kind.RNDV_DATA, self.world_rank, shandle.envelope,
                     data=shandle.data, sync_id=sync_id),
            shandle.envelope.size,
        )
        shandle.flag.set()

    def send_rndv_ack(self, token: P4RndvToken, sync_id: int) -> Generator:
        yield charge(P4_SEND_OVERHEAD)
        yield from self._transmit(
            token.requester_world,
            P4Packet(P4Kind.RNDV_ACK, self.world_rank,
                     send_id=token.send_id, sync_id=sync_id),
            0,
        )

    # -- receive side (polling thread handler) ------------------------------------------

    def _handle(self, delivery: Delivery) -> Generator:
        packet: P4Packet = delivery.payload
        yield charge(P4_RECV_OVERHEAD)
        if packet.kind is P4Kind.EAGER:
            # Posted receives readv() straight into the user buffer;
            # unexpected arrivals are buffered (one copy).
            yield from self.progress.deliver_eager(
                packet.envelope, packet.data,
                copy_on_match=False, copy_on_buffer=True,
            )
        elif packet.kind is P4Kind.RNDV_REQUEST:
            token = P4RndvToken(self, packet.source_world, packet.send_id)
            yield from self.progress.deliver_rndv_request(packet.envelope,
                                                          token, self)
        elif packet.kind is P4Kind.RNDV_ACK:
            shandle = self._pending_sends.pop(packet.send_id, None)
            if shandle is None:
                raise MPIError(f"P4 ack for unknown send {packet.send_id}")
            shandle.ack_flag.set(packet.sync_id)
        elif packet.kind is P4Kind.RNDV_DATA:
            # Socket flow-control stalls: the ~10 MB/s ceiling.
            yield charge(round(packet.envelope.size * P4_RNDV_STALL_NS_PER_BYTE))
            yield from self.progress.deliver_rndv_data(packet.sync_id,
                                                       packet.envelope,
                                                       packet.data)
        else:  # pragma: no cover - defensive
            raise MPIError(f"unknown P4 packet kind {packet.kind}")
