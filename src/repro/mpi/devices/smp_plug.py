"""smp_plug — the intra-node shared-memory device (paper §4.1).

Part of the SMP implementation of MPI-BIP ([9], [16]) in the original;
here a faithful cost model: processes on one node exchange packets
through shared-memory FIFOs.

- Eager: sender copies the payload into the FIFO (one memcpy), the
  receiver's smp polling thread copies it out (the progress engine
  charges that side).
- Rendezvous (large messages): request/ack through the FIFO, then a
  single direct copy into the user buffer once its address is known.

Each process runs one cheap event-mode polling thread for its FIFO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import ConfigurationError, MPIError
from repro.marcel.polling import PollMode, PollSource, PollingThread
from repro.mpi.adi.device import Device, ProgressEngine, clone_payload
from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.rhandle import SendHandle
from repro.sim.coroutines import charge, wait
from repro.sim.sync import Mailbox
from repro.units import us

#: Software cost to enqueue/dequeue one FIFO packet.
SMP_OVERHEAD = us(0.6)
#: Store-buffer/coherence delay before the peer can observe a packet.
SMP_LATENCY = us(0.3)
#: Per-poll cost of the FIFO flag check.
SMP_POLL_COST = us(0.2)
#: Eager/rendezvous switch for shared memory.
SMP_EAGER_THRESHOLD = 16 * 1024


class SmpKind(enum.Enum):
    EAGER = "eager"
    RNDV_REQUEST = "rndv-request"
    RNDV_ACK = "rndv-ack"
    RNDV_DATA = "rndv-data"


@dataclass(frozen=True)
class SmpPacket:
    kind: SmpKind
    source_world: int
    envelope: Envelope | None = None
    data: Any = None
    send_id: int = 0
    sync_id: int = 0


@dataclass(frozen=True)
class SmpRndvToken:
    """What an unexpected rendezvous request remembers."""

    device: "SmpPlugDevice"
    requester_world: int
    send_id: int


class SmpPlugDevice(Device):
    """Shared-memory device of one process on a multi-process node."""

    name = "smp_plug"

    def __init__(self, progress: ProgressEngine, world_rank: int):
        self.progress = progress
        self.world_rank = world_rank
        self.eager_threshold = SMP_EAGER_THRESHOLD
        self.fifo = Mailbox(name=f"smp[{world_rank}]")
        self._peers: dict[int, "SmpPlugDevice"] = {}
        self._pending_sends: dict[int, SendHandle] = {}
        self._poll_thread: PollingThread | None = None

    # -- wiring (done by the cluster session) ---------------------------------

    def connect(self, peers: dict[int, "SmpPlugDevice"]) -> None:
        """Register the other processes of this node (world rank -> device)."""
        self._peers = dict(peers)
        self._peers.pop(self.world_rank, None)

    def start(self) -> None:
        """Spawn the FIFO polling thread."""
        source = PollSource(name=f"smp@{self.world_rank}", mode=PollMode.EVENT,
                            mailbox=self.fifo, poll_cost=SMP_POLL_COST)
        self._poll_thread = PollingThread(self.progress.runtime, source,
                                          self._handle)

    def shutdown(self) -> None:
        if self._poll_thread is not None:
            self._poll_thread.stop()
            self._poll_thread = None

    def _peer(self, dest_world: int) -> "SmpPlugDevice":
        try:
            return self._peers[dest_world]
        except KeyError:
            raise ConfigurationError(
                f"smp_plug of rank {self.world_rank} has no peer "
                f"{dest_world} (not on this node?)"
            ) from None

    def _post_to(self, dest_world: int, packet: SmpPacket) -> None:
        peer = self._peer(dest_world)
        engine = self.progress.runtime.engine
        engine.schedule(SMP_LATENCY, peer.fifo.post, packet)

    # -- send side ---------------------------------------------------------------

    def send_eager(self, dest_world: int, envelope: Envelope,
                   data: Any) -> Generator:
        # enqueue cost + copy into the shared FIFO
        yield charge(SMP_OVERHEAD + self.progress.memory.copy_cost(envelope.size))
        self._post_to(dest_world, SmpPacket(SmpKind.EAGER, self.world_rank,
                                            envelope, clone_payload(data)))

    def send_rndv(self, dest_world: int, shandle: SendHandle) -> Generator:
        yield charge(SMP_OVERHEAD)
        self._pending_sends[shandle.send_id] = shandle
        self._post_to(dest_world, SmpPacket(SmpKind.RNDV_REQUEST,
                                            self.world_rank,
                                            shandle.envelope,
                                            send_id=shandle.send_id))
        shandle.notify_request_sent()
        sync_id = yield wait(shandle.ack_flag)
        if sync_id is None:
            # The FT layer aborted this rendezvous (peer death / revoke).
            self._pending_sends.pop(shandle.send_id, None)
            from repro.errors import MPIProcFailedError
            raise shandle.error or MPIProcFailedError(
                f"rendezvous to rank {dest_world} aborted: peer failed",
                failed_rank=dest_world)
        # Single direct copy into the receiver's user buffer.
        yield charge(SMP_OVERHEAD
                     + self.progress.memory.copy_cost(shandle.envelope.size))
        self._post_to(dest_world, SmpPacket(SmpKind.RNDV_DATA, self.world_rank,
                                            shandle.envelope,
                                            data=clone_payload(shandle.data),
                                            sync_id=sync_id))
        shandle.flag.set()

    def send_rndv_ack(self, token: SmpRndvToken, sync_id: int) -> Generator:
        yield charge(SMP_OVERHEAD)
        self._post_to(token.requester_world,
                      SmpPacket(SmpKind.RNDV_ACK, self.world_rank,
                                send_id=token.send_id, sync_id=sync_id))

    # -- receive side (polling thread handler) -------------------------------------

    def _handle(self, packet: SmpPacket) -> Generator:
        yield charge(SMP_OVERHEAD)
        if packet.kind is SmpKind.EAGER:
            yield from self.progress.deliver_eager(packet.envelope, packet.data)
        elif packet.kind is SmpKind.RNDV_REQUEST:
            token = SmpRndvToken(self, packet.source_world, packet.send_id)
            yield from self.progress.deliver_rndv_request(packet.envelope,
                                                          token, self)
        elif packet.kind is SmpKind.RNDV_ACK:
            shandle = self._pending_sends.pop(packet.send_id, None)
            if shandle is None:
                if self.progress.ft is not None:
                    # Stale ack for a send the FT layer already aborted.
                    ins = self.progress.runtime.engine.instruments
                    if ins.enabled:
                        ins.count("ft.stale_acks", 1, rank=self.world_rank,
                                  device="smp_plug")
                    return
                raise MPIError(f"smp ack for unknown send {packet.send_id}")
            shandle.ack_flag.set(packet.sync_id)
        elif packet.kind is SmpKind.RNDV_DATA:
            yield from self.progress.deliver_rndv_data(packet.sync_id,
                                                       packet.envelope,
                                                       packet.data)
        else:  # pragma: no cover - defensive
            raise MPIError(f"unknown smp packet kind {packet.kind}")
