"""MPI-2 one-sided communication: windows, fence epochs, Put/Get/Accumulate.

The window model follows the MPICH2-over-InfiniBand design (Liu et al.,
see PAPERS.md): a window is a byte buffer exposed by every rank of a
communicator, accessed between ``fence`` calls (active-target
synchronization).  The implementation is layered on the existing ADI:

- Each window dups its communicator; the dup's fresh context isolates
  RMA traffic and doubles as the window id.  Origin-side ops travel as
  ordinary point-to-point messages on a reserved tag, applied by a
  per-rank *agent* daemon (the software-agent fallback of the paper's
  design — the path every network can take).
- On InfiniBand channels ``get`` short-circuits to a true one-sided
  ``rdma_read`` against the target's registered window region: the
  target CPU is never involved, which is the whole point of RDMA.
  Window memory is registered with the HCA at creation time
  (``register_explicit``) and deregistered at ``free`` — the
  registration-leak audit in :mod:`repro.check.checker` holds us to it.
- ``fence`` completes an epoch with the three-step discipline: drain
  this rank's pending gets, alltoall the per-target issued-op counts,
  wait until the local agent has applied everything addressed here,
  then barrier.  The checker shadows the epoch state machine
  (``rma-epoch`` / ``rma-unfenced-completion`` invariants).

Accumulate is SUM over little-endian int64 slots (commutative, so apply
order within an epoch cannot change the result — the property that makes
the randomized RMA tests schedule-independent).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import MPIError
from repro.mpi import point2point as _p2p
from repro.mpi.constants import ANY_SOURCE, TAG_UB
from repro.sim.coroutines import charge, wait
from repro.sim.sync import Flag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.communicator import Communicator
    from repro.mpi.request import RecvRequest

#: Reserved tag for origin->target RMA op messages on the window's
#: private (dup'd) communicator.  Get replies use tags 1.. so they can
#: never match the agent's wildcard receive.
RMA_OP_TAG = 0

#: Modeled wire overhead of an RMA op descriptor (op code, window id,
#: offset, uid) beyond its payload.
RMA_HEADER_BYTES = 32


class GetResult:
    """Deferred result of :meth:`Win.get` (packetized path).

    MPI one-sided reads complete at the closing fence; ``data`` raises
    until then.  The RDMA fast path fills the result before returning,
    so callers may also read it immediately when they know the path.
    """

    __slots__ = ("_data", "_ready")

    def __init__(self) -> None:
        self._data: bytes | None = None
        self._ready = False

    def _set(self, data: bytes) -> None:
        self._data = data
        self._ready = True

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def data(self) -> bytes:
        if not self._ready:
            raise MPIError("Win.get result read before the closing fence")
        return self._data


class Win:
    """One MPI window: ``size`` bytes exposed on every rank of a comm.

    Create collectively with :meth:`Communicator.win_create`; destroy
    with :meth:`free`.  All access must happen between :meth:`fence`
    calls.
    """

    def __init__(self, comm: "Communicator", size: int):
        self.comm = comm
        self.size = size
        #: The dup's context id doubles as the window identity — unique
        #: per window per world, identical across ranks.
        self.win_id = comm.context_id
        self.buffer = np.zeros(size, dtype=np.uint8)
        self.freed = False
        self._epoch_open = False
        self._seq = 0                     # op uid counter (this origin)
        self._reply_seq = 0               # get reply-tag counter
        self._issued: dict[int, int] = {}  # target comm rank -> ops sent
        self._pending_gets: list[tuple["RecvRequest", GetResult]] = []
        #: Ops applied locally by the agent vs. the cumulative total the
        #: fences have promised; the fence waits _applied >= _expected.
        self._applied = 0
        self._expected = 0
        self._fence_flag: Flag | None = None
        self._fence_need = 0
        self._stopped = False
        self._agent_request: "RecvRequest | None" = None

    # -- construction / teardown -------------------------------------------

    @classmethod
    def create(cls, comm: "Communicator", size: int) -> Generator:
        """Collective: build a window of ``size`` bytes per rank."""
        if size < 0:
            raise MPIError(f"window size must be >= 0, got {size}")
        wcomm = yield from comm.dup()
        win = cls(wcomm, size)
        env = wcomm.env
        # Pin the window with every RDMA-capable board of this process:
        # remote rdma_read must find the region registered whichever IB
        # rail the reader arrives on.
        for endpoint in win._rdma_endpoints():
            yield from endpoint.register_explicit(("win", win.win_id), size)
            endpoint.expose(("win", win.win_id), win.buffer)
        checker = env.process.engine.checker
        if checker.enabled:
            checker.on_win_create(env.rank, win.win_id)
        env.process.runtime.spawn(
            win._serve(), name=f"rank{env.rank}.win{win.win_id}.agent",
            daemon=True)
        return win

    def free(self) -> Generator:
        """Collective: tear the window down (MPI_Win_free).

        Epochs must be closed (a fence since the last access) — the
        barrier here orders every agent's last apply before teardown.
        """
        self._check_live()
        yield from self.comm.barrier()
        self._stopped = True
        request = self._agent_request
        if request is not None:
            # Withdraw the agent's pending wildcard receive so the
            # finalize leak audit never mistakes it for an application
            # request (the FT control listener uses the same discipline).
            request.cancel()
            self._agent_request = None
        for endpoint in self._rdma_endpoints():
            endpoint.unexpose(("win", self.win_id))
            yield from endpoint.deregister_explicit(("win", self.win_id))
        env = self.comm.env
        checker = env.process.engine.checker
        if checker.enabled:
            checker.on_win_free(env.rank, self.win_id)
        self.freed = True
        self.comm.free()

    def _rdma_endpoints(self):
        return [endpoint
                for endpoint in self.comm.env.process._endpoints.values()
                if hasattr(endpoint, "register_explicit")]

    def _check_live(self) -> None:
        if self.freed:
            raise MPIError(f"operation on freed window {self.win_id}")
        self.comm._check_live()

    # -- synchronization ----------------------------------------------------

    def fence(self) -> Generator:
        """Close the current epoch (if any) and open the next one.

        The first fence only opens access; later fences guarantee that
        every op issued in the closing epoch — by any rank, to any rank —
        is applied before they return (MPI_Win_fence semantics).
        """
        self._check_live()
        env = self.comm.env
        checker = env.process.engine.checker
        if not self._epoch_open:
            if checker.enabled:
                checker.on_win_fence(env.rank, self.win_id)
            yield from self.comm.barrier()
            self._epoch_open = True
            return
        # 1. This origin's reads: a get reply is also the target-side
        #    proof the op was applied, so drain them first.
        for request, result in self._pending_gets:
            data, _status = yield from _p2p.recv_wait(self.comm, request)
            result._set(data)
        self._pending_gets = []
        # 2. Everyone learns how many ops were addressed to them this
        #    epoch (the classic fence count-exchange).
        sent = [self._issued.get(target, 0)
                for target in range(self.comm.size)]
        counts = yield from self.comm.alltoall(sent)
        self._issued = {}
        self._expected += sum(counts)
        # 3. Wait for the local agent to apply them all.  The check and
        #    the arming of the flag are atomic under the cooperative
        #    scheduler, so the agent cannot slip an apply between them.
        while self._applied < self._expected:
            flag = Flag(name=f"win{self.win_id}.fence")
            flag.dep_describe = (
                f"RMA fence: {self._expected - self._applied} op(s) "
                f"outstanding on win {self.win_id}")
            self._fence_need = self._expected
            self._fence_flag = flag
            yield wait(flag)
            self._fence_flag = None
        # 4. Nobody leaves until everybody is drained.
        yield from self.comm.barrier()
        if checker.enabled:
            checker.on_win_fence_complete(env.rank, self.win_id)
            checker.on_win_fence(env.rank, self.win_id)

    # -- origin-side operations --------------------------------------------

    def put(self, target: int, offset: int, data) -> Generator:
        """One-sided write of ``data`` at ``offset`` in ``target``'s window."""
        payload = bytes(data)
        self._check_access(target, offset, len(payload))
        op_uid = self._next_uid()
        self._require_epoch("put", target, op_uid)
        yield from self.comm.send(
            ("put", offset, payload, op_uid), dest=target, tag=RMA_OP_TAG,
            size=len(payload) + RMA_HEADER_BYTES)
        self._issued[target] = self._issued.get(target, 0) + 1

    def accumulate(self, target: int, offset: int, values) -> Generator:
        """One-sided SUM into int64 slots at ``offset`` (must be 8-aligned)."""
        arr = np.ascontiguousarray(np.asarray(values, dtype="<i8"))
        self._check_access(target, offset, arr.nbytes)
        if offset % 8:
            raise MPIError("accumulate offset must be 8-byte aligned")
        op_uid = self._next_uid()
        self._require_epoch("accumulate", target, op_uid)
        yield from self.comm.send(
            ("acc", offset, arr.tobytes(), op_uid), dest=target,
            tag=RMA_OP_TAG, size=arr.nbytes + RMA_HEADER_BYTES)
        self._issued[target] = self._issued.get(target, 0) + 1

    def get(self, target: int, offset: int, nbytes: int) -> Generator:
        """One-sided read of ``nbytes`` at ``offset`` from ``target``.

        Evaluates to a :class:`GetResult` whose ``data`` is valid after
        the closing fence.  On a shared InfiniBand channel this is a
        genuine ``rdma_read`` against the target's registered window —
        no target-side software runs at all.
        """
        self._check_access(target, offset, nbytes)
        op_uid = self._next_uid()
        self._require_epoch("get", target, op_uid)
        env = self.comm.env
        checker = env.process.engine.checker
        result = GetResult()
        path = self._rdma_path(target)
        if path is not None:
            endpoint, remote = path
            ins = env.process.engine.instruments
            if ins.enabled:
                ins.count("rma.rdma_gets", 1, rank=env.rank)
            data = yield from endpoint.rdma_read(
                remote, ("win", self.win_id), offset, nbytes)
            if checker.enabled:
                # One-sided completion: the read IS the apply (no agent,
                # no count in the fence exchange — the origin holds the
                # data before its own fence begins).
                checker.on_rma_apply(env.rank, self.win_id, op_uid)
            result._set(bytes(data))
            return result
        reply_tag = self._next_reply_tag()
        # Post the reply receive BEFORE the request leaves: the target's
        # agent may answer before this thread runs again.
        request = self.comm.irecv(source=target, tag=reply_tag, size=nbytes)
        yield from self.comm.send(
            ("get", offset, nbytes, reply_tag, op_uid), dest=target,
            tag=RMA_OP_TAG, size=RMA_HEADER_BYTES)
        self._issued[target] = self._issued.get(target, 0) + 1
        self._pending_gets.append((request, result))
        return result

    # -- origin-side helpers ------------------------------------------------

    def _next_uid(self) -> str:
        self._seq += 1
        return f"{self.win_id}.{self.comm.env.rank}.{self._seq}"

    def _next_reply_tag(self) -> int:
        self._reply_seq += 1
        return 1 + (self._reply_seq % (TAG_UB - 1))

    def _require_epoch(self, op: str, target: int, op_uid: str) -> None:
        env = self.comm.env
        checker = env.process.engine.checker
        if checker.enabled:
            checker.on_rma_op(env.rank, self.win_id, op,
                              self.comm._dest_world(target), op_uid)
        if not self._epoch_open:
            raise MPIError(
                f"RMA {op} outside a fence epoch on win {self.win_id}")

    def _check_access(self, target: int, offset: int, nbytes: int) -> None:
        self._check_live()
        if not 0 <= target < self.comm.size:
            raise MPIError(f"RMA target rank {target} out of range")
        if nbytes < 0 or offset < 0 or offset + nbytes > self.size:
            raise MPIError(
                f"RMA access [{offset}, {offset + nbytes}) outside window "
                f"of {self.size} bytes")

    def _rdma_path(self, target: int):
        """(local endpoint, remote endpoint) for a true RDMA read, if the
        pair shares a live IB channel and the device allows RDMA."""
        env = self.comm.env
        target_world = self.comm._dest_world(target)
        if target_world == env.rank:
            return None
        device = env.select_device(target_world)
        if not getattr(device, "rdma_rendezvous", False):
            return None
        direct_port = getattr(device, "direct_port", None)
        if direct_port is None:
            return None
        from repro.networks import base_protocol
        port = direct_port(target_world)
        if port is None or base_protocol(port.channel.protocol) != "ib":
            return None
        endpoint = port.endpoint
        if not hasattr(endpoint, "rdma_read"):
            return None
        remote = port.channel.port(target_world).endpoint
        return endpoint, remote

    # -- the target-side agent ----------------------------------------------

    def _serve(self) -> Generator:
        """Per-rank window agent: applies incoming RMA ops (daemon).

        This is the software-agent path — every op that is not a true
        RDMA read lands here as a point-to-point message on the
        window's private context.
        """
        comm = self.comm
        env = comm.env
        progress = env.progress
        while not self._stopped:
            request = comm.irecv(source=ANY_SOURCE, tag=RMA_OP_TAG)
            self._agent_request = request
            message, status = yield from _p2p.recv_wait(comm, request)
            self._agent_request = None
            if self._stopped or message is None:
                return
            kind, offset = message[0], message[1]
            if kind == "put":
                _, _, payload, op_uid = message
                yield charge(progress.memory.copy_cost(len(payload)))
                self.buffer[offset:offset + len(payload)] = \
                    np.frombuffer(payload, dtype=np.uint8)
                self._applied_one(op_uid)
            elif kind == "acc":
                _, _, payload, op_uid = message
                values = np.frombuffer(payload, dtype="<i8")
                yield charge(progress.memory.copy_cost(len(payload)))
                view = self.buffer[offset:offset + values.nbytes].view("<i8")
                view += values
                self._applied_one(op_uid)
            else:  # "get" request (packetized reply path)
                _, _, nbytes, reply_tag, op_uid = message
                data = bytes(self.buffer[offset:offset + nbytes])
                # Agents are ordinary threads (not pollers): replying
                # with a plain send is legal and keeps the reply in the
                # window's private context.
                yield from comm.send(data, dest=status.source,
                                     tag=reply_tag, size=nbytes)
                self._applied_one(op_uid)

    def _applied_one(self, op_uid: str) -> None:
        env = self.comm.env
        checker = env.process.engine.checker
        if checker.enabled:
            checker.on_rma_apply(env.rank, self.win_id, op_uid)
        ins = env.process.engine.instruments
        if ins.enabled:
            ins.count("rma.applied", 1, rank=env.rank)
        self._applied += 1
        if self._fence_flag is not None and self._applied >= self._fence_need:
            self._fence_flag.set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Win id={self.win_id} size={self.size} "
                f"rank={self.comm.rank}/{self.comm.size}>")
