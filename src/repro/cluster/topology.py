"""Topology analysis: reachability and gateway routing.

The paper's prototype "is not able to forward packets across
heterogeneous networks: all nodes have to be connected two-by-two by a
direct network link" (§6).  These utilities compute, for a given cluster
configuration, which process pairs have a direct network and which need
a gateway — the routing input for the forwarding extension
(:mod:`repro.mpi.devices.ch_mad.forwarding`).
"""

from __future__ import annotations

from collections import deque

from repro.cluster.node import ClusterConfig
from repro.errors import ConfigurationError


def networks_of_ranks(config: ClusterConfig) -> list[frozenset[str]]:
    """Network set of every world rank."""
    out: list[frozenset[str]] = []
    for node in config.nodes:
        for _ in range(node.processes):
            out.append(frozenset(node.networks))
    return out


def direct_protocols(config: ClusterConfig, a: int, b: int) -> frozenset[str]:
    """Protocols shared by ranks ``a`` and ``b`` (empty = no direct link)."""
    nets = networks_of_ranks(config)
    return nets[a] & nets[b]


def reachability_matrix(config: ClusterConfig) -> dict[tuple[int, int], bool]:
    """Which pairs can communicate directly."""
    nets = networks_of_ranks(config)
    size = len(nets)
    return {
        (a, b): bool(nets[a] & nets[b])
        for a in range(size) for b in range(size) if a != b
    }


def compute_gateway_routes(config: ClusterConfig) -> dict[int, dict[int, int]]:
    """Next-hop table for pairs without a direct network.

    Returns ``routes[src][dst] = next_hop`` for every pair that needs
    forwarding, computed by BFS over the connected-by-some-network graph
    (fewest hops; deterministic tie-break by rank).  Pairs with a direct
    network do not appear.  Raises if some pair is unreachable even
    through gateways.
    """
    nets = networks_of_ranks(config)
    size = len(nets)
    neighbours: list[list[int]] = [
        [b for b in range(size) if b != a and nets[a] & nets[b]]
        for a in range(size)
    ]
    routes: dict[int, dict[int, int]] = {}
    for src in range(size):
        # BFS rooted at src, recording the first hop of each shortest path.
        first_hop: dict[int, int] = {}
        seen = {src}
        queue: deque[tuple[int, int | None]] = deque([(src, None)])
        while queue:
            current, hop = queue.popleft()
            for nxt in neighbours[current]:
                if nxt in seen:
                    continue
                seen.add(nxt)
                first_hop[nxt] = hop if hop is not None else nxt
                queue.append((nxt, first_hop[nxt]))
        for dst in range(size):
            if dst == src:
                continue
            if dst not in seen:
                raise ConfigurationError(
                    f"ranks {src} and {dst} cannot reach each other even "
                    "through gateways"
                )
            if dst not in [b for b in neighbours[src]]:
                routes.setdefault(src, {})[dst] = first_hop[dst]
    return routes


def gateway_ranks(config: ClusterConfig) -> list[int]:
    """Ranks that sit on more than one network (candidate gateways)."""
    return [rank for rank, nets in enumerate(networks_of_ranks(config))
            if len(nets) > 1]
