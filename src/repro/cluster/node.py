"""Node specifications and cluster configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.networks.params import MemoryParams, ProtocolParams


@dataclass(frozen=True)
class NodeSpec:
    """One machine in the cluster.

    ``networks`` lists the boards the node has (``"tcp"``, ``"sisci"``,
    ``"bip"``); ``processes`` is how many MPI ranks run on it (the paper's
    nodes are dual-processor, so 2 is natural for SMP experiments).
    """

    name: str
    networks: tuple[str, ...] = ("tcp",)
    processes: int = 1
    #: Native byte order of the node's CPUs ("little" or "big") — the
    #: ADI converts numeric payloads between mixed-endian nodes.
    byte_order: str = "little"

    def __post_init__(self) -> None:
        if self.byte_order not in ("little", "big"):
            raise ConfigurationError(
                f"node {self.name}: byte_order must be 'little' or 'big'"
            )
        if self.processes < 1:
            raise ConfigurationError(f"node {self.name}: processes must be >= 1")
        if len(set(self.networks)) != len(self.networks):
            raise ConfigurationError(f"node {self.name}: duplicate networks")


@dataclass
class ClusterConfig:
    """A full cluster + software configuration for one MPI world."""

    nodes: list[NodeSpec]
    #: Inter-node device: "ch_mad" (the paper) or "ch_p4" (baseline).
    device: str = "ch_mad"
    #: Channel-selection preference override (Figure 9: force traffic
    #: onto one network while others are still polled).
    channel_preference: tuple[str, ...] | None = None
    #: Ablation: per-network eager/rendezvous thresholds instead of the
    #: single elected one.
    per_network_thresholds: bool = False
    #: Ablation: padded fixed-size eager bodies instead of the §4.2.2
    #: header/body split.
    padded_short_packets: bool = False
    #: Extension (paper §6 future work): allow pairs with no common
    #: network to communicate through gateway nodes.
    forwarding: bool = False
    #: ADI heterogeneity management (Fig. 1): convert numeric payloads
    #: between mixed-endian nodes.  Disabling it is an ablation that
    #: delivers raw foreign bytes.
    heterogeneity_conversion: bool = True
    #: Override protocol parameters per network (tests/ablations).
    protocol_params: dict[str, ProtocolParams] = field(default_factory=dict)
    #: Node memory model parameters.
    memory: MemoryParams | None = None
    #: Marcel context-switch cost (ns).
    switch_cost: int = 150
    #: Fault injection plan for the fabrics (implies ``reliable``).
    fault_plan: FaultPlan | None = None
    #: Run the Madeleine reliable transport even on perfect fabrics.
    reliable: bool = False
    #: Enable the rank-failure model (failure detector, heartbeats, ULFM
    #: revoke/shrink/agree API) even without a fault plan that kills
    #: ranks.  A plan containing deaths enables all of this implicitly.
    ft: bool = False
    #: Rendezvous-over-RDMA on IB channels.  Off = packetized ablation:
    #: large messages on IB take the MAD_RNDV_PKT path like any other
    #: network (the baseline the RMA benchmarks compare against).
    rdma: bool = True

    def __post_init__(self) -> None:
        if self.device not in ("ch_mad", "ch_p4"):
            raise ConfigurationError(f"unknown device {self.device!r}")
        if (self.fault_plan is not None or self.reliable or self.ft) \
                and self.device != "ch_mad":
            raise ConfigurationError(
                "fault injection / reliable transport / fault tolerance "
                "live in the Madeleine stack; they require device='ch_mad'"
            )
        if not self.nodes:
            raise ConfigurationError("cluster needs at least one node")
        if self.device == "ch_p4":
            missing = [n.name for n in self.nodes if "tcp" not in n.networks]
            if missing and len(self.nodes) > 1:
                raise ConfigurationError(
                    f"ch_p4 needs TCP on every node; missing on {missing}"
                )

    @property
    def world_size(self) -> int:
        return sum(node.processes for node in self.nodes)

    def node_of_rank(self) -> list[int]:
        """Node index for every world rank (ranks fill nodes in order)."""
        mapping = []
        for index, node in enumerate(self.nodes):
            mapping.extend([index] * node.processes)
        return mapping
