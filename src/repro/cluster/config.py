"""Canned cluster configurations (the paper's hardware setups, §5.1)."""

from __future__ import annotations

from typing import Sequence

from repro.cluster.node import ClusterConfig, NodeSpec


def two_node_cluster(networks: Sequence[str] = ("sisci",),
                     device: str = "ch_mad",
                     active_network: str | None = None,
                     per_network_thresholds: bool = False) -> ClusterConfig:
    """The paper's measurement setup: two nodes, one rank each.

    ``networks`` lists the boards present (all polled under ch_mad);
    ``active_network`` steers all traffic onto one of them — the
    Figure 9 configuration is ``networks=("sisci", "tcp")`` with
    ``active_network="sisci"``.
    """
    networks = tuple(networks)
    preference = None
    if active_network is not None:
        if active_network not in networks:
            raise ValueError(f"{active_network!r} not among {networks}")
        preference = (active_network,) + tuple(
            n for n in networks if n != active_network
        )
    nodes = [NodeSpec(f"node{i}", networks=networks) for i in range(2)]
    return ClusterConfig(nodes=nodes, device=device,
                         channel_preference=preference,
                         per_network_thresholds=per_network_thresholds)


def paper_cluster(nodes: int = 2, networks: Sequence[str] = ("sisci", "tcp"),
                  processes_per_node: int = 1,
                  device: str = "ch_mad") -> ClusterConfig:
    """A homogeneous cluster of ``nodes`` machines."""
    specs = [NodeSpec(f"node{i}", networks=tuple(networks),
                      processes=processes_per_node)
             for i in range(nodes)]
    return ClusterConfig(nodes=specs, device=device)


def smp_node_cluster(nodes: int = 2, processes_per_node: int = 2,
                     networks: Sequence[str] = ("sisci",)) -> ClusterConfig:
    """Dual-processor nodes: exercises ch_self + smp_plug + ch_mad
    together (the three-device structure of Figure 3)."""
    specs = [NodeSpec(f"smp{i}", networks=tuple(networks),
                      processes=processes_per_node)
             for i in range(nodes)]
    return ClusterConfig(nodes=specs, device="ch_mad")


def multirail_smp_cluster(nodes: int = 4, processes_per_node: int = 2,
                          rails: int = 2,
                          network: str = "sisci") -> ClusterConfig:
    """SMP nodes carrying several boards of one network ("rails":
    ``sisci``, ``sisci#1``, ...) — the configuration the node-aware and
    multi-lane collective families exploit."""
    if rails < 1:
        raise ValueError(f"need at least one rail, got {rails}")
    networks = (network,) + tuple(f"{network}#{i}" for i in range(1, rails))
    specs = [NodeSpec(f"n{i}", networks=networks,
                      processes=processes_per_node)
             for i in range(nodes)]
    return ClusterConfig(nodes=specs, device="ch_mad")


def cluster_of_clusters(sci_nodes: int = 2, myrinet_nodes: int = 2,
                        ethernet_everywhere: bool = True) -> ClusterConfig:
    """The paper's motivating meta-cluster (§1): an SCI cluster and a
    Myrinet cluster joined by plain Fast-Ethernet.

    Intra-cluster traffic uses the fast network; cross-cluster traffic
    falls back to TCP — all inside one MPI session, which is the
    capability no other MPICH of the time had.
    """
    base = ("tcp",) if ethernet_everywhere else ()
    specs = [NodeSpec(f"sci{i}", networks=base + ("sisci",))
             for i in range(sci_nodes)]
    specs += [NodeSpec(f"myri{i}", networks=base + ("bip",))
              for i in range(myrinet_nodes)]
    return ClusterConfig(nodes=specs, device="ch_mad")
