"""MPIWorld: assemble a cluster and run MPI programs on it.

Construction order (mirrors an MPI launch over the paper's stack):

1. one :class:`~repro.networks.fabric.NetworkFabric` per distinct network;
2. one :class:`~repro.madeleine.session.MadProcess` per rank, with boards
   for its node's networks;
3. one Madeleine channel per protocol, joining every process with that
   board (ch_mad's one-channel-per-protocol mapping, §4.1);
4. per rank: an :class:`~repro.mpi.environment.MPIEnv`, its ch_self /
   smp_plug / inter-node devices, and MPI_COMM_WORLD;
5. polling threads start (the MPI_Init phase of §4.2.3).

``run(program)`` spawns one main thread per rank executing
``program(env)`` and drives the event loop until every main returns,
then performs the MPI_Finalize teardown (stop pollers, kill daemons).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Generator

from repro.errors import DeadlockError
from repro.madeleine.session import MadeleineSession, MadProcess
from repro.mpi.devices.ch_mad.device import ChMadDevice
from repro.mpi.devices.ch_p4 import ChP4Device
from repro.mpi.devices.ch_self import ChSelfDevice
from repro.mpi.devices.smp_plug import SmpPlugDevice
from repro.mpi.environment import MPIEnv
from repro.mpi.group import Group
from repro.cluster.node import ClusterConfig
from repro.networks.memory import MemoryModel
from repro.sim.engine import Engine, EngineConfig

#: A program is a callable taking the rank's MPIEnv and returning a
#: generator coroutine.
Program = Callable[[MPIEnv], Generator]


class MPIWorld:
    """One MPI job on one simulated cluster."""

    def __init__(self, config: ClusterConfig,
                 engine_config: EngineConfig | None = None):
        self.config = config
        #: One declarative object configures everything optional about
        #: the engine (seed, instrumentation, checker, fuzzing, trace
        #: sink) — see :class:`~repro.sim.engine.EngineConfig`.
        self.engine_config = engine_config
        engine = Engine(config=engine_config) if engine_config else None
        self.session = MadeleineSession(engine=engine,
                                        fault_plan=config.fault_plan,
                                        reliable=config.reliable,
                                        ft=config.ft)
        self.engine: Engine = self.session.engine
        self.envs: list[MPIEnv] = []
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        # One shared tuple for the whole world: MPIEnv keeps whatever
        # tuple it is handed (tuple(t) is t), so converting here makes
        # the locality map O(ranks) total instead of one private
        # O(ranks) copy per env — 8 MiB of pure duplication at 1024
        # ranks before this.
        node_of_rank = tuple(config.node_of_rank())
        memory = MemoryModel(config.memory) if config.memory else None

        # Fabrics for every network present anywhere (+ TCP for ch_p4).
        protocols: set[str] = set()
        for node in config.nodes:
            protocols.update(node.networks)
        if config.device == "ch_p4":
            protocols.add("tcp")
        for protocol in sorted(protocols):
            params = config.protocol_params.get(protocol)
            self.session.add_fabric(protocol, params=params)

        # Processes (ranks fill nodes in order).
        processes: list[MadProcess] = []
        for node_index, node in enumerate(config.nodes):
            for local in range(node.processes):
                nets = node.networks if config.device == "ch_mad" else ()
                process = self.session.add_process(
                    networks=nets,
                    name=f"{node.name}.p{local}",
                    memory=memory,
                    switch_cost=config.switch_cost,
                )
                processes.append(process)

        # Madeleine channels: one per protocol with >= 2 members (ch_mad).
        channels = {}
        if config.device == "ch_mad":
            for protocol in sorted(protocols):
                members = [p.rank for p in processes
                           if protocol in p.protocols()]
                if len(members) >= 2:
                    channels[protocol] = self.session.new_channel(
                        protocol, protocol, ranks=members
                    )

        # The death controller learns the locality map so a surviving
        # node-mate of a victim is told by the (simulated) OS, not by
        # network silence the shared-memory device never produces.
        if self.session.death_controller is not None:
            self.session.death_controller.node_of_rank = {
                rank: node for rank, node in enumerate(node_of_rank)
            }

        # MPI environments and devices.  The world group is built once
        # and shared by every rank's MPI_COMM_WORLD: Group is immutable,
        # and per-env groups were the single largest construction cost
        # (32 MiB of identical tuples at 1024 ranks).
        world_group = Group(range(len(node_of_rank)))
        for process in processes:
            node = config.nodes[node_of_rank[process.rank]]
            env = MPIEnv(
                process, process.rank, node_of_rank,
                byte_order=node.byte_order,
                heterogeneity_conversion=config.heterogeneity_conversion,
            )
            if self.session.detector is not None:
                from repro.mpi.ft import FTState
                # Installed before make_comm_world so every communicator
                # registers with the FT layer from birth.
                env.ft = FTState(env, self.session.detector)
            self.envs.append(env)

        ranks_by_node: dict[int, list[int]] = defaultdict(list)
        for rank, node_index in enumerate(node_of_rank):
            ranks_by_node[node_index].append(rank)

        smp_devices: dict[int, SmpPlugDevice] = {}
        for env in self.envs:
            self_device = ChSelfDevice(env.progress)
            smp_device = None
            if len(ranks_by_node[env.node]) > 1:
                smp_device = SmpPlugDevice(env.progress, env.rank)
                smp_devices[env.rank] = smp_device
            inter_device = self._make_inter_device(env, channels)
            env.install_devices(self_device, smp_device, inter_device)
            env.make_comm_world(world_group)

        # Wire up smp peers and start everything.
        for rank, device in smp_devices.items():
            node = node_of_rank[rank]
            peers = {r: smp_devices[r] for r in ranks_by_node[node]}
            device.connect(peers)
            device.start()
        # One shared all-to-all peer map for every ch_p4 device (it was
        # rebuilt and copied per rank: O(ranks²) dict entries).
        p4_peers = {e.rank: e.inter_device for e in self.envs
                    if isinstance(e.inter_device, ChP4Device)}
        for env in self.envs:
            inter = env.inter_device
            if isinstance(inter, ChP4Device):
                inter.connect(p4_peers, shared=True)
            if inter is not None:
                inter.start()
        if self.session.detector is not None:
            for env in self.envs:
                if isinstance(env.inter_device, ChMadDevice):
                    env.inter_device.start_heartbeats(self.session.detector)
                if env.ft is not None:
                    env.ft.start()

    def _make_inter_device(self, env: MPIEnv, channels: dict):
        config = self.config
        if config.world_size == 1 or len(set(config.node_of_rank())) == 1:
            # Single node: no inter-node device needed.
            return None
        if config.device == "ch_p4":
            return ChP4Device(env.progress, env.rank,
                              self.session.fabrics["tcp"])
        ports = {}
        for protocol, channel in channels.items():
            if env.rank in channel.ports:
                ports[protocol] = channel.port(env.rank)
        if not ports:
            return None
        forward_routes = None
        if config.forwarding:
            from repro.cluster.topology import compute_gateway_routes
            forward_routes = compute_gateway_routes(config).get(env.rank, {})
        return ChMadDevice(
            env.progress, env.rank, ports,
            per_network_thresholds=config.per_network_thresholds,
            preference=config.channel_preference,
            forward_routes=forward_routes,
            padded_short_packets=config.padded_short_packets,
            rdma_rendezvous=config.rdma,
        )

    # -- execution ----------------------------------------------------------------

    def run(self, program: Program, max_events: int | None = None) -> list[Any]:
        """Run ``program(env)`` on every rank; returns per-rank results.

        Raises :class:`DeadlockError` if the event queue drains while some
        rank's main thread is still blocked (a hung MPI job).
        """
        mains = []
        # Completion is counted by a per-task done callback instead of
        # scanning every main's state once per engine event (the scan was
        # ~12 % of profiled run() time on the figure benchmarks).  The
        # callback flips ``stopped`` when the last main returns; the
        # engine's batch sweep re-checks that flag between events, so the
        # run stops at exactly the event boundary the old one-step-at-a-
        # time loop stopped at (nothing executes after the last main
        # finishes and before shutdown's finalize audit).
        remaining = len(self.envs)
        stopped = [False]

        def _main_done(_task) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                stopped[0] = True

        for env in self.envs:
            task = env.process.runtime.spawn(program(env),
                                             name=f"rank{env.rank}.main")
            task.add_done_callback(_main_done)
            mains.append(task)
        executed = 0
        step_batch = self.engine.step_batch
        while not stopped[0]:
            limit = 4096
            if max_events is not None:
                budget = max_events - executed
                if budget <= 0:
                    raise self._deadlock(
                        f"exceeded max_events={max_events} with ranks still "
                        "running", mains)
                limit = min(limit, budget)
            n = step_batch(limit, stopped)
            executed += n
            if n == 0 and not stopped[0]:
                stuck = sum(1 for t in mains if not t.finished)
                raise self._deadlock(
                    f"MPI job hung: event queue drained with {stuck} "
                    "rank(s) still blocked", mains)
        self.shutdown()
        return [task.result for task in mains]

    def _deadlock(self, message: str, mains) -> DeadlockError:
        """Build a DeadlockError with the wait-for-graph diagnosis.

        The rank-level graph comes from the blocked-reason metadata every
        blocking primitive leaves on its waitable (see
        :mod:`repro.check.waitgraph`); when the waits form a cycle, the
        error names it rank by rank.
        """
        from repro.check.waitgraph import diagnose

        stuck = [t for t in mains if not t.finished]
        diag = diagnose(self.envs)
        return DeadlockError(
            message, blocked=[t.name for t in stuck],
            waiting={t.name: t.waiting_description() for t in stuck},
            cycle=diag.cycle_ranks, diagnosis=diag.text,
        )

    def shutdown(self) -> None:
        """MPI_Finalize: stop device polling threads, drain the engine."""
        for env in self.envs:
            if env.ft is not None:
                # Withdraw the FT control listeners' pending receives
                # before the leak audit: they are infrastructure, not
                # application requests.
                env.ft.stop()
        checker = self.engine.checker
        if checker.enabled:
            # Leak audit before teardown frees everything: leftover
            # requests, unexpected messages, sync structures, gate
            # tickets, unacknowledged rendezvous sends.
            for env in self.envs:
                checker.on_finalize(env)
            checker.on_world_finalize()
        for env in self.envs:
            env.shutdown()
        self.engine.run()
        cfg = self.engine_config
        if cfg is not None and cfg.trace_sink \
                and self.engine.instruments.enabled:
            self.engine.instruments.export_chrome_trace(cfg.trace_sink)

    @property
    def world_size(self) -> int:
        return self.config.world_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MPIWorld size={self.world_size} device={self.config.device}>"
