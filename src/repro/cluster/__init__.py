"""Cluster construction and MPI program execution.

- :mod:`~repro.cluster.node` — node specifications and cluster configs;
- :mod:`~repro.cluster.topology` — builders for the paper's hardware
  setups, including heterogeneous clusters of clusters;
- :mod:`~repro.cluster.config` — canned configurations used by the
  benchmarks and examples;
- :mod:`~repro.cluster.session` — :class:`MPIWorld`, which assembles
  fabrics, processes, Madeleine channels, devices and MPI environments,
  and runs program coroutines to completion.
"""

from repro.cluster.node import ClusterConfig, NodeSpec
from repro.cluster.session import MPIWorld
from repro.sim.engine import EngineConfig
from repro.cluster.config import (
    cluster_of_clusters,
    multirail_smp_cluster,
    paper_cluster,
    smp_node_cluster,
    two_node_cluster,
)

__all__ = [
    "ClusterConfig",
    "EngineConfig",
    "MPIWorld",
    "NodeSpec",
    "cluster_of_clusters",
    "multirail_smp_cluster",
    "paper_cluster",
    "smp_node_cluster",
    "two_node_cluster",
]
