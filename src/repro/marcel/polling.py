"""Network polling threads (paper §3.3 and §4.2.3).

The paper assigns one Marcel thread to poll each Madeleine channel, with a
per-protocol polling *frequency*: "low latency networks with cheap polling
mechanisms [are] polled more frequently than TCP-like networks only
providing the expensive select system call".

Two polling modes model that split:

- :attr:`PollMode.EVENT` — SCI/BIP style.  Detection is a cheap memory
  flag that Marcel's idle loop checks continuously; we model it as an
  event-driven wake (the NIC posts into a mailbox) plus a per-message
  poll cost.  Detection latency is the scheduler latency, near zero when
  the CPU is idle — exactly the behaviour the paper credits Marcel for.
- :attr:`PollMode.PERIODIC` — TCP style.  The thread charges
  ``poll_cost`` (the select call) every ``period`` whether or not traffic
  arrives.  This standing cost is the source of the multi-protocol
  interference measured in the paper's Figure 9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.sim.coroutines import charge, clock_sleep, sleep, wait
from repro.sim.cpu import Task
from repro.sim.sync import Mailbox
from repro.marcel.thread import MarcelRuntime

#: A handler is a generator function consuming one delivered item; it may
#: charge CPU, block, and spawn temporary threads via its closure.
Handler = Callable[[Any], Generator]


class PollMode(enum.Enum):
    """How arrivals on a channel are detected."""

    EVENT = "event"        # cheap flag check, wake-on-arrival (SCI, BIP)
    PERIODIC = "periodic"  # expensive periodic syscall (TCP select)


@dataclass
class PollSource:
    """What a polling thread watches.

    ``mailbox`` receives delivered items from the NIC model.  For
    :attr:`PollMode.PERIODIC` sources the mailbox is still the hand-off
    queue, but the thread only looks at it every ``period`` ns and pays
    ``poll_cost`` per look; for :attr:`PollMode.EVENT` sources the thread
    blocks on the mailbox and pays ``poll_cost`` per *item*.
    """

    name: str
    mode: PollMode
    mailbox: Mailbox
    poll_cost: int   # ns charged per poll (EVENT: per item; PERIODIC: per tick)
    period: int = 0  # ns between polls (PERIODIC only)
    #: Poll interval while the CPU has nothing else to run.  Marcel folds
    #: polling into its idle loop (§3.3), so an otherwise-idle process
    #: polls much more often than the contended-period; 0 = same as
    #: ``period``.
    idle_period: int = 0

    def __post_init__(self) -> None:
        if self.mode is PollMode.PERIODIC and self.period <= 0:
            raise ValueError(f"periodic source {self.name} needs period > 0")


class PollingThread:
    """One persistent polling thread bound to one poll source.

    The handler runs *inline* in the polling thread (charging its costs on
    the shared CPU).  Per the paper's deadlock rule, a handler must never
    perform a blocking send itself; it spawns a temporary thread instead —
    that discipline is the device's responsibility (see
    :mod:`repro.mpi.devices.ch_mad.polling`).
    """

    def __init__(self, runtime: MarcelRuntime, source: PollSource,
                 handler: Handler):
        self.runtime = runtime
        self.source = source
        self.handler = handler
        self.items_handled = 0
        self.polls = 0
        self.task: Task = runtime.spawn(
            self._body(), name=f"poll.{source.name}", daemon=True
        )
        checker = runtime.engine.checker
        if checker.enabled:
            # §4.2.3 discipline: the checker flags any send performed
            # from a registered polling thread.
            checker.register_poller(self.task, source.name)

    def _body(self) -> Generator:
        if self.source.mode is PollMode.EVENT:
            return self._event_body()
        return self._periodic_body()

    def _event_body(self) -> Generator:
        mailbox = self.source.mailbox
        cost = self.source.poll_cost
        engine = self.runtime.engine
        while True:
            item = yield wait(mailbox)
            self.polls += 1
            ins = engine.instruments
            if ins.enabled:
                ins.count("poll.wakeups", 1, source=self.source.name,
                          mode="event")
                ins.emit("poll.wake", thread=self.source.name, mode="event")
            if cost:
                yield charge(cost)
            self.items_handled += 1
            yield from self.handler(item)

    def _periodic_body(self) -> Generator:
        mailbox = self.source.mailbox
        cost = self.source.poll_cost
        period = self.source.period
        idle_period = self.source.idle_period or period
        cpu = self.runtime.cpu
        engine = self.runtime.engine
        fuzz = engine.fuzz
        if fuzz is not None:
            # Schedule fuzzing: offset this poller's first tick.  A
            # periodic poller's phase is an accident of start-up order;
            # protocol correctness must not depend on it.
            offset = fuzz.poller_phase(self.source.name)
            if offset:
                yield sleep(offset)
        while True:
            self.polls += 1
            ins = engine.instruments
            if ins.enabled:
                ins.count("poll.wakeups", 1, source=self.source.name,
                          mode="periodic")
            if cost:
                yield charge(cost)
            handled_any = False
            while len(mailbox) > 0:
                handled_any = True
                got, item = mailbox._try_acquire(None)  # non-blocking: queue non-empty
                assert got
                self.items_handled += 1
                if ins.enabled:
                    ins.emit("poll.wake", thread=self.source.name,
                             mode="periodic")
                yield from self.handler(item)
            if not handled_any:
                # Marcel idle-loop integration: poll tightly while nothing
                # else wants the CPU, back off to the full period otherwise.
                busy = cpu.ready_count() > 0
                pause = period if busy else idle_period
                if ins.enabled:
                    ins.count("poll.idle_ns", pause, source=self.source.name)
                if busy:
                    yield sleep(pause)
                    continue
                # The mailbox is empty right now (handled_any is False and
                # the drain loop above saw it empty), so this wake is a
                # pure self-clock tick until some *other* engine event
                # posts — file it as one (clock_sleep) so peer pollers'
                # fast-forwards can see past it.
                skipped = self._idle_skip(pause)
                if skipped:
                    # Idle-poll fast-forward: absorb `skipped` whole
                    # wake/charge/check cycles into one sleep, with
                    # identical bookkeeping (see _idle_skip).
                    yield clock_sleep(pause + skipped * (pause + cost))
                else:
                    yield clock_sleep(pause)

    def _idle_skip(self, pause: int) -> int:
        """Idle ticks that provably find an empty mailbox — skip them.

        With the CPU otherwise idle and the mailbox empty, the poll loop
        is a fixed-period self-clock: wake, charge ``poll_cost``, find
        the mailbox empty, sleep ``pause``.  Nothing can change its
        inputs before the next *payload* event fires (every arrival and
        every wake of a competing task is an engine event;
        ``Engine.next_payload_time`` excludes peer pollers' own
        self-clock ticks, which provably cannot touch this CPU or this
        mailbox), so each tick whose mailbox *check* lands strictly
        before that event is pure overhead: ~480k events per figure6
        series in the pre-fast-forward profile.

        This computes how many such ticks are ahead, performs their
        bookkeeping arithmetically — same ``polls``, same per-task
        ``cpu_time`` and CPU ``busy_time``, same ``poll.wakeups`` /
        ``poll.idle_ns`` counter totals — and returns the count; the
        caller folds them into one long sleep.  Virtual time, metrics
        and traces are bit-identical to ticking through; only
        ``events_executed`` (a diagnostic) shrinks.
        """
        engine = self.runtime.engine
        next_event = engine.next_payload_time(self.runtime.cpu)
        if next_event is None:
            return 0
        cost = self.source.poll_cost
        cycle = pause + cost
        # Checks happen at now + i*cycle (i >= 1); each skipped check must
        # precede the next real event *strictly* (an event at exactly the
        # check time could post to the mailbox first by seq order).
        skipped = (next_event - 1 - engine.now) // cycle
        if skipped <= 0:
            return 0
        self.polls += skipped
        if cost:
            burned = skipped * cost
            task = self.task
            task.cpu_time += burned
            task.cpu.busy_time += burned
        ins = engine.instruments
        if ins.enabled:
            ins.count("poll.wakeups", skipped, source=self.source.name,
                      mode="periodic")
            ins.count("poll.idle_ns", skipped * pause, source=self.source.name)
        return skipped

    def stop(self) -> None:
        """Kill the polling thread (session teardown)."""
        self.task.kill()
