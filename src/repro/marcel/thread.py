"""Marcel threads: named cooperative threads inside one simulated process."""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.sim.coroutines import sleep, wait
from repro.sim.cpu import CPU, Task, TaskBody
from repro.sim.engine import Engine


class MarcelRuntime:
    """The thread runtime of one simulated process.

    Each MPI rank owns one runtime; the paper's thread population maps
    directly onto it: the persistent *main* (MPI control) thread, one
    persistent polling thread per Madeleine channel, and temporary threads
    for non-blocking sends and rendezvous request/acknowledgement
    processing (§4.2.3).

    ``switch_cost`` models the user-level context-switch time (Marcel's is
    sub-microsecond; default 150 ns).  Temporary-thread creation cost is
    not charged here — the calibrated handling constants of the devices
    include it, which keeps calibration in one place.
    """

    def __init__(self, engine: Engine, name: str, switch_cost: int = 150):
        self.engine = engine
        self.name = name
        self.cpu = CPU(engine, name=f"{name}.cpu", switch_cost=switch_cost)
        self._spawn_seq = 0

    def spawn(self, body: TaskBody | Callable[[], TaskBody],
              name: str | None = None, daemon: bool = False,
              recyclable: bool = False) -> Task:
        """Start a thread running ``body`` (a generator or generator fn)."""
        self._spawn_seq += 1
        label = f"{self.name}.{name or 'thread'}#{self._spawn_seq}"
        return self.cpu.spawn(body, name=label, daemon=daemon,
                              recyclable=recyclable)

    def spawn_temporary(self, body: TaskBody | Callable[[], TaskBody],
                        name: str, recycle: bool = True) -> Task:
        """Spawn one of the paper's *temporary* threads (isend, rndv ops).

        Temporary threads are daemons: if the application exits while one
        is still draining, it must not be reported as a deadlock.

        By default the Task shell is *recyclable* through the CPU's
        free-list once it finishes — million-message runs spawn a
        temporary thread per isend/rendezvous op, and without pooling
        every shell lived until finalize.  Callers that retain the
        returned handle to join it later must pass ``recycle=False``
        (see ``CPU.spawn``).

        Under schedule fuzzing (see repro.check.fuzz) the thread's start
        is jittered by a seeded delay — temporary threads carry no timing
        contract, only ordering ones (send gates, rendezvous flags), so
        any jitter is a legal schedule.
        """
        fuzz = self.engine.fuzz
        if fuzz is not None:
            jitter = fuzz.spawn_jitter()
            if jitter:
                body = self._jittered(jitter, body)
        return self.spawn(body, name=name, daemon=True, recyclable=recycle)

    @staticmethod
    def _jittered(delay: int,
                  body: TaskBody | Callable[[], TaskBody]) -> TaskBody:
        if callable(body) and not hasattr(body, "send"):
            body = body()

        def wrapper() -> TaskBody:
            yield sleep(delay)
            result = yield from body
            return result

        return wrapper()

    @staticmethod
    def join(task: Task) -> Generator[Any, Any, Any]:
        """Generator helper: block until ``task`` finishes, return its result.

        Usage from a thread body: ``result = yield from MarcelRuntime.join(t)``.
        """
        result = yield wait(task)
        return result

    def live_threads(self) -> list[Task]:
        """Threads that have not finished (diagnostics / teardown)."""
        return self.cpu.live_tasks()

    def kill_daemons(self) -> int:
        """Terminate all live daemon threads (MPI_Finalize teardown).

        Returns the number of threads killed.
        """
        killed = 0
        for task in self.cpu.live_tasks():
            if task.daemon:
                task.kill()
                killed += 1
        return killed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MarcelRuntime {self.name} live={len(self.live_threads())}>"
