"""Marcel — the user-level multi-threading library (simulated).

The real Marcel is PM2's user-level thread package; the paper relies on it
for (a) cheap thread creation/destruction/yield, (b) cooperative scheduling
inside one process, and (c) tight integration of network polling with the
scheduler (§3.3).  This package provides the same facilities on top of the
:mod:`repro.sim` kernel:

- :class:`~repro.marcel.thread.MarcelRuntime`: one per simulated process;
  owns the process's CPU and spawns named threads.
- :class:`~repro.marcel.polling.PollingThread`: the per-channel polling
  threads of §4.2.3, with per-protocol polling mode/frequency/cost —
  cheap event-driven polling for SCI/BIP-style NICs, periodic ``select``
  polling for TCP.
"""

from repro.marcel.polling import PollMode, PollingThread, PollSource
from repro.marcel.thread import MarcelRuntime

__all__ = ["MarcelRuntime", "PollMode", "PollSource", "PollingThread"]
