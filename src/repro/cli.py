"""``python -m repro`` — the one front door to the reproduction.

Subcommands:

``run``
    Execute one job (any registered :mod:`repro.runner.jobs` kind) and
    print its JSON payload — the smallest unit of work the batch runner
    schedules, exposed for scripting and debugging.  ``--workload NAME``
    is sugar for the ``workload`` kind: it runs any workload in the
    unified registry (:mod:`repro.workloads`), micro or macro, with
    ``-p``/``--ranks`` overrides resolved against the workload's own
    parameter schema.
``sweep``
    Run one figure's measurement jobs through the parallel runner and
    render the figure; can check (or record) golden digests so CI can
    prove parallel == serial bit-for-bit.
``fuzz``
    The schedule-fuzz sweep (previously ``python -m repro.check.fuzz``;
    same flags and output, plus ``--workers``/``--cache``).
``report``
    Reproduce the paper's tables and figures (previously
    ``examples/reproduce_paper.py``).

Every subcommand shares ``--workers N`` (process fan-out) and
``--cache DIR`` (content-addressed result cache; ``REPRO_CACHE_DIR``
sets the default directory for ``--cache`` with no argument).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Sequence

from repro.runner import (
    JobSpec,
    ResultCache,
    Runner,
    default_cache_dir,
    default_workers,
)


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU; default 1)")
    parser.add_argument("--cache", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="content-addressed result cache directory "
                             "(no argument: $REPRO_CACHE_DIR or "
                             ".repro-cache)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-job progress lines to stderr")


def _make_runner(args) -> Runner:
    cache = None
    if args.cache is not None:
        cache = ResultCache(args.cache) if args.cache else \
            ResultCache(default_cache_dir())
    workers = args.workers if args.workers > 0 else default_workers()
    out = (lambda line: print(line, file=sys.stderr)) if args.progress \
        else None
    return Runner(workers=workers, cache=cache, out=out)


def _parse_sizes(text: str | None) -> list[int] | None:
    if not text:
        return None
    return [int(part) for part in text.replace(",", " ").split()]


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _parse_param(text: str):
    """``key=value`` with JSON-decoded values (bare words stay strings)."""
    key, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"parameter {text!r} is not of the form key=value")
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def cmd_run(args) -> int:
    import repro.workloads as workloads
    from repro.runner.jobs import EXECUTORS

    if args.list:
        print("job kinds:")
        for kind in sorted(EXECUTORS):
            print(f"  {kind}")
        print("workloads (--workload NAME):")
        for name in workloads.names():
            wl = workloads.get(name)
            tags = ",".join(sorted(wl.tags))
            print(f"  {name:16s} [{tags}] {wl.description}")
        return 0
    if args.workload and args.kind:
        print("error: give either a job kind or --workload, not both",
              file=sys.stderr)
        return 2
    if not args.kind and not args.workload:
        print("error: a job kind or --workload is required (see --list)",
              file=sys.stderr)
        return 2
    params = dict(args.param or ())
    if args.ranks is not None:
        # Sugar for the common scaling knob: equivalent to -p ranks=N on
        # workloads and job kinds that take a world size.
        params["ranks"] = args.ranks
    kind = args.kind
    if args.workload:
        kind = "workload"
        params["workload"] = args.workload
        if args.check:
            params["check"] = True
        if args.metrics:
            params["metrics"] = True
        # Fail on typo'd names/params before a spec digest is minted.
        workloads.get(args.workload).resolve(
            {k: v for k, v in params.items()
             if k not in ("workload", "check", "metrics")})
    spec = JobSpec(kind=kind, params=params, seed=args.seed)
    runner = _make_runner(args)
    result = runner.run([spec])[0]
    if not result.ok:
        print(f"job {spec.display} failed: {result.error}", file=sys.stderr)
        return 1
    json.dump({"job": spec.canonical(), "digest": spec.digest,
               "result_digest": result.result_digest, "cached": result.cached,
               "payload": result.payload}, sys.stdout, indent=2,
              sort_keys=True)
    print()
    return 0


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------

def _figure_digests(plan, runner: Runner) -> tuple[dict[str, str], list]:
    """Run a plan's jobs; return {job digest: result digest} plus results."""
    results = runner.run(plan.jobs())
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"job {r.spec.display} failed: {r.error}", file=sys.stderr)
        raise SystemExit(1)
    return {r.digest: r.result_digest for r in results}, results


def cmd_sweep(args) -> int:
    from repro.bench.figures import FIGURES, assemble_figure

    if args.list:
        for name in sorted(FIGURES):
            print(name)
        return 0
    if not args.figure:
        print("error: a figure name is required (see --list)",
              file=sys.stderr)
        return 2
    if args.figure not in FIGURES:
        print(f"error: unknown figure {args.figure!r}; known: "
              f"{sorted(FIGURES)}", file=sys.stderr)
        return 2
    plan = FIGURES[args.figure](_parse_sizes(args.sizes))
    runner = _make_runner(args)
    digests, results = _figure_digests(plan, runner)

    if args.write_goldens:
        with open(args.write_goldens, "w") as fh:
            json.dump({"figure": plan.name, "sizes": list(plan.sizes),
                       "jobs": digests}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(digests)} golden digests to {args.write_goldens}")

    status = 0
    if args.goldens:
        with open(args.goldens) as fh:
            golden = json.load(fh)
        mismatches = []
        for job_digest, want in golden["jobs"].items():
            got = digests.get(job_digest)
            if got != want:
                mismatches.append((job_digest, want, got))
        extra = set(digests) - set(golden["jobs"])
        if mismatches or extra:
            for job_digest, want, got in mismatches:
                print(f"MISMATCH job {job_digest[:12]}: golden "
                      f"{want[:12]} != measured "
                      f"{(got or 'missing')[:12]}", file=sys.stderr)
            if extra:
                print(f"{len(extra)} job(s) not present in goldens",
                      file=sys.stderr)
            status = 1
        else:
            print(f"all {len(golden['jobs'])} result digests match "
                  f"{args.goldens}")

    if not args.quiet:
        print(assemble_figure(plan, results).render())
    return status


# ---------------------------------------------------------------------------
# fuzz (the old repro.check.fuzz CLI, runner-backed)
# ---------------------------------------------------------------------------

def cmd_fuzz(args) -> int:
    import repro.workloads as registry
    from repro.check.fuzz import run_sweep

    fuzzable = registry.names("fuzz")
    if args.list:
        for name in fuzzable:
            print(f"{name:16s} {registry.get(name).description}")
        return 0

    workloads = args.workloads or fuzzable
    unknown = [w for w in workloads if w not in registry.WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s) {unknown}; known: "
              f"{sorted(registry.WORKLOADS)}", file=sys.stderr)
        return 2
    if args.seed is not None:
        seeds: Sequence[int] = [args.seed]
    else:
        seeds = range(args.base_seed, args.base_seed + args.seeds)
    runner = _make_runner(args)
    failures = run_sweep(
        workloads, seeds, workload_seed=args.workload_seed,
        artifacts_dir=args.artifacts, workers=runner.workers,
        cache=runner.cache,
        progress=(lambda line: print(line, file=sys.stderr))
        if args.progress else None)
    total = len(workloads) * len(list(seeds))
    if failures:
        print(f"\n{len(failures)}/{total} runs failed")
        return 1
    print(f"\nall {total} runs clean")
    return 0


# ---------------------------------------------------------------------------
# report (the old examples/reproduce_paper.py)
# ---------------------------------------------------------------------------

def cmd_report(args) -> int:
    from repro.bench import figures
    from repro.bench.report import format_paper_checks

    runner = _make_runner(args)

    def run_tables():
        print(format_paper_checks(figures.table1_checks(runner),
                                  "Table 1: raw Madeleine (latency @4 B, "
                                  "bandwidth @8 MB)"))
        print()
        print(format_paper_checks(figures.table2_checks(runner),
                                  "Table 2: ch_mad summary (0 B / 4 B "
                                  "latency, 8 MB bandwidth)"))
        print()

    def run_figure(plan_builder):
        print(figures.build_figure(plan_builder(None), runner).render())
        print()

    targets_by_name: dict[str, Callable[[], None]] = {
        "tables": run_tables,
        "fig6": lambda: run_figure(figures.figure6_plan),
        "fig7": lambda: run_figure(figures.figure7_plan),
        "fig8": lambda: run_figure(figures.figure8_plan),
        "fig9": lambda: run_figure(figures.figure9_plan),
    }
    targets = args.targets or list(targets_by_name)
    unknown = [t for t in targets if t not in targets_by_name]
    if unknown:
        print(f"unknown targets {unknown}; pick from "
              f"{list(targets_by_name)}", file=sys.stderr)
        return 2
    start = time.time()
    for target in targets:
        print(f"### {target} " + "#" * (60 - len(target)))
        targets_by_name[target]()
    print(f"(wall time: {time.time() - start:.1f} s — every number above "
          "came out of the discrete-event simulation, except the four "
          "closed-source comparators, which are analytic curves "
          "calibrated to the paper's own figures)")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MPICH/Madeleine reproduction: run, sweep, fuzz, "
                    "report.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="execute one job and print its JSON payload")
    p_run.add_argument("kind", nargs="?", help="job kind (see --list)")
    p_run.add_argument("--workload", default=None, metavar="NAME",
                       help="run a registered workload (sugar for the "
                            "'workload' job kind; see --list)")
    p_run.add_argument("--check", action="store_true",
                       help="with --workload: run under the online "
                            "semantics checker")
    p_run.add_argument("--metrics", action="store_true",
                       help="with --workload: report the workload's "
                            "metrics of interest")
    p_run.add_argument("--param", "-p", action="append", type=_parse_param,
                       metavar="KEY=VALUE",
                       help="job parameter (JSON value or bare string); "
                            "repeatable")
    p_run.add_argument("--ranks", type=int, default=None, metavar="N",
                       help="world size for workloads and jobs that take "
                            "one (shorthand for -p ranks=N)")
    p_run.add_argument("--seed", type=int, default=0,
                       help="spec seed (default 0)")
    p_run.add_argument("--list", action="store_true",
                       help="list registered job kinds and exit")
    _add_runner_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run one figure's jobs (parallel/cached) and "
                      "render it")
    p_sweep.add_argument("figure", nargs="?",
                         help="figure name (see --list)")
    p_sweep.add_argument("--sizes", default=None,
                         help="comma-separated message sizes "
                              "(default: the figure's paper grid)")
    p_sweep.add_argument("--goldens", default=None, metavar="FILE",
                         help="check result digests against this golden "
                              "file; non-zero exit on mismatch")
    p_sweep.add_argument("--write-goldens", default=None, metavar="FILE",
                         help="record job->result digests to FILE")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="skip rendering the figure tables")
    p_sweep.add_argument("--list", action="store_true",
                         help="list figure names and exit")
    _add_runner_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz MPI schedules under the online semantics "
                     "checker")
    p_fuzz.add_argument("--workload", action="append", dest="workloads",
                        help="workload(s) to run (default: all)")
    p_fuzz.add_argument("--seed", type=int, default=None,
                        help="run this single fuzz seed (repro mode)")
    p_fuzz.add_argument("--seeds", type=int, default=25,
                        help="sweep this many fuzz seeds (default 25)")
    p_fuzz.add_argument("--base-seed", type=int, default=0,
                        help="first fuzz seed of the sweep (default 0)")
    p_fuzz.add_argument("--workload-seed", type=int, default=0,
                        help="seed for the workload's own traffic schedule")
    p_fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write a trace artifact per failure into DIR")
    p_fuzz.add_argument("--list", action="store_true",
                        help="list bundled workloads and exit")
    _add_runner_args(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_report = sub.add_parser(
        "report", help="reproduce the paper's tables and figures")
    p_report.add_argument("targets", nargs="*",
                          help="tables fig6 fig7 fig8 fig9 (default: all)")
    _add_runner_args(p_report)
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
