"""Structured tracing for simulations.

A :class:`Tracer` collects timestamped records; models call
``tracer.emit(category, **fields)`` at interesting points (message sent,
poll fired, protocol switch).  Tracing is off by default and adds no
per-event cost when disabled, so benchmarks are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - annotation only, no runtime cycle
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: int
    category: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` objects while enabled."""

    engine: Engine
    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)
    #: Optional live sink called with each record (e.g. print for debugging).
    sink: Callable[[TraceRecord], None] | None = None

    def emit(self, category: str, **fields: Any) -> None:
        """Record an event if tracing is enabled."""
        if not self.enabled:
            return
        record = TraceRecord(self.engine.now, category, fields)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def select(self, category: str, **match: Any) -> list[TraceRecord]:
        """All records of ``category`` whose fields match ``match``."""
        out = []
        for rec in self.records:
            if rec.category != category:
                continue
            if all(rec.fields.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def categories(self) -> set[str]:
        return {rec.category for rec in self.records}

    def clear(self) -> None:
        self.records.clear()


class NullTracer:
    """A tracer that ignores everything — default when tracing is off."""

    enabled = False

    def emit(self, category: str, **fields: Any) -> None:
        pass

    def select(self, category: str, **match: Any) -> list[TraceRecord]:
        return []

    def categories(self) -> set[str]:
        return set()

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


def span_durations(records: Iterable[TraceRecord], start: str, end: str,
                   key: str) -> dict[Any, int]:
    """Pair ``start``/``end`` records by ``fields[key]`` -> duration map."""
    starts: dict[Any, int] = {}
    durations: dict[Any, int] = {}
    for rec in records:
        ident = rec.fields.get(key)
        if rec.category == start:
            starts[ident] = rec.time
        elif rec.category == end and ident in starts:
            durations[ident] = rec.time - starts.pop(ident)
    return durations
