"""Synchronization primitives for simulated tasks.

All primitives follow one protocol: a task yields ``wait(primitive)``; the
scheduler calls ``_try_acquire(task)`` which either succeeds immediately or
registers the task as a waiter.  Signalling wakes waiters in FIFO order via
``task.cpu.make_ready`` — waking is therefore correct across CPUs, which the
rendezvous protocol relies on (the sender-side thread releases a semaphore
that a receiver-side thread on a different node blocks on is *not* done —
all cross-node signalling goes through the network models; these primitives
are only shared between threads of one simulated process).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Iterable, Protocol

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cpu import Task


class Waitable(Protocol):
    """Anything a task may block on."""

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        """Return ``(True, value)`` if available now, else register waiter."""
        ...  # pragma: no cover


def _pop_live(waiters: deque) -> "Task | None":
    """Pop the first waiter that is still alive (killed tasks are skipped)."""
    while waiters:
        task = waiters.popleft()
        if not task.finished:
            return task
    return None


class Semaphore:
    """Counting semaphore.  ``wait(sem)`` is P, :meth:`release` is V.

    This is the direct analogue of the ``marcel_sem_t`` used by ch_mad's
    rendezvous sync structure: the receiving main thread P()s on it and the
    polling thread V()s it when the data message lands (§4.2.2).
    """

    def __init__(self, value: int = 0, name: str | None = None):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.value = value
        self.name = name or "sem"
        self._waiters: deque["Task"] = deque()

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self.value > 0:
            self.value -= 1
            return True, None
        self._waiters.append(task)
        return False, None

    def release(self, count: int = 1) -> None:
        """V the semaphore ``count`` times, waking blocked tasks FIFO."""
        for _ in range(count):
            task = _pop_live(self._waiters)
            if task is not None:
                task.cpu.make_ready(task, None)
            else:
                self.value += 1

    def waiting(self) -> int:
        """Number of live tasks currently blocked."""
        return sum(1 for t in self._waiters if not t.finished)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Semaphore {self.name} value={self.value} waiting={self.waiting()}>"


class Mutex:
    """Binary lock.  ``wait(mutex)`` acquires, :meth:`release` releases."""

    def __init__(self, name: str | None = None):
        self.name = name or "mutex"
        self.locked = False
        self.owner: "Task | None" = None
        self._waiters: deque["Task"] = deque()

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if not self.locked:
            self.locked = True
            self.owner = task
            return True, None
        if self.owner is task:
            raise SimulationError(f"task {task.name} would self-deadlock on {self.name}")
        self._waiters.append(task)
        return False, None

    def release(self) -> None:
        if not self.locked:
            raise SimulationError(f"release of unlocked mutex {self.name}")
        task = _pop_live(self._waiters)
        if task is not None:
            self.owner = task
            task.cpu.make_ready(task, None)
        else:
            self.locked = False
            self.owner = None


class Flag:
    """A one-shot event flag: waiters block until :meth:`set` is called.

    Waiting on an already-set flag succeeds immediately; the wait evaluates
    to the value passed to ``set``.
    """

    def __init__(self, name: str | None = None):
        self.name = name or "flag"
        self.is_set = False
        self.value: Any = None
        self._waiters: deque["Task"] = deque()

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self.is_set:
            return True, self.value
        self._waiters.append(task)
        return False, None

    def set(self, value: Any = None) -> None:
        """Set the flag, waking all waiters.  Idempotent (first value wins)."""
        if self.is_set:
            return
        self.is_set = True
        self.value = value
        waiters, self._waiters = self._waiters, deque()
        for task in waiters:
            if not task.finished:
                task.cpu.make_ready(task, value)


class Mailbox:
    """Unbounded FIFO queue with blocking receive.

    ``wait(mailbox)`` evaluates to the oldest posted item.  Posting with
    waiters present hands the item directly to the first one (no queue
    traversal), which keeps delivery order strict.
    """

    def __init__(self, name: str | None = None):
        self.name = name or "mailbox"
        self._items: deque[Any] = deque()
        self._waiters: deque["Task"] = deque()

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self._items:
            return True, self._items.popleft()
        self._waiters.append(task)
        return False, None

    def post(self, item: Any) -> None:
        """Append an item, waking the first blocked receiver if any."""
        task = _pop_live(self._waiters)
        if task is not None:
            task.cpu.make_ready(task, item)
        else:
            self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Any:
        """The oldest queued item without removing it (None if empty)."""
        return self._items[0] if self._items else None


class _SelectEntry:
    """A MailboxSelect's registration inside one mailbox's waiter queue.

    Quacks enough like a Task for :meth:`Mailbox.post`/:func:`_pop_live`:
    ``finished`` turns True once the select has fired (or its task died),
    so stale registrations in the other mailboxes are skipped, and the
    ``cpu.make_ready`` call a post performs is rerouted into the select.
    """

    __slots__ = ("select", "mailbox", "cpu")

    def __init__(self, select: "MailboxSelect", mailbox: "Mailbox"):
        self.select = select
        self.mailbox = mailbox
        self.cpu = _SelectWake(select, mailbox)

    @property
    def finished(self) -> bool:
        return self.select._fired or self.select._task.finished


class _SelectWake:
    """The ``cpu`` shim of a :class:`_SelectEntry`."""

    __slots__ = ("select", "mailbox")

    def __init__(self, select: "MailboxSelect", mailbox: "Mailbox"):
        self.select = select
        self.mailbox = mailbox

    def make_ready(self, entry: "_SelectEntry", item: Any) -> None:
        self.select._fire(self.mailbox, item)


class MailboxSelect:
    """Waitable over several mailboxes: first posted item anywhere wins.

    ``yield wait(MailboxSelect(boxes))`` evaluates to ``(mailbox, item)``
    for the first item available on any of the mailboxes (drained in
    mailbox order when several already hold items — deterministic).  One
    instance is single-shot: build a fresh one per wait.

    This is the select() the multirail reassembly path needs: stripes of
    one logical transfer may arrive on *any* surviving rail once a rail
    has died, so the receiver cannot afford to commit to one mailbox.
    """

    def __init__(self, mailboxes: Iterable["Mailbox"], name: str | None = None):
        self.mailboxes = list(mailboxes)
        if not self.mailboxes:
            raise SimulationError("MailboxSelect needs at least one mailbox")
        self.name = name or "select"
        self._task: "Task | None" = None
        self._fired = False

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self._fired:
            raise SimulationError("MailboxSelect instances are single-shot")
        for mailbox in self.mailboxes:
            if mailbox._items:
                self._fired = True
                return True, (mailbox, mailbox._items.popleft())
        self._task = task
        for mailbox in self.mailboxes:
            mailbox._waiters.append(_SelectEntry(self, mailbox))
        return False, None

    def _fire(self, mailbox: "Mailbox", item: Any) -> None:
        if self._fired:  # pragma: no cover - defensive (finished guards)
            mailbox._items.append(item)
            return
        self._fired = True
        task = self._task
        if task is None or task.finished:  # pragma: no cover - defensive
            mailbox._items.append(item)
            return
        task.cpu.make_ready(task, (mailbox, item))


class Condition:
    """Condition variable over an explicit :class:`Mutex`.

    Usage from a task body (the mutex must be held)::

        yield from cond.wait_holding(mutex)

    ``notify``/``notify_all`` may be called from tasks or plain event
    callbacks; woken tasks re-acquire the mutex before returning.
    """

    def __init__(self, name: str | None = None):
        self.name = name or "cond"
        self._waiters: deque["Task"] = deque()

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        self._waiters.append(task)
        return False, None

    def wait_holding(self, mutex: Mutex):
        """Generator helper: atomically release ``mutex`` and wait, then
        re-acquire ``mutex`` before returning."""
        from repro.sim.coroutines import wait  # local import to avoid cycle

        if not mutex.locked:
            raise SimulationError("Condition.wait_holding requires the mutex held")
        mutex.release()
        yield wait(self)
        yield wait(mutex)

    def notify(self, count: int = 1) -> None:
        """Wake up to ``count`` waiters."""
        for _ in range(count):
            task = _pop_live(self._waiters)
            if task is None:
                return
            task.cpu.make_ready(task, None)

    def notify_all(self) -> None:
        """Wake every waiter."""
        self.notify(count=len(self._waiters))
