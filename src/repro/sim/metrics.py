"""Typed metrics and the :class:`Instrumentation` facade.

This module unifies the two observability channels of the simulator:

- the event stream — :class:`~repro.sim.trace.Tracer` records, good for
  post-mortem queries and timeline export;
- typed aggregates — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments held in a :class:`MetricsRegistry`,
  good for "how many MAD_SHORT_PKTs went over SCI" questions without
  replaying the record stream.

An :class:`Instrumentation` object owns one of each and is installed on
the engine by ``EngineConfig(instrumentation=True)`` or
:func:`install_instrumentation`.  When off, the
engine carries :data:`NULL_INSTRUMENTS` instead; hot paths guard their
recording with a single ``if ins.enabled`` attribute check, so disabled
runs pay nothing beyond that check (the benchmarks' zero-cost contract).

Exports:

- :meth:`Instrumentation.chrome_trace` / ``export_chrome_trace`` turn
  the trace-record stream into Chrome ``trace_event`` JSON viewable in
  ``chrome://tracing`` or Perfetto (``ui.perfetto.dev``);
- :meth:`Instrumentation.report` renders a plain-text metrics summary
  (formatted by :func:`repro.bench.report.format_metrics`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.sim.trace import TraceRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.engine import Engine

#: Canonical representation of a metric's label set: sorted key/value pairs.
LabelSet = tuple[tuple[str, Any], ...]


def _labelset(labels: Mapping[str, Any]) -> LabelSet:
    return tuple(sorted(labels.items()))


def format_labels(labels: LabelSet) -> str:
    """``{k=v,...}`` rendering used by reports ('' for no labels)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


@dataclass
class Counter:
    """A monotonically increasing count (messages, bytes, wakeups)."""

    name: str
    labels: LabelSet = ()
    value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A sampled level (queue depth); remembers its high-water mark."""

    name: str
    labels: LabelSet = ()
    value: int | float = 0
    high_water: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


@dataclass
class Histogram:
    """A distribution of observations (message sizes, span durations)."""

    name: str
    labels: LabelSet = ()
    values: list[int | float] = field(default_factory=list)

    def observe(self, value: int | float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> int | float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> int | float:
        return min(self.values) if self.values else 0

    @property
    def max(self) -> int | float:
        return max(self.values) if self.values else 0

    def percentile(self, p: float) -> int | float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


class MetricsRegistry:
    """All instruments of one simulation, keyed by (name, labels).

    Instruments are created on first touch; a name is permanently bound
    to one instrument kind (mixing kinds under one name raises).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], Any] = {}
        self._kind_of: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: Mapping[str, Any]):
        bound = self._kind_of.setdefault(name, kind)
        if bound != kind:
            raise ValueError(
                f"metric {name!r} is a {bound}, not a {kind}"
            )
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = self._KINDS[kind](name, key[1])
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    # -- queries -----------------------------------------------------------

    def value(self, name: str, **labels: Any) -> int | float:
        """Current value of one counter/gauge (0 if never touched)."""
        metric = self._metrics.get((name, _labelset(labels)))
        return 0 if metric is None else metric.value

    def total(self, name: str) -> int | float:
        """Sum of a counter across all of its label sets."""
        return sum(m.value for (n, _), m in self._metrics.items()
                   if n == name and isinstance(m, Counter))

    def collect(self, kind: type | None = None) -> list[Any]:
        """All instruments (optionally of one class), sorted for display."""
        out = [m for m in self._metrics.values()
               if kind is None or isinstance(m, kind)]
        out.sort(key=lambda m: (m.name, m.labels))
        return out

    def clear(self) -> None:
        self._metrics.clear()
        self._kind_of.clear()

    def __len__(self) -> int:
        return len(self._metrics)


class Instrumentation:
    """Facade over tracing + metrics, installed as ``engine.instruments``.

    Recording methods are cheap but not free; hot paths keep the
    zero-cost contract by checking :attr:`enabled` *before* building
    label kwargs::

        ins = engine.instruments
        if ins.enabled:
            ins.count("chmad.packets", 1, pkt=..., protocol=...)
    """

    enabled = True

    def __init__(self, engine: "Engine", tracer: Tracer | None = None):
        self.engine = engine
        self.tracer = tracer or Tracer(engine, enabled=True)
        self.metrics = MetricsRegistry()

    # -- recording ---------------------------------------------------------

    def emit(self, category: str, **fields: Any) -> None:
        """Append one trace record (see :meth:`Tracer.emit`)."""
        self.tracer.emit(category, **fields)

    def count(self, name: str, amount: int | float = 1,
              **labels: Any) -> None:
        """Increment the counter ``name`` for this label set."""
        self.metrics.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: int | float,
                  **labels: Any) -> None:
        """Sample gauge ``name``; also traced (category ``gauge``) so the
        Chrome export can draw it as a counter track."""
        self.metrics.gauge(name, **labels).set(value)
        self.tracer.emit("gauge", name=name, value=value, **labels)

    def observe(self, name: str, value: int | float, **labels: Any) -> None:
        """Add one observation to histogram ``name``."""
        self.metrics.histogram(name, **labels).observe(value)

    # -- reporting ---------------------------------------------------------

    def report(self, title: str = "Instrumentation report") -> str:
        """Plain-text summary of every instrument."""
        from repro.bench.report import format_metrics
        return format_metrics(self.metrics, title=title)

    # -- Chrome trace_event export ----------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The trace-record stream as a Chrome ``trace_event`` object.

        Load the written file in ``chrome://tracing`` or Perfetto.
        Mapping: virtual-time ns -> microsecond ``ts``; the emitting
        rank (``rank``/``src`` field) -> ``pid``; the category's first
        component (or ``protocol``/``fabric``) -> ``tid``.  Records with
        a ``latency`` field become complete ("X") spans covering the
        transfer; ``gauge`` records become counter ("C") samples;
        everything else is an instant ("i") event.
        """
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [chrome_event(r) for r in self.tracer.records],
        }

    def export_chrome_trace(self, path: str) -> str:
        """Write :meth:`chrome_trace` as JSON; returns ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
        return path


def chrome_event(record: TraceRecord) -> dict[str, Any]:
    """Convert one :class:`TraceRecord` into a Chrome trace event."""
    fields = record.fields
    pid = fields.get("rank", fields.get("src", fields.get("source", 0)))
    tid = fields.get("thread",
                     fields.get("protocol",
                                fields.get("fabric",
                                           record.category.split(".")[0])))
    ts = record.time / 1000.0  # integer ns -> us (Chrome's unit)
    if record.category == "gauge":
        name = str(fields.get("name", "gauge"))
        return {"name": name, "cat": "gauge", "ph": "C", "ts": ts,
                "pid": pid, "tid": 0,
                "args": {name: fields.get("value", 0)}}
    latency = fields.get("latency")
    if isinstance(latency, (int, float)) and latency > 0:
        # A transfer: draw the whole flight as a complete span.
        return {"name": record.category, "cat": record.category, "ph": "X",
                "ts": (record.time - latency) / 1000.0,
                "dur": latency / 1000.0, "pid": pid, "tid": tid,
                "args": dict(fields)}
    return {"name": fields.get("pkt", record.category),
            "cat": record.category, "ph": "i", "ts": ts, "pid": pid,
            "tid": tid, "s": "t", "args": dict(fields)}


class NullInstrumentation:
    """Instrumentation that ignores everything — the disabled default.

    Shares the null-object pattern with
    :class:`~repro.sim.trace.NullTracer`; every recording method is a
    no-op and every query reports emptiness, so code may read
    ``engine.instruments`` unconditionally.
    """

    enabled = False

    def __init__(self) -> None:
        from repro.sim.trace import NULL_TRACER
        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()  # stays empty: no-ops never write

    def emit(self, category: str, **fields: Any) -> None:
        pass

    def count(self, name: str, amount: int | float = 1,
              **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: int | float,
                  **labels: Any) -> None:
        pass

    def observe(self, name: str, value: int | float, **labels: Any) -> None:
        pass

    def report(self, title: str = "Instrumentation report") -> str:
        return f"{title}\n(instrumentation disabled)"

    def chrome_trace(self) -> dict[str, Any]:
        return {"displayTimeUnit": "ms", "traceEvents": []}

    def export_chrome_trace(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path


NULL_INSTRUMENTS = NullInstrumentation()
