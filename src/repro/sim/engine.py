"""The discrete-event engine: a clock and an event queue.

Determinism contract: events scheduled for the same timestamp fire in the
order they were scheduled (FIFO), enforced by a monotonically increasing
sequence number used as a priority tie-breaker.  Nothing in the simulator
uses wall-clock time or unseeded randomness, so a run is a pure function
of its inputs.

Hot-path layout (the per-event cost dominates every benchmark's
wall-clock, see DESIGN.md "Simulator performance"):

- the heap stores ``(time, seq, event)`` tuples so ``heapq`` compares
  C-level tuples instead of calling ``Event.__lt__``;
- zero-delay events — overwhelmingly CPU dispatch requests — bypass the
  heap entirely and live in a FIFO deque.  Because an entry's timestamp
  equals the clock when it was appended and the clock cannot pass a
  queued event, the deque is always sorted by ``(time, seq)``; ``step``
  merely compares the two queue heads, preserving the exact global
  ordering a single heap would produce;
- internal fire-and-forget events (charge completions, sleeper wakes,
  dispatches) are recycled through a free pool via :meth:`call_soon` /
  :meth:`schedule_discard`, whose callers promise not to retain the
  handle;
- cancellation is lazy (O(1)) with an O(1) live-event counter behind
  :meth:`pending`; when cancelled events outnumber live ones the queues
  are compacted so a cancel-heavy workload (retransmit timers) cannot
  bloat the heap.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.check.checker import NULL_CHECKER, Checker
from repro.errors import ConfigurationError, SimulationError
from repro.sim.metrics import NULL_INSTRUMENTS, Instrumentation
from repro.sim.trace import NULL_TRACER, Tracer


def seed_namespace(*parts: Any) -> str:
    """Canonical ``/``-joined RNG namespace string.

    Every seeded stream in the repository derives its namespace through
    this one helper — :meth:`Engine.rng`, the schedule fuzzer's
    ``fuzz/{seed}/…`` streams, the randomized workloads — so namespace
    derivation cannot silently drift between subsystems (it used to be
    re-implemented with f-strings at each site).
    """
    return "/".join(str(part) for part in parts)


@dataclass(frozen=True)
class EngineConfig:
    """Everything optional about an engine, in one declarative object.

    Replaces the scattered per-feature enablement calls (the removed
    ``enable_*`` methods and hand-rolled ``install_fuzz`` wiring) with a
    single serializable configuration accepted by
    :class:`Engine` and :class:`~repro.cluster.session.MPIWorld`::

        world = MPIWorld(cluster, engine_config=EngineConfig(
            instrumentation=True, checker=True, fuzz_seed=17))

    ``trace_sink`` names a file path; when set, instrumentation is
    implied and :meth:`MPIWorld.shutdown` exports the Chrome trace there.
    """

    #: Root seed for every engine RNG namespace (:meth:`Engine.rng`).
    seed: int = 0
    #: Install the metrics/tracing facade (:mod:`repro.sim.metrics`).
    instrumentation: bool = False
    #: Install the online MPI semantics checker (:mod:`repro.check`).
    checker: bool = False
    #: Raise on the first checker violation (else accumulate).
    checker_raise: bool = True
    #: Install the schedule fuzzer with this seed (None = baseline).
    fuzz_seed: int | None = None
    #: Extra :class:`~repro.check.fuzz.ScheduleFuzz` parameters.
    fuzz_params: Mapping[str, Any] = field(default_factory=dict)
    #: Chrome-trace export path, written at MPI_Finalize (implies
    #: ``instrumentation``).
    trace_sink: str | None = None
    #: Engine-wide collective algorithm selection: one registry name
    #: (``"hier"``) or ``"op=name"`` pairs
    #: (``"allreduce=multilane,bcast=binomial"``); see
    #: :mod:`repro.mpi.coll`.  Validated against the registry by
    #: :meth:`Engine.apply_config`.  None defers to the
    #: ``REPRO_COLL_ALG`` environment variable, then the defaults.
    coll_algorithm: str | None = None

    @property
    def wants_instrumentation(self) -> bool:
        return self.instrumentation or self.trace_sink is not None


def install_instrumentation(engine: "Engine") -> Instrumentation:
    """Install and return a live metrics/tracing facade on ``engine``.

    The facade's tracer also becomes ``engine.tracer``, so one call
    turns on both the typed instruments and the record stream.
    """
    instruments = Instrumentation(engine)
    engine.instruments = instruments
    engine.tracer = instruments.tracer
    return instruments


def install_checker(engine: "Engine",
                    raise_on_violation: bool = True) -> Checker:
    """Install and return the live online semantics checker on ``engine``.

    Every protocol hook in the stack (ADI sends/matches, ch_mad packet
    handlers, Madeleine transmissions, the reliable transport,
    MPI_Finalize) starts shadow-checking its invariants; violations
    raise :class:`~repro.errors.CheckViolation` (or, with
    ``raise_on_violation=False``, accumulate in ``checker.violations``).
    """
    checker = Checker(engine, raise_on_violation=raise_on_violation)
    engine.checker = checker
    return checker


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    Events may be cancelled; a cancelled event stays queued but is
    skipped when popped (lazy deletion, O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_engine",
                 "_pooled", "_done")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any],
                 args: tuple, engine: "Engine | None" = None,
                 pooled: bool = False):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine
        self._pooled = pooled
        self._done = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled or self._done:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} {self.callback!r}>"


#: Compaction is considered once at least this many cancelled events are
#: queued (tiny queues are not worth rebuilding).
_COMPACT_MIN = 64

#: Upper bound on the recycled-Event free pool.
_POOL_MAX = 1024


class Engine:
    """Priority-queue event loop over integer-nanosecond virtual time."""

    def __init__(self, seed: int = 0, *,
                 config: EngineConfig | None = None) -> None:
        if config is not None:
            seed = config.seed
        #: The declarative configuration this engine was built from
        #: (None when constructed through the bare ``Engine(seed)`` path).
        self.config = config
        self._now: int = 0
        self._seq: int = 0
        #: Timed events as (time, seq, Event) heap entries.
        self._queue: list[tuple[int, int, Event]] = []
        #: Zero-delay events in FIFO (== (time, seq)) order.
        self._immediate: deque[Event] = deque()
        #: Poller self-clock wakes as (time, seq, Event, cpu) heap entries
        #: — same ordering contract, filed apart so
        #: :meth:`next_payload_time` can see past them (one entry per
        #: sleeping periodic poller, so this heap stays tiny).
        self._clock_queue: list[tuple[int, int, Event, Any]] = []
        #: Per-CPU mirror of the clock queue's wake times (cpu -> time
        #: min-heap).  :meth:`next_payload_time` used to linear-scan the
        #: clock queue per idle-skip — fine at 2 pollers, O(ranks²) in a
        #: 1024-rank quiescent world.  The mirror makes the per-CPU peek
        #: O(1): this is what lets idle ranks fast-forward at ~zero cost
        #: regardless of world size.
        self._clock_by_cpu: dict[Any, list[int]] = {}
        #: Cancelled events still sitting in either queue.
        self._cancelled: int = 0
        self._pool: list[Event] = []
        self._running = False
        #: Number of events executed so far (diagnostic).
        self.events_executed: int = 0
        #: Structured tracing hook (off by default; see repro.sim.trace).
        self.tracer = NULL_TRACER
        #: Metrics + tracing facade (off by default; see repro.sim.metrics).
        self.instruments = NULL_INSTRUMENTS
        #: Online MPI semantics checker (off by default; see repro.check).
        self.checker = NULL_CHECKER
        #: Schedule-fuzz perturbations (None = deterministic baseline
        #: schedule; see repro.check.fuzz.install_fuzz).
        self.fuzz = None
        #: Root seed for every random decision made inside this simulation.
        self.seed = int(seed)
        self._rngs: dict[str, random.Random] = {}
        if config is not None:
            self.apply_config(config)

    def apply_config(self, config: EngineConfig) -> "Engine":
        """Install whatever ``config`` asks for; returns ``self``.

        This is the one enablement path — the legacy ``enable_*``
        methods were removed in its favour.
        """
        self.config = config
        if config.wants_instrumentation:
            install_instrumentation(self)
        if config.checker:
            install_checker(self, raise_on_violation=config.checker_raise)
        if config.fuzz_seed is not None:
            from repro.check.fuzz import install_fuzz
            install_fuzz(self, config.fuzz_seed, **dict(config.fuzz_params))
        if config.coll_algorithm is not None:
            # Validate against the registry now, so a typo fails the run
            # before any rank starts (lazy import: the registry lives in
            # the MPI layer, which imports this module).
            from repro.mpi.coll import parse_selection
            self.coll_selection = parse_selection(config.coll_algorithm)
        return self

    def rng(self, namespace: str = "") -> random.Random:
        """The engine-owned RNG for ``namespace``, seeded from the root seed.

        All stochastic decisions (fault injection, randomized workloads)
        must draw from an engine RNG so a run is a pure function of
        ``(configuration, seed)``.  Namespacing keeps independent consumers
        from perturbing each other's streams.
        """
        gen = self._rngs.get(namespace)
        if gen is None:
            gen = self._rngs[namespace] = random.Random(
                seed_namespace(self.seed, namespace))
        return gen

    # -- removed enablement shims -----------------------------------------
    #
    # The per-feature enable_* methods predated EngineConfig, spent one
    # release warning, and are now errors that name their replacement.

    def enable_instrumentation(self) -> Instrumentation:
        """Removed: use ``EngineConfig(instrumentation=True)`` or
        :func:`install_instrumentation`."""
        raise ConfigurationError(
            "Engine.enable_instrumentation() was removed; pass "
            "EngineConfig(instrumentation=True) to the Engine/MPIWorld "
            "constructor (or call repro.sim.engine.install_instrumentation)")

    def enable_checker(self, raise_on_violation: bool = True) -> Checker:
        """Removed: use ``EngineConfig(checker=True)`` or
        :func:`install_checker`."""
        raise ConfigurationError(
            "Engine.enable_checker() was removed; pass "
            "EngineConfig(checker=True, checker_raise=...) to the "
            "Engine/MPIWorld constructor (or call "
            "repro.sim.engine.install_checker)")

    def enable_tracing(self) -> Tracer:
        """Removed: pass ``EngineConfig(instrumentation=True)`` and read
        ``engine.tracer``."""
        raise ConfigurationError(
            "Engine.enable_tracing() was removed; pass "
            "EngineConfig(instrumentation=True) and read engine.tracer")

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in integer nanoseconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        time = self._now + int(delay)
        event = Event(time, self._seq, callback, args, self)
        self._seq += 1
        if time == self._now:
            self._immediate.append(event)
        else:
            heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        time = int(time)
        event = Event(time, self._seq, callback, args, engine=self)
        self._seq += 1
        if time == self._now:
            self._immediate.append(event)
        else:
            heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> None:
        """Queue ``callback(*args)`` at the current time (no handle).

        Internal fast path: the event is drawn from the free pool and
        recycled after it fires, so the caller must not retain it — use
        :meth:`schedule` when a cancellable handle is needed.  Ordering
        is identical to ``schedule(0, ...)``.
        """
        if self._pool:
            event = self._pool.pop()
            event.time = self._now
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event._done = False
        else:
            event = Event(self._now, self._seq, callback, args, engine=self,
                          pooled=True)
        self._seq += 1
        self._immediate.append(event)

    def schedule_discard(self, delay: int, callback: Callable[..., Any],
                         *args: Any) -> None:
        """Schedule a fire-and-forget event ``delay`` ns from now.

        Like :meth:`call_soon` but timed: the Event is pooled and no
        handle is returned, so the callback site must never need to
        cancel it.  The CPU scheduler's charge completions and sleeper
        wakes — the bulk of all timed events — go through here.
        """
        if delay <= 0:
            if delay < 0:
                raise SimulationError(f"cannot schedule {delay} ns in the past")
            self.call_soon(callback, *args)
            return
        time = self._now + int(delay)
        if self._pool:
            event = self._pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event._done = False
        else:
            event = Event(time, self._seq, callback, args, engine=self,
                          pooled=True)
        self._seq += 1
        heapq.heappush(self._queue, (time, event.seq, event))

    def schedule_clock(self, delay: int, cpu: Any,
                       callback: Callable[..., Any], *args: Any) -> None:
        """Schedule a poller self-clock wake ``delay`` ns from now.

        Pooled and fire-and-forget like :meth:`schedule_discard`, but
        filed in the clock queue: the wake belongs to an idle periodic
        poller on ``cpu`` and cannot influence anything except that
        poller (its mailbox only fills from *other* engine events).
        Execution order is still exact (time, seq) — :meth:`step` merges
        all three queues — but :meth:`next_payload_time` can exclude
        these, which is what lets two idle pollers fast-forward past
        each other instead of pinning each other awake.
        """
        time = self._now + int(delay)
        if self._pool:
            event = self._pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event._done = False
        else:
            event = Event(time, self._seq, callback, args, engine=self,
                          pooled=True)
        self._seq += 1
        heapq.heappush(self._clock_queue, (time, event.seq, event, cpu))
        percpu = self._clock_by_cpu.get(cpu)
        if percpu is None:
            percpu = self._clock_by_cpu[cpu] = []
        heapq.heappush(percpu, time)

    # -- cancellation accounting ------------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled += 1
        live = (len(self._queue) + len(self._immediate)
                + len(self._clock_queue) - self._cancelled)
        if self._cancelled >= _COMPACT_MIN and self._cancelled > live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from both queues (heap order preserved).

        Both queues are compacted *in place*: :meth:`step_batch` holds
        local aliases to them across callbacks, and a cancel storm inside
        a callback must not strand those aliases on a dead snapshot.
        """
        queue = self._queue
        for entry in queue:
            event = entry[2]
            if event.cancelled:
                self._release(event)
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        immediate = self._immediate
        if any(event.cancelled for event in immediate):
            keep = [event for event in immediate if not event.cancelled]
            for event in immediate:
                if event.cancelled:
                    self._release(event)
            immediate.clear()
            immediate.extend(keep)
        self._cancelled = 0

    def _release(self, event: Event) -> None:
        """Return a pooled event to the free list (drop payload refs)."""
        if event._pooled and len(self._pool) < _POOL_MAX:
            event.callback = None  # type: ignore[assignment]
            event.args = ()
            self._pool.append(event)

    # -- execution --------------------------------------------------------

    def _peek_time(self) -> int | None:
        """Timestamp of the next non-cancelled event, or None if drained.

        Cancelled heads are dropped in passing so the peek stays O(1)
        amortized.
        """
        queue = self._queue
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            self._cancelled -= 1
            self._release(immediate.popleft())
        while queue and queue[0][2].cancelled:
            self._cancelled -= 1
            self._release(heapq.heappop(queue)[2])
        best: int | None = None
        if immediate:
            best = immediate[0].time
        if queue and (best is None or queue[0][0] < best):
            best = queue[0][0]
        clock = self._clock_queue
        if clock and (best is None or clock[0][0] < best):
            best = clock[0][0]
        return best

    def next_event_time(self) -> int | None:
        """Public peek: when the next queued event fires (None if none).

        The idle-poll fast-forward uses this to bound how far it may
        skip: nothing observable can change before this timestamp.
        """
        return self._peek_time()

    def next_payload_time(self, cpu: Any) -> int | None:
        """When the next event that could affect ``cpu`` fires.

        Like :meth:`next_event_time` but sees past *other* CPUs' poller
        self-clock wakes (see :meth:`schedule_clock`): such a wake runs
        an idle poller that only touches its own CPU and its own (empty)
        mailbox, so it cannot post a payload, wake a task, or change the
        ready count on ``cpu`` before some non-clock event fires first.
        Same-CPU clock entries *are* included — another poller waking on
        this CPU flips its busy/idle decision.  This is the bound the
        idle-poll fast-forward skips to; excluding each other's clocks
        is what keeps two idle pollers from pinning each other awake.
        """
        queue = self._queue
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            self._cancelled -= 1
            self._release(immediate.popleft())
        while queue and queue[0][2].cancelled:
            self._cancelled -= 1
            self._release(heapq.heappop(queue)[2])
        best: int | None = None
        if immediate:
            best = immediate[0].time
        if queue and (best is None or queue[0][0] < best):
            best = queue[0][0]
        # O(1) per-CPU peek via the clock-queue mirror (an idle 1024-rank
        # world calls this once per poller fast-forward; a linear scan of
        # the clock queue here was O(ranks) per call, O(ranks²) per tick).
        percpu = self._clock_by_cpu.get(cpu)
        if percpu and (best is None or percpu[0] < best):
            best = percpu[0]
        return best

    def quiet_now(self) -> bool:
        """True iff no pending event is due at the current time.

        This is the legality test for inline dispatch: when the engine
        is quiet *now*, running a ready task immediately is
        indistinguishable from scheduling a zero-delay dispatch event,
        because that event would be the unique next thing to execute.
        """
        t = self._peek_time()
        return t is None or t > self._now

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain.

        The pop logic of :meth:`_next_live` is inlined here: this method
        runs once per simulated event and the extra call was measurable.
        """
        queue = self._queue
        immediate = self._immediate
        clock = self._clock_queue
        pool = self._pool
        while True:
            # Three-way (time, seq) merge of the queue heads; src tracks
            # which structure currently holds the minimum.
            src = 0
            if immediate:
                head_event = immediate[0]
                time = head_event.time
                seq = head_event.seq
                src = 1
            if queue:
                head = queue[0]
                if src == 0 or head[0] < time or (head[0] == time
                                                  and head[1] < seq):
                    time = head[0]
                    seq = head[1]
                    src = 2
            if clock:
                head = clock[0]
                if src == 0 or head[0] < time or (head[0] == time
                                                  and head[1] < seq):
                    src = 3
            if src == 0:
                return False
            if src == 1:
                event = immediate.popleft()
            elif src == 2:
                event = heapq.heappop(queue)[2]
            else:
                entry = heapq.heappop(clock)
                event = entry[2]
                # Keep the per-CPU mirror in sync: a CPU's clock entries
                # pop in its own (time, seq) order, so the global pop's
                # time is that CPU's minimum.
                heapq.heappop(self._clock_by_cpu[entry[3]])
            if event.cancelled:
                self._cancelled -= 1
                self._release(event)
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            # Marked done on pop: a cancel() arriving while (or after) the
            # callback runs must not touch the queued-cancelled counter.
            event._done = True
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            if event._pooled and len(pool) < _POOL_MAX:
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                pool.append(event)
            return True

    def step_batch(self, limit: int, stop_flag: Any = None) -> int:
        """Execute up to ``limit`` events in one dispatch sweep.

        Bit-identical to calling :meth:`step` in a loop — events still
        fire in exact global (time, seq) order — but the per-event
        Python overhead (method call, queue-head rebinding) is paid once
        per *batch*, and runs of same-timestamp zero-delay events (the
        cross-rank wire-delivery cascades of a large world, where one
        tick delivers to hundreds of ranks at the same nanosecond) drain
        through a tight inner loop that skips the 3-way merge entirely
        while the timed heaps provably hold nothing due now.

        ``stop_flag``, when given, is an indexable whose ``[0]`` entry is
        re-checked *between* events; the sweep stops before the next
        event once it goes true.  An index read is cheaper than calling
        a closure per event, and the check lands at exactly the points
        where a ``step()`` caller's loop condition would — so
        :meth:`MPIWorld.run <repro.cluster.session.MPIWorld.run>` sees
        the same event sequence batched as unbatched.

        Returns the number of events executed (less than ``limit`` only
        when the queues drained or ``stop_flag`` went true).
        """
        queue = self._queue
        immediate = self._immediate
        clock = self._clock_queue
        pool = self._pool
        executed = 0
        check_stop = stop_flag is not None
        while executed < limit:
            if check_stop and stop_flag[0]:
                break
            # Three-way (time, seq) merge, exactly as in step().
            src = 0
            if immediate:
                head_event = immediate[0]
                time = head_event.time
                seq = head_event.seq
                src = 1
            if queue:
                head = queue[0]
                if src == 0 or head[0] < time or (head[0] == time
                                                  and head[1] < seq):
                    time = head[0]
                    seq = head[1]
                    src = 2
            if clock:
                head = clock[0]
                if src == 0 or head[0] < time or (head[0] == time
                                                  and head[1] < seq):
                    src = 3
            if src == 0:
                break
            if src == 1:
                event = immediate.popleft()
            elif src == 2:
                event = heapq.heappop(queue)[2]
            else:
                entry = heapq.heappop(clock)
                event = entry[2]
                heapq.heappop(self._clock_by_cpu[entry[3]])
            if event.cancelled:
                self._cancelled -= 1
                self._release(event)
                continue
            event._done = True
            now = event.time
            self._now = now
            self.events_executed += 1
            event.callback(*event.args)
            if event._pooled and len(pool) < _POOL_MAX:
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                pool.append(event)
            executed += 1
            # Same-timestamp sweep: while neither timed heap holds an
            # entry due *now*, every deque head at `now` is the global
            # (time, seq) minimum (new zero-delay events always append
            # with larger seq; heap pushes from callbacks land strictly
            # later than `now` or in the deque).  The heap-head checks
            # re-run per event because a callback may schedule_clock(0)
            # or leave a same-time heap entry behind.
            while immediate and executed < limit:
                event = immediate[0]
                if event.time != now:
                    break
                if (queue and queue[0][0] == now) or \
                        (clock and clock[0][0] == now):
                    break
                if check_stop and stop_flag[0]:
                    return executed
                immediate.popleft()
                if event.cancelled:
                    self._cancelled -= 1
                    self._release(event)
                    continue
                event._done = True
                self.events_executed += 1
                event.callback(*event.args)
                if event._pooled and len(pool) < _POOL_MAX:
                    event.callback = None  # type: ignore[assignment]
                    event.args = ()
                    pool.append(event)
                executed += 1
        return executed

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or a bound is hit).

        ``until``: stop before executing any event past this virtual time
        (the clock is advanced to ``until`` when stopping for this reason).
        ``max_events``: safety valve against runaway simulations.
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        executed = 0
        step = self.step
        try:
            if until is None and max_events is None:
                # Unbounded drain: sweep in large batches (identical event
                # order, amortized dispatch overhead).
                while self.step_batch(4096):
                    pass
            else:
                while True:
                    head = self._peek_time()
                    if head is None:
                        if until is not None:
                            self._now = max(self._now, until)
                        break
                    if until is not None and head > until:
                        self._now = max(self._now, until)
                        break
                    if max_events is not None and executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "possible livelock (a polling loop that never sleeps?)"
                        )
                    step()
                    executed += 1
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return (len(self._queue) + len(self._immediate)
                + len(self._clock_queue) - self._cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now} pending={self.pending()}>"
