"""The discrete-event engine: a clock and an event queue.

Determinism contract: events scheduled for the same timestamp fire in the
order they were scheduled (FIFO), enforced by a monotonically increasing
sequence number used as a heap tie-breaker.  Nothing in the simulator uses
wall-clock time or unseeded randomness, so a run is a pure function of its
inputs.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.metrics import NULL_INSTRUMENTS, Instrumentation
from repro.sim.trace import NULL_TRACER, Tracer


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    Events may be cancelled; a cancelled event stays in the heap but is
    skipped when popped (lazy deletion, O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} {self.callback!r}>"


class Engine:
    """Priority-queue event loop over integer-nanosecond virtual time."""

    def __init__(self, seed: int = 0) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: list[Event] = []
        self._running = False
        #: Number of events executed so far (diagnostic).
        self.events_executed: int = 0
        #: Structured tracing hook (off by default; see repro.sim.trace).
        self.tracer = NULL_TRACER
        #: Metrics + tracing facade (off by default; see repro.sim.metrics).
        self.instruments = NULL_INSTRUMENTS
        #: Root seed for every random decision made inside this simulation.
        self.seed = int(seed)
        self._rngs: dict[str, random.Random] = {}

    def rng(self, namespace: str = "") -> random.Random:
        """The engine-owned RNG for ``namespace``, seeded from the root seed.

        All stochastic decisions (fault injection, randomized workloads)
        must draw from an engine RNG so a run is a pure function of
        ``(configuration, seed)``.  Namespacing keeps independent consumers
        from perturbing each other's streams.
        """
        gen = self._rngs.get(namespace)
        if gen is None:
            gen = self._rngs[namespace] = random.Random(f"{self.seed}/{namespace}")
        return gen

    def enable_instrumentation(self) -> Instrumentation:
        """Install and return a live metrics/tracing facade.

        The facade's tracer also becomes :attr:`tracer`, so one call
        turns on both the typed instruments and the record stream.
        """
        instruments = Instrumentation(self)
        self.instruments = instruments
        self.tracer = instruments.tracer
        return instruments

    def enable_tracing(self) -> Tracer:
        """Install full instrumentation; return its live Tracer.

        Kept for the record-stream-only API; equivalent to
        ``enable_instrumentation().tracer``.
        """
        return self.enable_instrumentation().tracer

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in integer nanoseconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        event = Event(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or a bound is hit).

        ``until``: stop before executing any event past this virtual time
        (the clock is advanced to ``until`` when stopping for this reason).
        ``max_events``: safety valve against runaway simulations.
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible livelock (a polling loop that never sleeps?)"
                    )
                self.step()
                executed += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now} pending={self.pending()}>"
