"""Preallocated ring buffers for the simulator's free-lists.

A :class:`Ring` is a fixed-capacity FIFO over a preallocated slot list:
``push``/``pop`` are O(1), never grow the backing store, and drop their
slot reference on pop so a pooled object's lifetime is exactly its time
in the ring.  The object pools introduced for 1000+-rank worlds (the
CPU's temporary-:class:`~repro.sim.cpu.Task` free-list, the progress
engine's recv-handle free-list) sit on rings so a million-message storm
recycles a bounded working set instead of churning the allocator.

Why the engine's zero-delay deque and the ch_mad packet mailboxes do
*not* move onto this class: CPython's ``collections.deque`` already *is*
a preallocated ring buffer (a doubly linked list of 64-slot blocks with
C-level append/popleft); a Python-level ring costs two attribute stores
and an index mask per operation where deque costs one C call, and loses
the race by ~2x on the hot paths.  See the micro-benchmark in
``tests/test_ring.py`` and DESIGN.md "Scaling to 1000+ ranks".
"""

from __future__ import annotations

from typing import Any


class Ring:
    """Fixed-capacity FIFO ring over a preallocated slot list.

    ``push`` returns False (and drops the item) when the ring is full —
    free-list semantics: overflow means the pool is saturated and the
    object is simply left to the garbage collector.
    """

    __slots__ = ("_slots", "_mask", "_head", "_size")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        # Round up to a power of two so the index wrap is a mask.
        cap = 1
        while cap < capacity:
            cap <<= 1
        self._slots: list[Any] = [None] * cap
        self._mask = cap - 1
        self._head = 0  # index of the oldest item
        self._size = 0

    @property
    def capacity(self) -> int:
        return self._mask + 1

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, item: Any) -> bool:
        """Append ``item``; returns False (item dropped) when full."""
        size = self._size
        if size > self._mask:
            return False
        self._slots[(self._head + size) & self._mask] = item
        self._size = size + 1
        return True

    def pop(self) -> Any:
        """Remove and return the oldest item (raises IndexError if empty)."""
        if self._size == 0:
            raise IndexError("pop from empty ring")
        head = self._head
        item = self._slots[head]
        self._slots[head] = None  # drop the reference immediately
        self._head = (head + 1) & self._mask
        self._size -= 1
        return item

    def clear(self) -> None:
        """Drop every pooled item (FT retirement of a dead rank's pools)."""
        self._slots = [None] * (self._mask + 1)
        self._head = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ring {self._size}/{self._mask + 1}>"
