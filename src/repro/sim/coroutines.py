"""System calls for coroutine tasks.

A simulated thread is a Python generator that *yields* instances of these
classes to its :class:`~repro.sim.cpu.CPU` scheduler.  The scheduler
interprets the yield, advances virtual time and/or blocks the task, and
resumes the generator with the call's result via ``gen.send(value)``.

The lowercase helper functions exist so task code reads naturally::

    def body():
        yield charge(us(2))          # burn 2 us of CPU (holds the CPU)
        item = yield wait(mailbox)   # block until a mailbox post
        yield sleep(us(10))          # release the CPU for 10 us
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sync import Waitable


class SystemCall:
    """Base class for everything a task may yield to its scheduler."""

    __slots__ = ()


class Charge(SystemCall):
    """Consume ``duration`` ns of CPU time while *holding* the CPU.

    Other tasks on the same CPU cannot run until the charge completes —
    this is what models software overhead (packing, polling, protocol
    handling) stealing cycles from the application thread.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError("charge duration must be >= 0")
        self.duration = int(duration)


class Sleep(SystemCall):
    """Release the CPU and become runnable again after ``duration`` ns."""

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError("sleep duration must be >= 0")
        self.duration = int(duration)


class ClockSleep(Sleep):
    """A :class:`Sleep` whose wake is a pure self-clock tick.

    Used by periodic polling threads for their between-poll pauses: the
    wake affects nothing but the sleeping thread itself (its mailbox can
    only be filled by other engine events).  The engine files these
    wakes separately so the idle-poll fast-forward can ask "when is the
    next event that could actually *change* something?" without two
    idle pollers pinning each other awake (see
    ``Engine.next_payload_time``).
    """

    __slots__ = ()


class Wait(SystemCall):
    """Block on a :class:`~repro.sim.sync.Waitable` until it signals us.

    The value passed to the waitable's signal becomes the result of the
    ``yield``.
    """

    __slots__ = ("waitable",)

    def __init__(self, waitable: "Waitable"):
        self.waitable = waitable


class YieldCPU(SystemCall):
    """Go to the back of the run queue (cooperative yield)."""

    __slots__ = ()


class GetTime(SystemCall):
    """Evaluate to the current virtual time (integer ns)."""

    __slots__ = ()


def charge(duration: int) -> Charge:
    """Busy the CPU for ``duration`` ns."""
    return Charge(duration)


def sleep(duration: int) -> Sleep:
    """Release the CPU for ``duration`` ns."""
    return Sleep(duration)


def clock_sleep(duration: int) -> ClockSleep:
    """Release the CPU for ``duration`` ns as a poller self-clock tick."""
    return ClockSleep(duration)


def wait(waitable: Any) -> Wait:
    """Block until ``waitable`` signals."""
    return Wait(waitable)


# YieldCPU/GetTime carry no state, so every caller can share one frozen
# instance — busy-wait loops yield_cpu() millions of times in large runs.
_YIELD_CPU = YieldCPU()
_GET_TIME = GetTime()


def yield_cpu() -> YieldCPU:
    """Let other runnable tasks on this CPU proceed."""
    return _YIELD_CPU


def now() -> GetTime:
    """Read the virtual clock from inside a task."""
    return _GET_TIME
