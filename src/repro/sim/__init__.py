"""Discrete-event simulation kernel.

The kernel is deliberately tiny and deterministic:

- :class:`~repro.sim.engine.Engine` owns the virtual clock (integer
  nanoseconds) and a priority queue of events, tie-broken by insertion
  sequence number so identical timestamps replay identically.
- :class:`~repro.sim.cpu.CPU` schedules cooperative *tasks* (Python
  generator coroutines) on one simulated processor.  Tasks charge CPU
  time explicitly with :func:`~repro.sim.coroutines.charge`; everything
  the higher layers "pay for" (packing, polling, memory copies, protocol
  handling) flows through these charges, which is what makes contention
  effects — such as the paper's Figure 9 polling interference — emerge
  rather than being hard-coded.
- :mod:`~repro.sim.sync` provides semaphores, mutexes, condition
  variables and mailboxes usable from tasks.
"""

from repro.sim.coroutines import (
    Charge,
    ClockSleep,
    GetTime,
    Sleep,
    Wait,
    YieldCPU,
    charge,
    clock_sleep,
    now,
    sleep,
    wait,
    yield_cpu,
)
from repro.sim.cpu import CPU, Task, TaskState
from repro.sim.engine import (
    Engine,
    EngineConfig,
    Event,
    install_checker,
    install_instrumentation,
    seed_namespace,
)
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTS,
)
from repro.sim.sync import (
    Condition,
    Flag,
    Mailbox,
    MailboxSelect,
    Mutex,
    Semaphore,
)

__all__ = [
    "CPU",
    "Charge",
    "Condition",
    "Counter",
    "Engine",
    "EngineConfig",
    "Event",
    "Flag",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTS",
    "GetTime",
    "Mailbox",
    "ClockSleep",
    "MailboxSelect",
    "Mutex",
    "Semaphore",
    "Sleep",
    "Task",
    "TaskState",
    "Wait",
    "YieldCPU",
    "charge",
    "clock_sleep",
    "install_checker",
    "install_instrumentation",
    "now",
    "seed_namespace",
    "sleep",
    "wait",
    "yield_cpu",
]
