"""Cooperative task scheduling on a simulated CPU.

One :class:`CPU` models one processor.  Tasks (generator coroutines) are
scheduled cooperatively, exactly like Marcel user-level threads on the
paper's hardware: a task holds the CPU until it charges, sleeps, blocks or
yields.  Time only passes when a task *charges* (software overhead) or when
the CPU is idle waiting for an event — so every microsecond of the results
is attributable to a modelled cost.

Scheduling hot path: releasing the CPU does not enqueue a zero-delay
dispatch event when the engine is *quiet* (no other event due at the
current timestamp) — the next ready task is dispatched synchronously
instead, which is observably identical because the dispatch event would
have been the unique next thing the engine executed (see
``Engine.quiet_now``).  When the engine is not quiet, the dispatch goes
through ``Engine.call_soon`` so same-timestamp events keep their exact
FIFO ordering.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.coroutines import (
    Charge,
    ClockSleep,
    GetTime,
    Sleep,
    SystemCall,
    Wait,
    YieldCPU,
)
from repro.sim.engine import Engine
from repro.sim.ring import Ring

TaskBody = Generator[SystemCall, Any, Any]

#: Free-list capacity for recyclable (temporary) tasks, per CPU.  A rank
#: rarely has more than a handful of temporary threads in flight; the
#: pool only needs to cover that churn, not the backlog.
_TASK_POOL_MAX = 64

#: Compact a CPU's task roster once this many recyclable tasks have
#: finished since the last compaction.  Deliberately high enough that
#: the small golden workloads (a few dozen temporary threads) never
#: compact — their ``tasks()`` aggregation, which the determinism
#: goldens pin, is untouched.
_TASK_COMPACT_MIN = 256


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    CHARGING = "charging"  # holding the CPU while virtual time passes
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


#: States in which a task will never run again.
FINISHED_STATES = frozenset({TaskState.DONE, TaskState.FAILED, TaskState.KILLED})


class Task:
    """A generator coroutine scheduled on a :class:`CPU`.

    A finished task is also a waitable: other tasks may ``yield wait(task)``
    to join it; the join evaluates to the task's return value.
    """

    _counter = 0

    def __init__(self, cpu: "CPU", body: TaskBody, name: str | None = None,
                 daemon: bool = False):
        if not hasattr(body, "send"):
            raise SimulationError(
                f"task body must be a generator, got {type(body).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        Task._counter += 1
        self.cpu = cpu
        self.gen = body
        self.name = name or f"task-{Task._counter}"
        #: Daemon tasks do not count for deadlock detection and may be
        #: killed at teardown — the polling threads of ch_mad are daemons.
        self.daemon = daemon
        self.state = TaskState.NEW
        #: True once the task reached DONE/FAILED/KILLED.  A plain flag,
        #: not a property over ``state``: it is read millions of times on
        #: the scheduler hot path (enum-set membership costs a hash).
        self.finished = False
        self.result: Any = None
        self.exception: BaseException | None = None
        #: Total ns of CPU this task has charged (profiling; the Fig. 9
        #: analysis reads polling threads' shares from here).
        self.cpu_time: int = 0
        #: The waitable this task is currently blocked on (None unless
        #: state is BLOCKED) — deadlock diagnostics read it to say *what*
        #: a hung thread was waiting for.
        self.waiting_on: Any = None
        self._joiners: list[tuple[Task, Any]] = []
        self._done_callbacks: list[Callable[["Task"], None]] = []
        self._wake_value: Any = None
        #: True while this task sits in its CPU's ready deque (tombstone
        #: accounting: a killed task stays queued but dead, see
        #: ``CPU._discard``).
        self._queued = False
        #: Recyclable tasks (temporary threads) may be returned to their
        #: CPU's free-list after finishing cleanly; the spawner promises
        #: to drop the Task handle (no joins, no done-callbacks added
        #: after the fact).  See ``CPU._compact_tasks``.
        self.recyclable = False

    # -- waitable protocol (join) ------------------------------------------

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self.finished:
            if self.exception is not None:
                raise self.exception
            return True, self.result
        self._joiners.append((task, None))
        return False, None

    def add_done_callback(self, fn: Callable[["Task"], None]) -> None:
        """Call ``fn(self)`` when the task finishes (any terminal state).

        Fires immediately if the task is already finished.  Completion
        bookkeeping (e.g. the cluster session's remaining-ranks counter)
        uses this instead of polling ``finished`` per engine event.
        """
        if self.finished:
            fn(self)
        else:
            self._done_callbacks.append(fn)

    def _finish(self, result: Any = None, exception: BaseException | None = None,
                killed: bool = False) -> None:
        if killed:
            self.state = TaskState.KILLED
        elif exception is not None:
            self.state = TaskState.FAILED
            self.exception = exception
        else:
            self.state = TaskState.DONE
            self.result = result
        self.finished = True
        joiners, self._joiners = self._joiners, []
        for joiner, _ in joiners:
            if not joiner.finished:
                joiner.cpu.make_ready(joiner, self.result)
        if self._done_callbacks:
            callbacks, self._done_callbacks = self._done_callbacks, []
            for fn in callbacks:
                fn(self)
        if self.recyclable:
            self.cpu._note_recyclable_finish()

    def _reinit(self, body: TaskBody, name: str | None, daemon: bool) -> None:
        """Explicit reset for free-list reuse (``CPU.spawn`` recycling).

        Bumps the class counter exactly like ``__init__`` so default
        task names stay identical whether or not an object was recycled.
        Only tasks that finished cleanly (DONE, not queued anywhere) are
        ever pooled, so the waiter/joiner/callback lists are empty here.
        """
        Task._counter += 1
        self.gen = body
        self.name = name or f"task-{Task._counter}"
        self.daemon = daemon
        self.state = TaskState.NEW
        self.finished = False
        self.result = None
        self.exception = None
        self.cpu_time = 0
        self.waiting_on = None
        self._wake_value = None
        self._queued = False

    def waiting_description(self) -> str:
        """Human-readable description of what this task is blocked on."""
        if self.state is not TaskState.BLOCKED or self.waiting_on is None:
            return self.state.value
        waitable = self.waiting_on
        kind = type(waitable).__name__
        name = getattr(waitable, "name", None)
        return f"{kind} {name!r}" if name is not None else f"{kind} {waitable!r}"

    def kill(self) -> None:
        """Forcefully terminate the task (used for daemon teardown)."""
        if self.finished:
            return
        self.gen.close()
        if self.cpu.current is self:
            # Cannot happen from within the task itself (it would have to
            # call kill() while running, which close() prevents), but guard.
            self.cpu.current = None  # pragma: no cover - defensive
        self.cpu._discard(self)
        self._finish(killed=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value}>"


class CPU:
    """One simulated processor running cooperative tasks.

    ``switch_cost`` ns are charged whenever the CPU starts running a task
    different from the one it ran last — the cost of a Marcel user-level
    context switch (sub-microsecond on the paper's hardware).
    """

    _counter = 0

    def __init__(self, engine: Engine, name: str | None = None, switch_cost: int = 0):
        CPU._counter += 1
        self.engine = engine
        self.name = name or f"cpu-{CPU._counter}"
        self.switch_cost = int(switch_cost)
        self.current: Task | None = None
        self._ready: deque[Task] = deque()
        #: Tombstones: killed tasks still sitting in ``_ready`` (they are
        #: skipped on pop).  ``ready_count`` subtracts this so discarding
        #: a queued task is O(1) instead of ``deque.remove``'s O(n).
        self._ready_dead = 0
        self._last_ran: Task | None = None
        self._dispatch_pending = False
        self._tasks: list[Task] = []
        #: Free-list of recyclable Task shells (see :meth:`spawn`).
        self._task_pool = Ring(_TASK_POOL_MAX)
        self._finished_recyclable = 0
        #: True once this CPU's rank died (FT): pools are drained and
        #: recycling stops — a dead rank's pooled objects must never
        #: re-enter live traffic.
        self.pools_retired = False
        self._retire_hooks: list[Callable[[], None]] = []
        #: Total ns this CPU spent busy (charges + switches), diagnostic.
        self.busy_time: int = 0

    # -- public API --------------------------------------------------------

    def spawn(self, body: TaskBody | Callable[[], TaskBody], name: str | None = None,
              daemon: bool = False, recyclable: bool = False) -> Task:
        """Create a task from a generator (or a zero-arg generator function).

        ``recyclable`` opts the task into the CPU's free-list: after it
        finishes cleanly its shell may be reset and reused by a later
        recyclable spawn.  Callers passing it promise to drop the
        returned handle — never join a recyclable task or register done
        callbacks on it after it may have finished (the temporary
        fire-and-forget threads of the MPI device layer qualify; see
        ``MarcelRuntime.spawn_temporary``).
        """
        if callable(body) and not hasattr(body, "send"):
            body = body()
        if recyclable and not self.pools_retired:
            pool = self._task_pool
            if pool:
                task = pool.pop()
                task._reinit(body, name, daemon)
            else:
                task = Task(self, body, name=name, daemon=daemon)
                task.recyclable = True
        else:
            task = Task(self, body, name=name, daemon=daemon)
        self._tasks.append(task)
        task.state = TaskState.READY
        task._queued = True
        self._ready.append(task)
        self._ensure_dispatch()
        return task

    def make_ready(self, task: Task, value: Any = None) -> None:
        """Unblock ``task`` with ``value`` as the result of its pending wait."""
        if task.finished:
            return
        if task.state in (TaskState.READY, TaskState.RUNNING, TaskState.CHARGING):
            raise SimulationError(f"cannot wake {task!r}: not blocked or sleeping")
        task.state = TaskState.READY
        task.waiting_on = None
        task._wake_value = value
        task._queued = True
        self._ready.append(task)
        self._ensure_dispatch()

    def ready_count(self) -> int:
        """Live tasks waiting in the ready queue.  O(1)."""
        return len(self._ready) - self._ready_dead

    def tasks(self) -> Iterable[Task]:
        """All tasks on this CPU's roster.

        Every task ever spawned, minus finished *recyclable* temporaries
        that have been compacted away (threshold-gated, see
        :meth:`_compact_tasks`) — without that exception a million-message
        run would retain every temporary isend/rndv thread it ever
        spawned.  Persistent tasks (mains, pollers, anything spawned
        without ``recyclable=True``) are always present.
        """
        return tuple(self._tasks)

    def live_tasks(self) -> list[Task]:
        """Tasks that have not finished."""
        return [t for t in self._tasks if not t.finished]

    def blocked_nondaemon_tasks(self) -> list[Task]:
        """Non-daemon tasks still blocked — deadlock diagnostics."""
        return [
            t for t in self._tasks
            if not t.finished and not t.daemon and t.state == TaskState.BLOCKED
        ]

    # -- object-pool maintenance -------------------------------------------

    def _note_recyclable_finish(self) -> None:
        self._finished_recyclable += 1
        if self._finished_recyclable >= _TASK_COMPACT_MIN:
            self._compact_tasks()

    def _compact_tasks(self) -> None:
        """Drop finished recyclable tasks from the roster, pooling shells.

        Only tasks that finished cleanly (DONE) and are not still queued
        as ready-deque tombstones are eligible for the free-list: a
        KILLED task may linger in a waitable's waiter deque, where a
        recycled (live-again) shell would be spuriously woken.  Harvested
        shells clear ``_last_ran`` so a reused identity charges the same
        context-switch cost a fresh Task object would.
        """
        pool = self._task_pool
        retired = self.pools_retired
        keep = []
        for task in self._tasks:
            if not (task.finished and task.recyclable):
                keep.append(task)
                continue
            if (not retired and task.state is TaskState.DONE
                    and not task._queued):
                if self._last_ran is task:
                    self._last_ran = None
                task.gen = None  # type: ignore[assignment]
                pool.push(task)
        self._tasks[:] = keep
        self._finished_recyclable = 0

    def retire_pools(self) -> None:
        """FT: drop pooled objects and stop pooling on this CPU forever.

        Called when this CPU's rank is killed.  The task free-list is
        emptied, future recyclable spawns allocate fresh, and any
        registered retirement hooks fire (the rank's progress engine
        registers its request pools here) — a dead rank's pooled objects
        must be retired, never recycled into live traffic.
        """
        self.pools_retired = True
        self._task_pool.clear()
        for hook in self._retire_hooks:
            hook()

    def on_retire_pools(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run when this CPU's pools are retired."""
        self._retire_hooks.append(hook)

    # -- internals ----------------------------------------------------------

    def _discard(self, task: Task) -> None:
        # O(1) tombstone: the task stays in the deque; _dispatch skips
        # finished tasks and ready_count() subtracts the dead.
        if task._queued:
            self._ready_dead += 1

    def _ensure_dispatch(self) -> None:
        if self.current is None and not self._dispatch_pending:
            self._dispatch_pending = True
            self.engine.call_soon(self._dispatch)

    def _release_cpu(self) -> None:
        """The CPU just went idle at the tail of an event callback.

        Dispatch the next ready task inline when that is legal (engine
        quiet at this timestamp), otherwise fall back to a queued
        zero-delay dispatch exactly like the pre-fast-path scheduler.
        """
        if self._dispatch_pending:
            return
        if self._ready and self.engine.quiet_now():
            self._dispatch()
        else:
            self._dispatch_pending = True
            self.engine.call_soon(self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        ready = self._ready
        engine = self.engine
        while self.current is None and ready:
            if engine.fuzz is not None and len(ready) > 1:
                # Schedule fuzzing: seeded ready-queue tie-breaking.  Any
                # rotation is a legal cooperative schedule; MPI semantics
                # must survive all of them (see repro.check.fuzz).
                engine.fuzz.perturb_ready(ready)
            task = ready.popleft()
            task._queued = False
            if task.finished:
                self._ready_dead -= 1
                continue
            self.current = task
            value, task._wake_value = task._wake_value, None
            if self._last_ran is not task and self.switch_cost > 0:
                self.busy_time += self.switch_cost
                engine.schedule_discard(self.switch_cost, self._resume_event,
                                        task, value)
                return
            self._resume(task, value)
            # The task charged (still current, resumes via a timed event)
            # or released the CPU.  Keep dispatching inline only while the
            # engine stays quiet; otherwise preserve event-queue ordering.
            if self.current is not None:
                return
            if ready and not engine.quiet_now():
                self._ensure_dispatch()
                return

    def _resume_event(self, task: Task, value: Any) -> None:
        """Engine-event entry point for resuming ``task``."""
        self._resume(task, value)
        if self.current is None:
            self._release_cpu()

    def _resume(self, task: Task, value: Any) -> None:
        """Advance ``task``'s generator, interpreting its system calls.

        Returns with ``self.current`` still set iff the task is charging
        (a timed ``_resume_event`` is queued); otherwise the CPU has been
        released and the *caller* is responsible for dispatching next
        (``_dispatch`` loops inline, ``_resume_event`` calls
        ``_release_cpu``).
        """
        if task.finished:
            self.current = None
            return
        self._last_ran = task
        engine = self.engine
        send = task.gen.send
        running = TaskState.RUNNING
        while True:
            task.state = running
            try:
                syscall = send(value)
            except StopIteration as stop:
                self.current = None
                task._finish(result=stop.value)
                return
            except BaseException as exc:
                self.current = None
                task._finish(exception=exc)
                # Not a tail position: the exception propagates through the
                # engine, so any further dispatch must stay queued.
                self._ensure_dispatch()
                raise
            value = None
            cls = syscall.__class__
            if cls is Charge:
                duration = syscall.duration
                if duration == 0:
                    continue
                task.state = TaskState.CHARGING
                self.busy_time += duration
                task.cpu_time += duration
                engine.schedule_discard(duration, self._resume_event, task, None)
                return
            if cls is Wait:
                waitable = syscall.waitable
                acquired, wait_value = waitable._try_acquire(task)
                if acquired:
                    value = wait_value
                    continue
                task.state = TaskState.BLOCKED
                task.waiting_on = waitable
                self.current = None
                return
            if cls is GetTime:
                value = engine._now
                continue
            if cls is Sleep:
                task.state = TaskState.SLEEPING
                self.current = None
                engine.schedule_discard(syscall.duration, self._wake_sleeper, task)
                return
            if cls is ClockSleep:
                task.state = TaskState.SLEEPING
                self.current = None
                engine.schedule_clock(syscall.duration, self,
                                      self._wake_sleeper, task)
                return
            if cls is YieldCPU:
                task.state = TaskState.READY
                self.current = None
                task._queued = True
                self._ready.append(task)
                return
            # Subclasses of the syscall types still work, just off the
            # fast path.
            if isinstance(syscall, Charge):
                duration = syscall.duration
                if duration == 0:
                    continue
                task.state = TaskState.CHARGING
                self.busy_time += duration
                task.cpu_time += duration
                engine.schedule_discard(duration, self._resume_event, task, None)
                return
            if isinstance(syscall, GetTime):
                value = engine._now
                continue
            if isinstance(syscall, Wait):
                acquired, wait_value = syscall.waitable._try_acquire(task)
                if acquired:
                    value = wait_value
                    continue
                task.state = TaskState.BLOCKED
                task.waiting_on = syscall.waitable
                self.current = None
                return
            if isinstance(syscall, Sleep):
                task.state = TaskState.SLEEPING
                self.current = None
                if isinstance(syscall, ClockSleep):
                    engine.schedule_clock(syscall.duration, self,
                                          self._wake_sleeper, task)
                else:
                    engine.schedule_discard(syscall.duration,
                                            self._wake_sleeper, task)
                return
            if isinstance(syscall, YieldCPU):
                task.state = TaskState.READY
                self.current = None
                task._queued = True
                self._ready.append(task)
                return
            raise SimulationError(
                f"task {task.name} yielded {syscall!r}, which is not a SystemCall"
            )

    def _wake_sleeper(self, task: Task) -> None:
        if task.finished:
            return
        task.state = TaskState.READY
        task._queued = True
        self._ready.append(task)
        if self.current is None:
            self._release_cpu()
        # else: the CPU is busy; whoever releases it dispatches.

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CPU {self.name} current={self.current} ready={len(self._ready)}>"
