"""Cooperative task scheduling on a simulated CPU.

One :class:`CPU` models one processor.  Tasks (generator coroutines) are
scheduled cooperatively, exactly like Marcel user-level threads on the
paper's hardware: a task holds the CPU until it charges, sleeps, blocks or
yields.  Time only passes when a task *charges* (software overhead) or when
the CPU is idle waiting for an event — so every microsecond of the results
is attributable to a modelled cost.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.coroutines import Charge, GetTime, Sleep, SystemCall, Wait, YieldCPU
from repro.sim.engine import Engine

TaskBody = Generator[SystemCall, Any, Any]


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    CHARGING = "charging"  # holding the CPU while virtual time passes
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


#: States in which a task will never run again.
FINISHED_STATES = frozenset({TaskState.DONE, TaskState.FAILED, TaskState.KILLED})


class Task:
    """A generator coroutine scheduled on a :class:`CPU`.

    A finished task is also a waitable: other tasks may ``yield wait(task)``
    to join it; the join evaluates to the task's return value.
    """

    _counter = 0

    def __init__(self, cpu: "CPU", body: TaskBody, name: str | None = None,
                 daemon: bool = False):
        if not hasattr(body, "send"):
            raise SimulationError(
                f"task body must be a generator, got {type(body).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        Task._counter += 1
        self.cpu = cpu
        self.gen = body
        self.name = name or f"task-{Task._counter}"
        #: Daemon tasks do not count for deadlock detection and may be
        #: killed at teardown — the polling threads of ch_mad are daemons.
        self.daemon = daemon
        self.state = TaskState.NEW
        self.result: Any = None
        self.exception: BaseException | None = None
        #: Total ns of CPU this task has charged (profiling; the Fig. 9
        #: analysis reads polling threads' shares from here).
        self.cpu_time: int = 0
        #: The waitable this task is currently blocked on (None unless
        #: state is BLOCKED) — deadlock diagnostics read it to say *what*
        #: a hung thread was waiting for.
        self.waiting_on: Any = None
        self._joiners: list[tuple[Task, Any]] = []
        self._wake_value: Any = None

    # -- waitable protocol (join) ------------------------------------------

    def _try_acquire(self, task: "Task") -> tuple[bool, Any]:
        if self.state in FINISHED_STATES:
            if self.exception is not None:
                raise self.exception
            return True, self.result
        self._joiners.append((task, None))
        return False, None

    def _finish(self, result: Any = None, exception: BaseException | None = None,
                killed: bool = False) -> None:
        if killed:
            self.state = TaskState.KILLED
        elif exception is not None:
            self.state = TaskState.FAILED
            self.exception = exception
        else:
            self.state = TaskState.DONE
            self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner, _ in joiners:
            if joiner.state not in FINISHED_STATES:
                joiner.cpu.make_ready(joiner, self.result)

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    def waiting_description(self) -> str:
        """Human-readable description of what this task is blocked on."""
        if self.state is not TaskState.BLOCKED or self.waiting_on is None:
            return self.state.value
        waitable = self.waiting_on
        kind = type(waitable).__name__
        name = getattr(waitable, "name", None)
        return f"{kind} {name!r}" if name is not None else f"{kind} {waitable!r}"

    def kill(self) -> None:
        """Forcefully terminate the task (used for daemon teardown)."""
        if self.finished:
            return
        self.gen.close()
        if self.cpu.current is self:
            # Cannot happen from within the task itself (it would have to
            # call kill() while running, which close() prevents), but guard.
            self.cpu.current = None  # pragma: no cover - defensive
        self.cpu._discard(self)
        self._finish(killed=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value}>"


class CPU:
    """One simulated processor running cooperative tasks.

    ``switch_cost`` ns are charged whenever the CPU starts running a task
    different from the one it ran last — the cost of a Marcel user-level
    context switch (sub-microsecond on the paper's hardware).
    """

    _counter = 0

    def __init__(self, engine: Engine, name: str | None = None, switch_cost: int = 0):
        CPU._counter += 1
        self.engine = engine
        self.name = name or f"cpu-{CPU._counter}"
        self.switch_cost = int(switch_cost)
        self.current: Task | None = None
        self._ready: deque[Task] = deque()
        self._last_ran: Task | None = None
        self._dispatch_pending = False
        self._tasks: list[Task] = []
        #: Total ns this CPU spent busy (charges + switches), diagnostic.
        self.busy_time: int = 0

    # -- public API --------------------------------------------------------

    def spawn(self, body: TaskBody | Callable[[], TaskBody], name: str | None = None,
              daemon: bool = False) -> Task:
        """Create a task from a generator (or a zero-arg generator function)."""
        if callable(body) and not hasattr(body, "send"):
            body = body()
        task = Task(self, body, name=name, daemon=daemon)
        self._tasks.append(task)
        task.state = TaskState.READY
        self._ready.append(task)
        self._ensure_dispatch()
        return task

    def make_ready(self, task: Task, value: Any = None) -> None:
        """Unblock ``task`` with ``value`` as the result of its pending wait."""
        if task.finished:
            return
        if task.state in (TaskState.READY, TaskState.RUNNING, TaskState.CHARGING):
            raise SimulationError(f"cannot wake {task!r}: not blocked or sleeping")
        task.state = TaskState.READY
        task.waiting_on = None
        task._wake_value = value
        self._ready.append(task)
        self._ensure_dispatch()

    def tasks(self) -> Iterable[Task]:
        """All tasks ever spawned on this CPU."""
        return tuple(self._tasks)

    def live_tasks(self) -> list[Task]:
        """Tasks that have not finished."""
        return [t for t in self._tasks if not t.finished]

    def blocked_nondaemon_tasks(self) -> list[Task]:
        """Non-daemon tasks still blocked — deadlock diagnostics."""
        return [
            t for t in self._tasks
            if not t.finished and not t.daemon and t.state == TaskState.BLOCKED
        ]

    # -- internals ----------------------------------------------------------

    def _discard(self, task: Task) -> None:
        try:
            self._ready.remove(task)
        except ValueError:
            pass

    def _ensure_dispatch(self) -> None:
        if self.current is None and not self._dispatch_pending:
            self._dispatch_pending = True
            self.engine.schedule(0, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if self.current is not None:
            return
        while self._ready:
            task = self._ready.popleft()
            if task.finished:
                continue
            self.current = task
            value, task._wake_value = task._wake_value, None
            if self._last_ran is not task and self.switch_cost > 0:
                self.busy_time += self.switch_cost
                self.engine.schedule(self.switch_cost, self._resume, task, value)
            else:
                self._resume(task, value)
            return

    def _resume(self, task: Task, value: Any) -> None:
        """Advance ``task``'s generator, interpreting its system calls."""
        if task.finished:
            self.current = None
            self._ensure_dispatch()
            return
        self._last_ran = task
        while True:
            task.state = TaskState.RUNNING
            try:
                syscall = task.gen.send(value)
            except StopIteration as stop:
                self.current = None
                task._finish(result=stop.value)
                self._ensure_dispatch()
                return
            except BaseException as exc:
                self.current = None
                task._finish(exception=exc)
                self._ensure_dispatch()
                raise
            value = None
            if isinstance(syscall, Charge):
                if syscall.duration == 0:
                    continue
                task.state = TaskState.CHARGING
                self.busy_time += syscall.duration
                task.cpu_time += syscall.duration
                self.engine.schedule(syscall.duration, self._resume, task, None)
                return
            if isinstance(syscall, GetTime):
                value = self.engine.now
                continue
            if isinstance(syscall, Sleep):
                task.state = TaskState.SLEEPING
                self.current = None
                self.engine.schedule(syscall.duration, self._wake_sleeper, task)
                self._ensure_dispatch()
                return
            if isinstance(syscall, Wait):
                acquired, wait_value = syscall.waitable._try_acquire(task)
                if acquired:
                    value = wait_value
                    continue
                task.state = TaskState.BLOCKED
                task.waiting_on = syscall.waitable
                self.current = None
                self._ensure_dispatch()
                return
            if isinstance(syscall, YieldCPU):
                task.state = TaskState.READY
                self.current = None
                self._ready.append(task)
                self._ensure_dispatch()
                return
            raise SimulationError(
                f"task {task.name} yielded {syscall!r}, which is not a SystemCall"
            )

    def _wake_sleeper(self, task: Task) -> None:
        if task.finished:
            return
        task.state = TaskState.READY
        self._ready.append(task)
        self._ensure_dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CPU {self.name} current={self.current} ready={len(self._ready)}>"
