"""Collective-algorithm benchmarks: flat vs hierarchical vs multi-lane.

One :func:`collective_bench` call times one ``(operation, algorithm)``
pair on one multirail SMP cluster, in *virtual* nanoseconds — the
simulator is deterministic, so the numbers are exact and reproducible,
and regression guards can compare them bit for bit.

The measured quantity is the barrier-to-barrier span of the operation:
every rank barriers, the operation runs, every rank barriers again; the
cost is the maximum span over ranks.  Setup collectives (the node/leader
split for ``hier``, the lane dups for ``multilane``) happen during the
warmup repetitions, so the steady-state cost is what gets reported —
matching how these algorithms amortize in applications.

``python -m repro`` reaches this through the ``coll_bench`` runner
executor (:mod:`repro.runner.jobs`); ``benchmarks/perf/collperf.py``
sweeps it and maintains ``BENCH_collectives.json``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cluster import MPIWorld, multirail_smp_cluster
from repro.errors import ConfigurationError
from repro.mpi.reduce_ops import SUM
from repro.sim.coroutines import now


def collective_bench(operation: str = "allreduce",
                     algorithm: str = "default",
                     ranks: int = 64,
                     processes_per_node: int = 2,
                     rails: int = 2,
                     network: str = "sisci",
                     size: int = 65536,
                     reps: int = 3,
                     warmup: int = 1) -> dict[str, Any]:
    """Time one collective algorithm; returns a JSON-safe record.

    ``size`` is the payload in bytes (float64 elements underneath);
    ``ranks`` must divide evenly into ``processes_per_node``-rank nodes.
    """
    if ranks % processes_per_node:
        raise ConfigurationError(
            f"ranks={ranks} not divisible by "
            f"processes_per_node={processes_per_node}")
    config = multirail_smp_cluster(nodes=ranks // processes_per_node,
                                   processes_per_node=processes_per_node,
                                   rails=rails, network=network)
    count = max(1, size // 8)

    def program(mpi):
        comm = mpi.comm_world
        data = np.full(count, float(comm.rank + 1), dtype=np.float64)
        spans = []
        result = None
        for rep in range(warmup + reps):
            yield from comm.barrier()
            start = yield now()
            if operation == "allreduce":
                result = yield from comm.allreduce(data, SUM,
                                                   algorithm=algorithm)
            elif operation == "bcast":
                obj = data if comm.rank == 0 else None
                result = yield from comm.bcast(obj, root=0,
                                               algorithm=algorithm)
            elif operation == "allgather":
                result = yield from comm.allgather(data[:count // comm.size
                                                        or 1],
                                                   algorithm=algorithm)
            elif operation == "barrier":
                yield from comm.barrier(algorithm=algorithm)
                result = True
            else:
                raise ConfigurationError(
                    f"collective_bench: unsupported operation {operation!r}")
            yield from comm.barrier()
            stop = yield now()
            if rep >= warmup:
                spans.append(stop - start)
        if operation == "allreduce":
            checksum = float(np.asarray(result).reshape(-1)[0])
        elif operation == "bcast":
            checksum = float(np.asarray(result).reshape(-1)[0])
        elif operation == "allgather":
            checksum = float(len(result))
        else:
            checksum = 1.0
        return (tuple(spans), checksum)

    results = MPIWorld(config).run(program)
    per_rep = [max(rank_spans[rep] for rank_spans, _ in results)
               for rep in range(reps)]
    return {
        "operation": operation,
        "algorithm": algorithm,
        "ranks": ranks,
        "processes_per_node": processes_per_node,
        "rails": rails,
        "network": network,
        "size": size,
        "reps": reps,
        "per_rep_ns": per_rep,
        "mean_ns": sum(per_rep) / len(per_rep),
        "checksum": results[0][1],
    }
