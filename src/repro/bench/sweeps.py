"""Message-size grids matching the paper's figures.

The transfer-time plots (Figures 6a/7a/8a/9a) sweep 1 B – 1 KB; the
bandwidth plots (6b/7b/8b/9b) sweep 1 B – 1 MB on a power-of-four-ish
grid; Tables 1 and 2 anchor 0 B / 4 B latency and 8 MB bandwidth.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.pingpong import PingPongResult

#: Figure "(a)" x-axis: 1 B .. 1 KB.
LATENCY_SWEEP_SIZES: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)

#: Figure "(b)" x-axis: 1 B .. 1 MB.
BANDWIDTH_SWEEP_SIZES: tuple[int, ...] = (
    1, 4, 16, 64, 256,
    1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024,
)

#: Extra points so curve knees (switch points at 7/8/64 KB) are visible.
DETAILED_BANDWIDTH_SIZES: tuple[int, ...] = (
    1, 4, 16, 64, 256, 512,
    1024, 2048, 4096, 6144, 8192, 12288, 16384,
    32768, 65536, 131072, 262144, 524288, 1048576,
)

TABLE_LATENCY_SIZES: tuple[int, ...] = (0, 4)
TABLE_BANDWIDTH_SIZE: int = 8 * 1000 * 1000  # "8 MB message", MB = 10^6


def sweep(measure: Callable[[int], PingPongResult],
          sizes: Sequence[int]) -> list[PingPongResult]:
    """Run ``measure`` across ``sizes`` and collect the results."""
    return [measure(size) for size in sizes]
