"""Post-mortem analysis of traced simulations.

Turns a :class:`~repro.sim.trace.Tracer` record stream plus the per-task
CPU accounting into human-readable summaries: who burned the CPU, what
travelled on each network, and a coarse text timeline of message
activity.  The MPE/jumpshot of this reproduction, at terminal scale.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Iterable

from repro.bench.report import format_table
from repro.sim.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.session import MPIWorld


def cpu_report(world: "MPIWorld") -> str:
    """Per-thread CPU time per rank, from Task.cpu_time accounting."""
    rows = []
    for env in world.envs:
        cpu = env.process.runtime.cpu
        for task in cpu.tasks():
            if task.cpu_time == 0:
                continue
            share = task.cpu_time / max(cpu.busy_time, 1)
            rows.append((env.rank, task.name.split(".", 1)[-1],
                         task.cpu_time / 1000, f"{100 * share:.1f}%"))
    rows.sort(key=lambda r: -r[2])
    return format_table(["rank", "thread", "cpu (us)", "share of busy"],
                        rows, title="CPU attribution")


def network_report(world: "MPIWorld") -> str:
    """Per-fabric message and byte counters."""
    rows = []
    for name, fabric in sorted(world.session.fabrics.items()):
        messages = sum(a.messages_received for a in fabric.adapters)
        payload = sum(a.bytes_received for a in fabric.adapters)
        rows.append((name, len(fabric.adapters), messages, payload))
    return format_table(["network", "adapters", "messages", "bytes"],
                        rows, title="Network traffic")


def packet_mix(records: Iterable[TraceRecord]) -> str:
    """Breakdown of ch_mad packet kinds (needs tracing enabled)."""
    counts = Counter(r["pkt"] for r in records if r.category == "chmad.send")
    rows = sorted(counts.items(), key=lambda kv: -kv[1])
    return format_table(["packet", "count"], rows, title="ch_mad packet mix")


def message_timeline(records: Iterable[TraceRecord], bucket_us: int = 100,
                     width: int = 50) -> str:
    """A coarse text histogram of network deliveries over time."""
    deliveries = [r for r in records if r.category == "net.deliver"]
    if not deliveries:
        return "(no deliveries traced)"
    bucket_ns = bucket_us * 1000
    buckets: dict[int, Counter] = defaultdict(Counter)
    for record in deliveries:
        buckets[record.time // bucket_ns][record["fabric"]] += 1
    peak = max(sum(c.values()) for c in buckets.values())
    lines = [f"deliveries per {bucket_us} us bucket "
             f"(#=messages, peak={peak}):"]
    for b in range(min(buckets), max(buckets) + 1):
        total = sum(buckets[b].values())
        bar = "#" * round(width * total / peak) if peak else ""
        mix = ",".join(f"{k}:{v}" for k, v in sorted(buckets[b].items()))
        lines.append(f"  {b * bucket_us:7d} us |{bar:<{width}}| {mix}")
    return "\n".join(lines)


def full_report(world: "MPIWorld") -> str:
    """Everything the tracer, instruments and counters know, in one string."""
    records = getattr(world.engine.tracer, "records", [])
    parts = [cpu_report(world), network_report(world)]
    if records:
        parts.append(packet_mix(records))
        parts.append(message_timeline(records))
    instruments = world.engine.instruments
    if instruments.enabled and len(instruments.metrics):
        parts.append(instruments.report())
    return "\n\n".join(parts)
