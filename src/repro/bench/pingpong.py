"""Ping-pong result types and the MPI-level ping-pong driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.units import bandwidth_mb_s, to_us, us

#: Extra idle time inserted before repetition k of a ping-pong.  Real
#: mpptest reps start at effectively random phases relative to periodic
#: pollers (TCP select); min-of-reps then reports the best alignment.
#: The simulator is deterministic, so the harness staggers reps
#: explicitly to sample phases.
PHASE_STEP = us(5)


@dataclass(frozen=True)
class PingPongResult:
    """Outcome of one ping-pong measurement at one message size."""

    label: str
    size: int
    reps: int
    one_way_ns: int          # min(round-trip)/2, mpptest convention
    mean_one_way_ns: float

    @property
    def latency_us(self) -> float:
        """One-way transfer time in microseconds."""
        return to_us(self.one_way_ns)

    @property
    def bandwidth_mb_s(self) -> float:
        """Payload bandwidth in MB/s (1 MB = 10^6 B, paper convention)."""
        return bandwidth_mb_s(self.size, self.one_way_ns)

    @property
    def mean_latency_us(self) -> float:
        """Mean one-way time — used where interference matters (Fig. 9)."""
        return self.mean_one_way_ns / 1000.0

    @property
    def mean_bandwidth_mb_s(self) -> float:
        if self.mean_one_way_ns <= 0:
            return 0.0
        return (self.size / 1e6) / (self.mean_one_way_ns / 1e9)

    def __str__(self) -> str:
        return (f"{self.label}: {self.size} B -> {self.latency_us:.2f} us, "
                f"{self.bandwidth_mb_s:.2f} MB/s")


def summarize_roundtrips(label: str, size: int,
                         roundtrips: Sequence[int]) -> PingPongResult:
    """Fold measured round-trip times into a :class:`PingPongResult`."""
    if not roundtrips:
        raise ValueError("no measured round-trips")
    best = min(roundtrips)
    mean = sum(roundtrips) / len(roundtrips)
    return PingPongResult(
        label=label, size=size, reps=len(roundtrips),
        one_way_ns=best // 2, mean_one_way_ns=mean / 2,
    )


def custom_pingpong(config, size: int, ranks: tuple[int, int] = (0, 1),
                    reps: int = 5, warmup: int = 2, tag: int = 99,
                    label: str = "custom") -> PingPongResult:
    """Ping-pong between two ranks of an arbitrary cluster config.

    Used by the ablation and forwarding benchmarks, which need cluster
    shapes beyond the two-node default (gateways, overridden protocol
    parameters, ablation flags).
    """
    from repro.cluster.session import MPIWorld
    from repro.sim.coroutines import now, sleep

    world = MPIWorld(config)
    rounds = warmup + reps
    payload = b"\x00" * min(size, 1)
    pinger, ponger = ranks
    roundtrips: list[int] = []

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == pinger:
            for rep in range(rounds):
                yield sleep(rep * PHASE_STEP)
                start = yield now()
                yield from comm.send(payload, dest=ponger, tag=tag, size=size)
                yield from comm.recv(source=ponger, tag=tag, size=size)
                end = yield now()
                roundtrips.append(end - start)
        elif comm.rank == ponger:
            for _ in range(rounds):
                yield from comm.recv(source=pinger, tag=tag, size=size)
                yield from comm.send(payload, dest=pinger, tag=tag, size=size)
        return None

    world.run(program)
    return summarize_roundtrips(label=label, size=size,
                                roundtrips=roundtrips[warmup:])


def mpi_pingpong(size: int, networks: Sequence[str] = ("sisci",),
                 device: str = "ch_mad", reps: int = 5, warmup: int = 2,
                 active_network: str | None = None,
                 tag: int = 99) -> PingPongResult:
    """Ping-pong through the full MPI stack between two single-process nodes.

    ``networks`` lists the protocols whose boards (and therefore ch_mad
    polling threads) are present; ``active_network`` picks which one
    carries the traffic (default: the first).  Passing several networks
    with one active reproduces the paper's Figure 9 experiment.

    ``device`` selects the inter-node device: ``"ch_mad"`` (the paper's
    contribution) or ``"ch_p4"`` (the MPICH TCP baseline, which ignores
    ``networks`` and always runs over TCP).
    """
    from repro.cluster.session import MPIWorld
    from repro.cluster.config import two_node_cluster
    from repro.sim.coroutines import now, sleep

    if device == "ch_p4":
        networks = ("tcp",)  # ch_p4 is TCP-only by construction
    world = MPIWorld(two_node_cluster(networks=networks, device=device,
                                      active_network=active_network))
    rounds = warmup + reps
    payload = b"\x00" * min(size, 1)
    roundtrips: list[int] = []

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            for rep in range(rounds):
                yield sleep(rep * PHASE_STEP)
                start = yield now()
                yield from comm.send(payload, dest=1, tag=tag, size=size)
                yield from comm.recv(source=1, tag=tag, size=size)
                end = yield now()
                roundtrips.append(end - start)
        else:
            for _ in range(rounds):
                yield from comm.recv(source=0, tag=tag, size=size)
                yield from comm.send(payload, dest=0, tag=tag, size=size)

    world.run(program)
    return summarize_roundtrips(
        label=f"{device}/{active_network or networks[0]}", size=size,
        roundtrips=roundtrips[warmup:],
    )
