"""Formatting of benchmark output: tables, series, paper-vs-measured."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Plain-text table with aligned columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_metrics(registry, title: str = "Instrumentation report") -> str:
    """Render a :class:`~repro.sim.metrics.MetricsRegistry` as text.

    One table per instrument kind (counters, gauges, histograms),
    omitting kinds with no instruments.
    """
    from repro.sim.metrics import Counter, Gauge, Histogram, format_labels

    blocks = [f"== {title} =="]
    counters = registry.collect(Counter)
    if counters:
        rows = [(c.name, format_labels(c.labels), c.value) for c in counters]
        blocks.append(format_table(["counter", "labels", "value"], rows))
    gauges = registry.collect(Gauge)
    if gauges:
        rows = [(g.name, format_labels(g.labels), g.value, g.high_water)
                for g in gauges]
        blocks.append(format_table(["gauge", "labels", "value", "high-water"],
                                   rows))
    histograms = registry.collect(Histogram)
    if histograms:
        rows = [(h.name, format_labels(h.labels), h.count, h.mean, h.min,
                 h.percentile(50), h.percentile(99), h.max)
                for h in histograms]
        blocks.append(format_table(
            ["histogram", "labels", "count", "mean", "min", "p50", "p99",
             "max"], rows))
    if len(blocks) == 1:
        blocks.append("(no instruments recorded)")
    return "\n\n".join(blocks)


@dataclass(frozen=True)
class PaperCheck:
    """One paper-vs-measured comparison row."""

    quantity: str
    paper: float
    measured: float
    unit: str = ""
    #: Acceptable relative deviation (the reproduction targets shape, not
    #: exact numbers; anchors are typically within ~10 %).
    tolerance: float = 0.15

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return 1.0 if self.measured == 0 else float("inf")
        return self.measured / self.paper

    @property
    def ok(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance


def format_paper_checks(checks: Sequence[PaperCheck], title: str) -> str:
    rows = [
        (c.quantity, f"{c.paper:g}{c.unit}", f"{c.measured:.2f}{c.unit}",
         f"{c.ratio:.2f}x", "ok" if c.ok else "DEVIATES")
        for c in checks
    ]
    return format_table(
        ["quantity", "paper", "measured", "ratio", "verdict"], rows,
        title=title,
    )


@dataclass
class Series:
    """One curve of a figure: per-size latency and bandwidth values."""

    label: str
    sizes: list[int] = field(default_factory=list)
    latency_us: list[float] = field(default_factory=list)
    bandwidth_mb_s: list[float] = field(default_factory=list)

    def add(self, size: int, latency_us: float, bandwidth: float) -> None:
        self.sizes.append(size)
        self.latency_us.append(latency_us)
        self.bandwidth_mb_s.append(bandwidth)

    def at(self, size: int) -> tuple[float, float]:
        """(latency_us, bandwidth) at an exact swept size."""
        i = self.sizes.index(size)
        return self.latency_us[i], self.bandwidth_mb_s[i]


@dataclass
class FigureData:
    """All series of one paper figure (both (a) and (b) panels)."""

    figure_id: str
    title: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        series = Series(label)
        self.series[label] = series
        return series

    def render(self, panel: str = "both") -> str:
        """Plain-text rendering of the figure's data."""
        blocks = [f"== {self.figure_id}: {self.title} =="]
        labels = list(self.series)
        if panel in ("a", "both"):
            sizes = self.series[labels[0]].sizes
            rows = []
            for i, size in enumerate(sizes):
                rows.append([size] + [self.series[l].latency_us[i]
                                      for l in labels])
            blocks.append(format_table(
                ["size(B)"] + [f"{l} (us)" for l in labels], rows,
                title="(a) transfer time",
            ))
        if panel in ("b", "both"):
            sizes = self.series[labels[0]].sizes
            rows = []
            for i, size in enumerate(sizes):
                rows.append([size] + [self.series[l].bandwidth_mb_s[i]
                                      for l in labels])
            blocks.append(format_table(
                ["size(B)"] + [f"{l} (MB/s)" for l in labels], rows,
                title="(b) bandwidth",
            ))
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)
