"""Raw Madeleine ping-pong (the paper's ``raw_Madeleine`` curves).

One message = one packed block with ``send_CHEAPER``/``receive_CHEAPER``
semantics — the cheapest possible path, as in the paper's raw
measurements ("only one pack ... or unpack operation is required and
used", §5.1).
"""

from __future__ import annotations

from repro.bench.pingpong import PingPongResult, summarize_roundtrips
from repro.madeleine import (
    MadeleineSession,
    RECEIVE_CHEAPER,
    SEND_CHEAPER,
)
from repro.networks.params import ProtocolParams
from repro.sim.coroutines import now


def raw_madeleine_pingpong(protocol: str, size: int, reps: int = 5,
                           warmup: int = 2,
                           params: ProtocolParams | None = None) -> PingPongResult:
    """Measure one-way latency/bandwidth for ``size``-byte messages.

    Builds a fresh two-process session on one fabric of ``protocol`` and
    runs ``warmup + reps`` round-trips; reports the minimum round-trip / 2
    (mpptest convention).
    """
    session = MadeleineSession()
    session.add_fabric(protocol, params=params)
    p0 = session.add_process(networks=(protocol,))
    p1 = session.add_process(networks=(protocol,))
    channel = session.new_channel("bench", protocol)
    port0, port1 = p0.port(channel), p1.port(channel)
    rounds = warmup + reps
    payload = b"\x00" * min(size, 1)  # placeholder object; size drives costs
    roundtrips: list[int] = []

    def pinger():
        for _ in range(rounds):
            start = yield now()
            msg = port0.begin_packing(1)
            yield from msg.pack(payload, size, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()
            incoming = yield from port0.begin_unpacking()
            yield from incoming.unpack(size, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from incoming.end_unpacking()
            end = yield now()
            roundtrips.append(end - start)

    def ponger():
        for _ in range(rounds):
            incoming = yield from port1.begin_unpacking()
            yield from incoming.unpack(size, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from incoming.end_unpacking()
            msg = port1.begin_packing(0)
            yield from msg.pack(payload, size, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()

    p0.runtime.spawn(pinger, name="pinger")
    p1.runtime.spawn(ponger, name="ponger")
    session.run()
    return summarize_roundtrips(
        label=f"raw_madeleine/{protocol}", size=size,
        roundtrips=roundtrips[warmup:],
    )
