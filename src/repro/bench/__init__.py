"""Benchmark harness — the reproduction's equivalent of mpptest (§5.1).

All measurements are ping-pongs between two simulated processes: the
reported latency is half the best round-trip over several repetitions,
exactly like the paper's mpptest runs; bandwidth is payload bytes over
one-way time, with 1 MB = 10^6 bytes (§5.1).

Entry points:

- :func:`~repro.bench.raw_madeleine.raw_madeleine_pingpong` — Madeleine
  alone, one pack per message (the paper's ``raw_Madeleine`` curves).
- :func:`~repro.bench.pingpong.mpi_pingpong` — through the full MPI
  stack with a chosen device (``ch_mad``, ``ch_p4``) and network mix.
- :mod:`~repro.bench.sweeps` — the paper's message-size grids.
- :mod:`~repro.bench.figures` — one series builder per table/figure.
- :mod:`~repro.bench.report` — formatting of paper-vs-measured rows.
"""

from repro.bench.pingpong import PingPongResult, mpi_pingpong
from repro.bench.raw_madeleine import raw_madeleine_pingpong
from repro.bench.sweeps import (
    LATENCY_SWEEP_SIZES,
    BANDWIDTH_SWEEP_SIZES,
    sweep,
)

__all__ = [
    "BANDWIDTH_SWEEP_SIZES",
    "LATENCY_SWEEP_SIZES",
    "PingPongResult",
    "mpi_pingpong",
    "raw_madeleine_pingpong",
    "sweep",
]
