"""One builder per paper table/figure (the experiment index of DESIGN.md).

Each figure is declared as a :class:`FigurePlan` — an ordered list of
series, each an ordered list of :class:`~repro.runner.spec.JobSpec`
measurement jobs — and *assembled* from the jobs' payloads by
:func:`build_figure`.  Declaring the jobs separately from running them
is what lets the same figure execute serially (bit-identical to the
pre-runner builders), fan out across a worker pool, or replay from the
content-addressed result cache: the numbers depend only on the specs.

The classic entry points (``figure6_tcp()`` .. ``figure9_multiprotocol()``,
``table1_raw_madeleine()``, ``table2_summary()``) are kept with their
original signatures and results; they now route through a serial
in-process :class:`~repro.runner.runner.Runner`.  Pass ``runner=`` to
any of them to parallelize or cache.  The ``benchmarks/`` suite asserts
the paper's shape statements against these, and ``python -m repro
report`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines import MPICH_PM, MPI_GM, SCAMPI, SCI_MPICH
from repro.bench.pingpong import PingPongResult
from repro.bench.report import FigureData, PaperCheck
from repro.bench.sweeps import (
    BANDWIDTH_SWEEP_SIZES,
    LATENCY_SWEEP_SIZES,
    TABLE_BANDWIDTH_SIZE,
    TABLE_LATENCY_SIZES,
)
from repro.runner import JobSpec, Runner
from repro.runner.jobs import pingpong_result

#: Paper Table 1 values (raw Madeleine).
TABLE1_PAPER = {
    "tcp": {"latency_us": 121.0, "bandwidth_mb_s": 11.2},
    "bip": {"latency_us": 9.2, "bandwidth_mb_s": 122.0},
    "sisci": {"latency_us": 4.4, "bandwidth_mb_s": 82.6},
}

#: Paper Table 2 values (ch_mad).
TABLE2_PAPER = {
    "tcp": {"lat0_us": 130.0, "lat4_us": 148.7, "bandwidth_mb_s": 11.2},
    "bip": {"lat0_us": 16.9, "lat4_us": 18.9, "bandwidth_mb_s": 115.0},
    "sisci": {"lat0_us": 13.0, "lat4_us": 20.0, "bandwidth_mb_s": 82.5},
}


def _bw_reps(size: int) -> int:
    """Fewer repetitions for huge messages (deterministic sim anyway)."""
    return 2 if size >= 1024 * 1024 else 3


# ---------------------------------------------------------------------------
# job builders — one JobSpec per measured point
# ---------------------------------------------------------------------------

def mpi_job(size: int, **params) -> JobSpec:
    """Full-stack ping-pong job (:func:`repro.bench.pingpong.mpi_pingpong`).

    Only explicitly-passed keywords enter the spec (and therefore the
    cache digest), mirroring how the pre-runner builders called the
    measurement functions with their defaults implied.
    """
    if "networks" in params:
        params["networks"] = list(params["networks"])
    what = params.get("device") or "/".join(params.get("networks", ["sisci"]))
    return JobSpec(kind="mpi_pingpong", params={"size": size, **params},
                   label=f"mpi:{what}:{size}B")


def raw_job(protocol: str, size: int, **params) -> JobSpec:
    """Raw Madeleine ping-pong job (Table 1 / ``raw_Madeleine`` curves)."""
    return JobSpec(kind="raw_pingpong",
                   params={"protocol": protocol, "size": size, **params},
                   label=f"raw:{protocol}:{size}B")


def baseline_job(model, size: int) -> JobSpec:
    """One analytic-comparator point (ScaMPI/SCI-MPICH/MPI-GM/MPICH-PM)."""
    return JobSpec(kind="baseline_point",
                   params={"model": model.name, "size": size},
                   label=f"baseline:{model.name}:{size}B")


# ---------------------------------------------------------------------------
# figure plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SeriesPlan:
    """One curve: a label, one job per size, an optional figure note."""

    label: str
    specs: tuple[JobSpec, ...]
    note: str | None = None
    #: Figure 9 plots mean (not min) one-way times.
    mean: bool = False


@dataclass(frozen=True)
class FigurePlan:
    """A figure as pure data: every measurement is a JobSpec."""

    name: str
    figure_id: str
    title: str
    sizes: tuple[int, ...]
    series: tuple[SeriesPlan, ...]
    notes: tuple[str, ...] = ()

    def jobs(self) -> list[JobSpec]:
        return [spec for series in self.series for spec in series.specs]


def _measured(label: str, sizes: Sequence[int], make, *,
              mean: bool = False) -> SeriesPlan:
    return SeriesPlan(label, tuple(make(n) for n in sizes), mean=mean)


def _baseline(model, sizes: Sequence[int]) -> SeriesPlan:
    return SeriesPlan(
        model.name, tuple(baseline_job(model, n) for n in sizes),
        note=f"{model.name} is an analytic model calibrated to {model.source}")


def _default_sizes(extra: set[int] = frozenset()) -> tuple[int, ...]:
    return tuple(sorted(set(LATENCY_SWEEP_SIZES)
                        | set(BANDWIDTH_SWEEP_SIZES) | set(extra)))


def figure6_plan(sizes: Sequence[int] | None = None) -> FigurePlan:
    """Figure 6: ch_mad vs ch_p4 vs raw Madeleine on TCP/Fast-Ethernet."""
    sizes = tuple(sizes or _default_sizes())
    return FigurePlan(
        name="figure6_tcp", figure_id="Figure 6",
        title="TCP/Fast-Ethernet: ch_mad vs ch_p4", sizes=sizes,
        series=(
            _measured("ch_mad", sizes,
                      lambda n: mpi_job(n, networks=("tcp",),
                                        reps=7 if n <= 4096 else _bw_reps(n))),
            _measured("ch_p4", sizes,
                      lambda n: mpi_job(n, device="ch_p4",
                                        reps=7 if n <= 4096 else _bw_reps(n))),
            _measured("raw_Madeleine", sizes,
                      lambda n: raw_job("tcp", n, reps=_bw_reps(n))),
        ))


def figure7_plan(sizes: Sequence[int] | None = None) -> FigurePlan:
    """Figure 7: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine on SCI.

    The default grid adds 2 KB and 8 KB points so the 8 KB switch-point
    knee of §4.2.2 is visible.
    """
    sizes = tuple(sizes or _default_sizes({2048, 8192, 12288}))
    return FigurePlan(
        name="figure7_sci", figure_id="Figure 7",
        title="SISCI/SCI: ch_mad vs native SCI MPIs", sizes=sizes,
        series=(
            _measured("ch_mad", sizes,
                      lambda n: mpi_job(n, networks=("sisci",),
                                        reps=_bw_reps(n) + 1)),
            _baseline(SCAMPI, sizes),
            _baseline(SCI_MPICH, sizes),
            _measured("raw_Madeleine", sizes,
                      lambda n: raw_job("sisci", n, reps=_bw_reps(n))),
        ))


def figure8_plan(sizes: Sequence[int] | None = None) -> FigurePlan:
    """Figure 8: ch_mad vs raw Madeleine vs MPI-GM vs MPICH-PM on Myrinet."""
    sizes = tuple(sizes or _default_sizes())
    return FigurePlan(
        name="figure8_myrinet", figure_id="Figure 8",
        title="BIP/Myrinet: ch_mad vs GM/PM MPIs", sizes=sizes,
        series=(
            _measured("ch_mad", sizes,
                      lambda n: mpi_job(n, networks=("bip",),
                                        reps=_bw_reps(n) + 1)),
            _measured("raw_Madeleine", sizes,
                      lambda n: raw_job("bip", n, reps=_bw_reps(n))),
            _baseline(MPI_GM, sizes),
            _baseline(MPICH_PM, sizes),
        ))


def figure9_plan(sizes: Sequence[int] | None = None,
                 reps: int = 9) -> FigurePlan:
    """Figure 9: SCI alone vs SCI with an active TCP polling thread.

    All traffic rides SCI; the TCP channel exists (and is polled) in the
    second configuration only.  Interference is a *distributional*
    effect, so this figure reports mean (not min) one-way times — the
    note records that convention.
    """
    sizes = tuple(sizes or _default_sizes())
    return FigurePlan(
        name="figure9_multiprotocol", figure_id="Figure 9",
        title="SCI alone vs SCI + TCP polling thread", sizes=sizes,
        series=(
            _measured("SCI_thread_only", sizes,
                      lambda n: mpi_job(n, networks=("sisci",), reps=reps),
                      mean=True),
            _measured("SCI_thread_+_TCP_thread", sizes,
                      lambda n: mpi_job(n, networks=("sisci", "tcp"),
                                        active_network="sisci", reps=reps),
                      mean=True),
        ),
        notes=("mean (not min) one-way times: polling interference is a "
               "distributional effect that min-of-reps would hide",))


#: name -> plan builder, for ``python -m repro sweep`` / ``run``.
FIGURES = {
    "figure6_tcp": figure6_plan,
    "figure7_sci": figure7_plan,
    "figure8_myrinet": figure8_plan,
    "figure9_multiprotocol": figure9_plan,
}


# ---------------------------------------------------------------------------
# assembly: jobs -> FigureData
# ---------------------------------------------------------------------------

def _point(spec: JobSpec, payload) -> tuple[float, float, float, float]:
    """(lat, bw, mean_lat, mean_bw) for one executed job payload."""
    if spec.kind == "baseline_point":
        lat, bw = payload["latency_us"], payload["bandwidth_mb_s"]
        return lat, bw, lat, bw
    result: PingPongResult = pingpong_result(payload)
    return (result.latency_us, result.bandwidth_mb_s,
            result.mean_latency_us, result.mean_bandwidth_mb_s)


def build_figure(plan: FigurePlan, runner: Runner | None = None) -> FigureData:
    """Execute a plan's jobs and assemble the figure from their payloads."""
    runner = runner or Runner()
    return assemble_figure(plan, runner.run(plan.jobs()))


def assemble_figure(plan: FigurePlan, job_results) -> FigureData:
    """Assemble a figure from already-executed job results (in plan
    order) — lets callers run the jobs once and reuse the results for
    digest checks and rendering."""
    results = iter(job_results)
    figure = FigureData(plan.figure_id, plan.title)
    for series_plan in plan.series:
        series = figure.new_series(series_plan.label)
        for size, spec in zip(plan.sizes, series_plan.specs):
            result = next(results)
            if not result.ok:
                raise RuntimeError(
                    f"figure job {spec.display} failed: {result.error}")
            lat, bw, mean_lat, mean_bw = _point(spec, result.payload)
            if series_plan.mean:
                series.add(size, mean_lat, mean_bw)
            else:
                series.add(size, lat, bw)
        if series_plan.note:
            figure.notes.append(series_plan.note)
    figure.notes.extend(plan.notes)
    return figure


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_raw_madeleine(runner: Runner | None = None
                         ) -> dict[str, dict[str, float]]:
    """Reproduce Table 1: raw Madeleine latency and 8 MB bandwidth."""
    runner = runner or Runner()
    protocols = ("tcp", "bip", "sisci")
    specs = []
    for protocol in protocols:
        specs.append(raw_job(protocol, 4))
        specs.append(raw_job(protocol, TABLE_BANDWIDTH_SIZE,
                             reps=2, warmup=1))
    results = iter(runner.run(specs))
    out: dict[str, dict[str, float]] = {}
    for protocol in protocols:
        lat = pingpong_result(next(results).payload)
        bw = pingpong_result(next(results).payload)
        out[protocol] = {
            "latency_us": lat.latency_us,
            "bandwidth_mb_s": bw.bandwidth_mb_s,
        }
    return out


def table1_checks(runner: Runner | None = None) -> list[PaperCheck]:
    measured = table1_raw_madeleine(runner)
    checks = []
    for protocol, paper in TABLE1_PAPER.items():
        for key, value in paper.items():
            checks.append(PaperCheck(
                quantity=f"{protocol}.{key}", paper=value,
                measured=measured[protocol][key],
            ))
    return checks


def table2_summary(runner: Runner | None = None
                   ) -> dict[str, dict[str, float]]:
    """Reproduce Table 2: ch_mad 0/4-byte latency and 8 MB bandwidth."""
    runner = runner or Runner()
    protocols = ("tcp", "bip", "sisci")
    specs = []
    for protocol in protocols:
        specs.append(mpi_job(0, networks=(protocol,), reps=7))
        specs.append(mpi_job(4, networks=(protocol,), reps=7))
        specs.append(mpi_job(TABLE_BANDWIDTH_SIZE, networks=(protocol,),
                             reps=2, warmup=1))
    results = iter(runner.run(specs))
    out: dict[str, dict[str, float]] = {}
    for protocol in protocols:
        lat0 = pingpong_result(next(results).payload)
        lat4 = pingpong_result(next(results).payload)
        bw = pingpong_result(next(results).payload)
        out[protocol] = {
            "lat0_us": lat0.latency_us,
            "lat4_us": lat4.latency_us,
            "bandwidth_mb_s": bw.bandwidth_mb_s,
        }
    return out


def table2_checks(runner: Runner | None = None) -> list[PaperCheck]:
    measured = table2_summary(runner)
    checks = []
    for protocol, paper in TABLE2_PAPER.items():
        for key, value in paper.items():
            checks.append(PaperCheck(
                quantity=f"{protocol}.{key}", paper=value,
                measured=measured[protocol][key],
            ))
    return checks


# ---------------------------------------------------------------------------
# classic entry points (original signatures, now runner-backed)
# ---------------------------------------------------------------------------

def figure6_tcp(sizes: Sequence[int] | None = None, *,
                runner: Runner | None = None) -> FigureData:
    """Figure 6: ch_mad vs ch_p4 vs raw Madeleine on TCP/Fast-Ethernet."""
    return build_figure(figure6_plan(sizes), runner)


def figure7_sci(sizes: Sequence[int] | None = None, *,
                runner: Runner | None = None) -> FigureData:
    """Figure 7: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine on SCI."""
    return build_figure(figure7_plan(sizes), runner)


def figure8_myrinet(sizes: Sequence[int] | None = None, *,
                    runner: Runner | None = None) -> FigureData:
    """Figure 8: ch_mad vs raw Madeleine vs MPI-GM vs MPICH-PM on Myrinet."""
    return build_figure(figure8_plan(sizes), runner)


def figure9_multiprotocol(sizes: Sequence[int] | None = None,
                          reps: int = 9, *,
                          runner: Runner | None = None) -> FigureData:
    """Figure 9: SCI alone vs SCI with an active TCP polling thread."""
    return build_figure(figure9_plan(sizes, reps), runner)
