"""One builder per paper table/figure (the experiment index of DESIGN.md).

Each builder runs the relevant simulated measurements (and evaluates the
analytic baselines where the paper used vendor-furnished curves) and
returns structured data; the ``benchmarks/`` suite asserts the paper's
shape statements against these, and ``examples/reproduce_paper.py``
prints them.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import MPICH_PM, MPI_GM, SCAMPI, SCI_MPICH
from repro.bench.pingpong import PingPongResult, mpi_pingpong
from repro.bench.raw_madeleine import raw_madeleine_pingpong
from repro.bench.sweeps import (
    BANDWIDTH_SWEEP_SIZES,
    LATENCY_SWEEP_SIZES,
    TABLE_BANDWIDTH_SIZE,
    TABLE_LATENCY_SIZES,
)
from repro.bench.report import FigureData, PaperCheck

#: Paper Table 1 values (raw Madeleine).
TABLE1_PAPER = {
    "tcp": {"latency_us": 121.0, "bandwidth_mb_s": 11.2},
    "bip": {"latency_us": 9.2, "bandwidth_mb_s": 122.0},
    "sisci": {"latency_us": 4.4, "bandwidth_mb_s": 82.6},
}

#: Paper Table 2 values (ch_mad).
TABLE2_PAPER = {
    "tcp": {"lat0_us": 130.0, "lat4_us": 148.7, "bandwidth_mb_s": 11.2},
    "bip": {"lat0_us": 16.9, "lat4_us": 18.9, "bandwidth_mb_s": 115.0},
    "sisci": {"lat0_us": 13.0, "lat4_us": 20.0, "bandwidth_mb_s": 82.5},
}


def _bw_reps(size: int) -> int:
    """Fewer repetitions for huge messages (deterministic sim anyway)."""
    return 2 if size >= 1024 * 1024 else 3


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_raw_madeleine() -> dict[str, dict[str, float]]:
    """Reproduce Table 1: raw Madeleine latency and 8 MB bandwidth."""
    out: dict[str, dict[str, float]] = {}
    for protocol in ("tcp", "bip", "sisci"):
        lat = raw_madeleine_pingpong(protocol, 4)
        bw = raw_madeleine_pingpong(protocol, TABLE_BANDWIDTH_SIZE,
                                    reps=2, warmup=1)
        out[protocol] = {
            "latency_us": lat.latency_us,
            "bandwidth_mb_s": bw.bandwidth_mb_s,
        }
    return out


def table1_checks() -> list[PaperCheck]:
    measured = table1_raw_madeleine()
    checks = []
    for protocol, paper in TABLE1_PAPER.items():
        for key, value in paper.items():
            checks.append(PaperCheck(
                quantity=f"{protocol}.{key}", paper=value,
                measured=measured[protocol][key],
            ))
    return checks


def table2_summary() -> dict[str, dict[str, float]]:
    """Reproduce Table 2: ch_mad 0/4-byte latency and 8 MB bandwidth."""
    out: dict[str, dict[str, float]] = {}
    for protocol in ("tcp", "bip", "sisci"):
        lat0 = mpi_pingpong(0, networks=(protocol,), reps=7)
        lat4 = mpi_pingpong(4, networks=(protocol,), reps=7)
        bw = mpi_pingpong(TABLE_BANDWIDTH_SIZE, networks=(protocol,),
                          reps=2, warmup=1)
        out[protocol] = {
            "lat0_us": lat0.latency_us,
            "lat4_us": lat4.latency_us,
            "bandwidth_mb_s": bw.bandwidth_mb_s,
        }
    return out


def table2_checks() -> list[PaperCheck]:
    measured = table2_summary()
    checks = []
    for protocol, paper in TABLE2_PAPER.items():
        for key, value in paper.items():
            checks.append(PaperCheck(
                quantity=f"{protocol}.{key}", paper=value,
                measured=measured[protocol][key],
            ))
    return checks


# ---------------------------------------------------------------------------
# Figures 6-8: one network each, simulated devices + analytic baselines
# ---------------------------------------------------------------------------

def _measure_series(figure: FigureData, label: str, sizes: Sequence[int],
                    measure) -> None:
    series = figure.new_series(label)
    for size in sizes:
        result: PingPongResult = measure(size)
        series.add(size, result.latency_us, result.bandwidth_mb_s)


def _baseline_series(figure: FigureData, model, sizes: Sequence[int]) -> None:
    series = figure.new_series(model.name)
    for size in sizes:
        series.add(size, model.latency_us(size), model.bandwidth_mb_s(size))
    figure.notes.append(
        f"{model.name} is an analytic model calibrated to {model.source}"
    )


def figure6_tcp(sizes: Sequence[int] | None = None) -> FigureData:
    """Figure 6: ch_mad vs ch_p4 vs raw Madeleine on TCP/Fast-Ethernet."""
    sizes = tuple(sizes or sorted(set(LATENCY_SWEEP_SIZES)
                                  | set(BANDWIDTH_SWEEP_SIZES)))
    figure = FigureData("Figure 6", "TCP/Fast-Ethernet: ch_mad vs ch_p4")
    _measure_series(figure, "ch_mad", sizes,
                    lambda n: mpi_pingpong(n, networks=("tcp",),
                                           reps=7 if n <= 4096 else _bw_reps(n)))
    _measure_series(figure, "ch_p4", sizes,
                    lambda n: mpi_pingpong(n, device="ch_p4",
                                           reps=7 if n <= 4096 else _bw_reps(n)))
    _measure_series(figure, "raw_Madeleine", sizes,
                    lambda n: raw_madeleine_pingpong("tcp", n,
                                                     reps=_bw_reps(n)))
    return figure


def figure7_sci(sizes: Sequence[int] | None = None) -> FigureData:
    """Figure 7: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine on SCI.

    The default grid adds 2 KB and 8 KB points so the 8 KB switch-point
    knee of §4.2.2 is visible.
    """
    sizes = tuple(sizes or sorted(set(LATENCY_SWEEP_SIZES)
                                  | set(BANDWIDTH_SWEEP_SIZES)
                                  | {2048, 8192, 12288}))
    figure = FigureData("Figure 7", "SISCI/SCI: ch_mad vs native SCI MPIs")
    _measure_series(figure, "ch_mad", sizes,
                    lambda n: mpi_pingpong(n, networks=("sisci",),
                                           reps=_bw_reps(n) + 1))
    _baseline_series(figure, SCAMPI, sizes)
    _baseline_series(figure, SCI_MPICH, sizes)
    _measure_series(figure, "raw_Madeleine", sizes,
                    lambda n: raw_madeleine_pingpong("sisci", n,
                                                     reps=_bw_reps(n)))
    return figure


def figure8_myrinet(sizes: Sequence[int] | None = None) -> FigureData:
    """Figure 8: ch_mad vs raw Madeleine vs MPI-GM vs MPICH-PM on Myrinet."""
    sizes = tuple(sizes or sorted(set(LATENCY_SWEEP_SIZES)
                                  | set(BANDWIDTH_SWEEP_SIZES)))
    figure = FigureData("Figure 8", "BIP/Myrinet: ch_mad vs GM/PM MPIs")
    _measure_series(figure, "ch_mad", sizes,
                    lambda n: mpi_pingpong(n, networks=("bip",),
                                           reps=_bw_reps(n) + 1))
    _measure_series(figure, "raw_Madeleine", sizes,
                    lambda n: raw_madeleine_pingpong("bip", n,
                                                     reps=_bw_reps(n)))
    _baseline_series(figure, MPI_GM, sizes)
    _baseline_series(figure, MPICH_PM, sizes)
    return figure


# ---------------------------------------------------------------------------
# Figure 9: multi-protocol polling interference
# ---------------------------------------------------------------------------

def figure9_multiprotocol(sizes: Sequence[int] | None = None,
                          reps: int = 9) -> FigureData:
    """Figure 9: SCI alone vs SCI with an active TCP polling thread.

    All traffic rides SCI; the TCP channel exists (and is polled) in the
    second configuration only.  Interference is a *distributional*
    effect, so this figure reports mean (not min) one-way times — the
    note records that convention.
    """
    sizes = tuple(sizes or sorted(set(LATENCY_SWEEP_SIZES)
                                  | set(BANDWIDTH_SWEEP_SIZES)))
    figure = FigureData("Figure 9", "SCI alone vs SCI + TCP polling thread")
    alone = figure.new_series("SCI_thread_only")
    both = figure.new_series("SCI_thread_+_TCP_thread")
    for size in sizes:
        r = mpi_pingpong(size, networks=("sisci",), reps=reps)
        alone.add(size, r.mean_latency_us, r.mean_bandwidth_mb_s)
        r = mpi_pingpong(size, networks=("sisci", "tcp"),
                         active_network="sisci", reps=reps)
        both.add(size, r.mean_latency_us, r.mean_bandwidth_mb_s)
    figure.notes.append(
        "mean (not min) one-way times: polling interference is a "
        "distributional effect that min-of-reps would hide"
    )
    return figure
