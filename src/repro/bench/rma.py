"""One-sided (RMA) benchmarks: Put/Get vs two-sided, RDMA vs packetized.

One :func:`rma_bench` call times one operation at one size on a 2-node
InfiniBand pair, in *virtual* nanoseconds.  The ``rdma`` toggle selects
the transfer machinery underneath the same program: ``True`` is the
zero-copy rendezvous-over-RDMA path (and the true ``rdma_read`` fast
path for gets), ``False`` is the packetized ablation — large messages
chunked through the ch_mad packet state machine.  The acceptance
criterion lives in ``benchmarks/perf/rmaperf.py``: RDMA must beat the
packetized path by >= 1.3x on large messages.

The measured span is barrier-to-completion: both ranks barrier, rank 0
issues the op, the closing fence (or the two-sided receive) completes
it, both ranks barrier again; the cost is the max span over ranks —
the same discipline as :mod:`repro.bench.collectives`, so fence overhead
(count exchange + barrier) is charged identically to every variant.

``python -m repro`` reaches this through the ``rma_bench`` runner
executor (:mod:`repro.runner.jobs`); ``benchmarks/perf/rmaperf.py``
sweeps it and maintains ``BENCH_rma.json``.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.node import ClusterConfig, NodeSpec
from repro.cluster.session import MPIWorld
from repro.errors import ConfigurationError
from repro.sim.coroutines import now
from repro.units import bandwidth_mb_s


def rma_bench(operation: str = "put",
              size: int = 65536,
              rdma: bool = True,
              network: str = "ib",
              reps: int = 3,
              warmup: int = 1) -> dict[str, Any]:
    """Time one RMA (or two-sided reference) transfer; JSON-safe record.

    ``operation`` is ``"put"``, ``"get"`` or ``"two_sided"`` (a plain
    send/recv of the same payload, the classic osu_bw-style reference).
    """
    if operation not in ("put", "get", "two_sided"):
        raise ConfigurationError(
            f"rma_bench: unsupported operation {operation!r}")
    config = ClusterConfig(
        nodes=[NodeSpec("n0", networks=(network,)),
               NodeSpec("n1", networks=(network,))],
        rdma=rdma,
    )
    payload = bytes([0x5A]) * size

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        spans = []
        checksum = 0.0
        if operation == "two_sided":
            for rep in range(warmup + reps):
                yield from comm.barrier()
                start = yield now()
                if me == 0:
                    yield from comm.send(payload, dest=1, tag=1, size=size)
                else:
                    data, _status = yield from comm.recv(source=0, tag=1,
                                                         size=size)
                    checksum = float(data[0]) + len(data)
                yield from comm.barrier()
                stop = yield now()
                if rep >= warmup:
                    spans.append(stop - start)
            return (tuple(spans), checksum)
        win = yield from comm.win_create(size)
        if me == 1:
            win.buffer[:] = 0x5A  # what rank 0's gets read back
        yield from win.fence()
        for rep in range(warmup + reps):
            yield from comm.barrier()
            start = yield now()
            if me == 0:
                if operation == "put":
                    yield from win.put(1, 0, payload)
                else:
                    result = yield from win.get(1, 0, size)
            yield from win.fence()
            stop = yield now()
            if rep >= warmup:
                spans.append(stop - start)
            if me == 0 and operation == "get":
                checksum = float(result.data[0]) + len(result.data)
        if me == 1 and operation == "put":
            checksum = float(win.buffer[0]) + int(win.buffer.sum() // 0x5A)
        yield from win.free()
        return (tuple(spans), checksum)

    results = MPIWorld(config).run(program)
    per_rep = [max(rank_spans[rep] for rank_spans, _ in results)
               for rep in range(reps)]
    mean_ns = sum(per_rep) / len(per_rep)
    return {
        "operation": operation,
        "size": size,
        "rdma": rdma,
        "network": network,
        "reps": reps,
        "per_rep_ns": per_rep,
        "mean_ns": mean_ns,
        "bandwidth_mb_s": bandwidth_mb_s(size, int(mean_ns)),
        "checksum": max(checksum for _spans, checksum in results),
    }
