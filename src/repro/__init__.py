"""repro — a reproduction of *MPICH/Madeleine: a True Multi-Protocol MPI
for High Performance Networks* (Aumage, Mercier, Namyst; INRIA RR-4016 /
IPPS 2001).

The package implements the paper's full software stack on top of a
deterministic discrete-event cluster simulator:

- :mod:`repro.sim` — discrete-event kernel (clock, CPUs, coroutine tasks).
- :mod:`repro.marcel` — user-level threads and network polling (Marcel).
- :mod:`repro.networks` — calibrated models of TCP/Fast-Ethernet,
  SISCI/SCI and BIP/Myrinet NICs and links.
- :mod:`repro.madeleine` — the Madeleine II multi-protocol communication
  library (channels, connections, EXPRESS/CHEAPER packing).
- :mod:`repro.mpi` — an MPICH-like MPI implementation: generic layer,
  ADI, and the ch_self / smp_plug / ch_p4 / **ch_mad** devices.
- :mod:`repro.cluster` — node/topology/session construction; runs MPI
  programs written as Python generator coroutines.
- :mod:`repro.baselines` — analytic models of the paper's closed-source
  comparators (ScaMPI, SCI-MPICH, MPI-GM, MPICH-PM).
- :mod:`repro.bench` — the mpptest-equivalent measurement harness and the
  per-figure/table experiment drivers.
- :mod:`repro.runner` — batch execution: serializable job specs, a
  content-addressed result cache, and a process-pool runner.
- :mod:`repro.cli` — the consolidated ``python -m repro`` entry point
  (``run`` / ``sweep`` / ``fuzz`` / ``report``).

Quickstart::

    from repro.cluster import MPIWorld
    from repro.cluster.config import paper_cluster

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(b"hello", dest=1, tag=7)
        elif comm.rank == 1:
            msg, status = yield from comm.recv(source=0, tag=7)

    world = MPIWorld(paper_cluster(nodes=2, networks=("sisci", "tcp")))
    world.run(program)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
