"""Madeleine II — the multi-protocol communication library (paper §3).

Madeleine provides RPC-flavoured message passing with *incremental message
building*: a message is a sequence of packed blocks, each tagged with a
pair of semantics flags (``send_*``, ``receive_*``) that tell the library
how much freedom it has to optimize the transfer:

- ``receive_EXPRESS`` — the block must be available on the receiving side
  immediately after the matching ``unpack`` (used for headers whose
  content controls subsequent unpacking);
- ``receive_CHEAPER`` — the library may defer/optimize; contents are only
  guaranteed after ``end_unpacking`` (used for bulk payloads).

Communication happens over *channels* (closed worlds bound to one network
protocol, "much like an MPI communicator") holding point-to-point
*connections* with per-connection in-order delivery.

This implementation flushes a message at ``end_packing`` — behaviourally
equivalent for the paper's usage (ch_mad builds messages of one or two
blocks and finalizes immediately) and documented in DESIGN.md.
"""

from repro.madeleine.constants import (
    RECEIVE_CHEAPER,
    RECEIVE_EXPRESS,
    SEND_CHEAPER,
    SEND_LATER,
    SEND_SAFER,
    ReceiveMode,
    SendMode,
)
from repro.madeleine.channel import Channel, ChannelPort, Connection
from repro.madeleine.message import IncomingMessage, OutgoingMessage, PackedBlock
from repro.madeleine.reliable import (
    ChannelHealthMonitor,
    DeadChannelNotice,
    MadAck,
    ReliableTransport,
)
from repro.madeleine.session import MadProcess, MadeleineSession
from repro.madeleine.interface import (
    mad_begin_packing,
    mad_begin_unpacking,
    mad_end_packing,
    mad_end_unpacking,
    mad_pack,
    mad_unpack,
)

__all__ = [
    "Channel",
    "ChannelHealthMonitor",
    "ChannelPort",
    "Connection",
    "DeadChannelNotice",
    "IncomingMessage",
    "MadAck",
    "ReliableTransport",
    "MadProcess",
    "MadeleineSession",
    "OutgoingMessage",
    "PackedBlock",
    "RECEIVE_CHEAPER",
    "RECEIVE_EXPRESS",
    "ReceiveMode",
    "SEND_CHEAPER",
    "SEND_LATER",
    "SEND_SAFER",
    "SendMode",
    "mad_begin_packing",
    "mad_begin_unpacking",
    "mad_end_packing",
    "mad_end_unpacking",
    "mad_pack",
    "mad_unpack",
]
