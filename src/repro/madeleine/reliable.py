"""Reliable transport over Madeleine connections + channel failover.

The paper's networks are assumed reliable; once the fault injector
(:mod:`repro.faults`) can lose, poison and delay messages, the Madeleine
layer needs the classic reliability machinery:

- **Sequencing** — every :class:`~repro.madeleine.channel.Connection`
  already stamps a per-connection sequence number on its wire messages;
  the receiver acks each sequence, drops duplicates, and holds
  out-of-order arrivals until the gap fills, preserving the paper's
  per-connection in-order guarantee (§3.1) under loss.
- **Retransmission** — each in-flight message keeps a timer (engine
  event) with a per-protocol timeout and exponential backoff; a
  "simulated checksum" marks corrupted deliveries, which are treated
  exactly as losses (no ack, no delivery).  A capped number of retries
  escalates to a :class:`~repro.errors.TransportError`.
- **Failover** — the :class:`ChannelHealthMonitor` marks a channel dead
  after transport failures and *tunnels* all of its traffic (queued
  retransmissions, acks, and any still-running transmissions) through a
  surviving channel's endpoints, keeping the original channel id on the
  wire so receivers — pollers and striped reassembly alike — keep
  consuming from the ports they already watch.  When no surviving
  channel connects the two ranks, :class:`FailoverExhaustedError` aborts
  the run instead of hanging it.

Thread discipline: acks and retransmissions are *sends*, and the paper's
rule is that "a polling thread must not proceed by itself to any send
operation".  All transport sends therefore run on temporary Marcel
threads (``transport-ack`` / ``transport-resend``), exactly like the
rendezvous acknowledgements of §4.2.3; timer *decisions* happen in plain
engine callbacks, which never charge CPU.

Sequence/ack bookkeeping itself is charged to nobody: it models NIC
firmware work, not host CPU time.  The ack *transmissions* pay the full
protocol send path on the receiving host, which is where the real cost
of software reliability lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import FailoverExhaustedError, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.channel import Channel, ChannelPort, Connection
    from repro.madeleine.session import MadProcess
    from repro.networks.fabric import Delivery
    from repro.sim.engine import Event

#: Wire size of one transport acknowledgement (header-only message).
ACK_WIRE_BYTES = 16


@dataclass(frozen=True)
class MadAck:
    """Transport-level acknowledgement for one received sequence number.

    Routed by ``channel_id`` like any wire message, but consumed by the
    *sender-side* connection state instead of the channel's incoming
    queue.
    """

    channel_id: int
    source_rank: int    # the acknowledging process
    dest_rank: int      # the original sender
    ack_seq: int


@dataclass(frozen=True)
class DeadChannelNotice:
    """Posted into every port queue of a channel the moment it dies.

    Wakes receivers blocked on the channel so they can adapt (striping
    drops the rail); consumers that keep waiting are still correct —
    in-flight traffic of a dead channel is tunnelled to its original
    ports.
    """

    channel: "Channel"


@dataclass
class PendingSend:
    """Sender-side state of one unacknowledged wire message."""

    wire: Any
    nbytes: int
    attempts: int = 0               # retransmissions performed so far
    timer: "Event | None" = field(default=None, repr=False)

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class ReliableTransport:
    """Per-process reliability engine (one per :class:`MadProcess`)."""

    def __init__(self, process: "MadProcess", monitor: "ChannelHealthMonitor"):
        self.process = process
        self.engine = process.engine
        self.monitor = monitor

    # -- routing -------------------------------------------------------------

    def surviving_port(self, remote_rank: int,
                       exclude: "Channel") -> "ChannelPort | None":
        """A live port of this process sharing a channel with ``remote_rank``.

        Deterministic choice: the live channel with the lowest id (the
        oldest-opened one) wins, so both ends of a failed channel tunnel
        through the same surviving network.
        """
        candidates = [
            p for p in self.process._ports_by_channel.values()
            if p.channel is not exclude and not p.channel.dead
            and remote_rank in p.channel.ports
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.channel.id)

    def route(self, port: "ChannelPort",
              remote_rank: int) -> tuple["ChannelPort", Any]:
        """Resolve ``(send_port, destination endpoint)`` for a transmission.

        A live channel routes natively; a dead channel tunnels through a
        surviving one (both adapters live on the survivor's fabric while
        the payload keeps the dead channel's id).  Raises
        :class:`FailoverExhaustedError` when no path remains.
        """
        channel = port.channel
        if not channel.dead:
            return port, channel.port(remote_rank).endpoint
        tunnel = self.surviving_port(remote_rank, exclude=channel)
        if tunnel is None:
            raise FailoverExhaustedError(
                f"channel {channel.name!r} is dead and rank {port.rank} "
                f"shares no surviving channel with rank {remote_rank}",
                channel=channel.name, remote_rank=remote_rank,
            )
        return tunnel, tunnel.channel.port(remote_rank).endpoint

    def _timeout_of(self, conn: "Connection", pending: PendingSend) -> int:
        """Retransmit timeout for ``pending``, following the live route."""
        port = conn.port
        params = port.params
        if port.channel.dead:
            tunnel = self.surviving_port(conn.remote_rank,
                                         exclude=port.channel)
            if tunnel is not None:
                params = tunnel.params
        return params.retransmit_timeout(pending.nbytes, pending.attempts)

    # -- sender side ---------------------------------------------------------

    def reliable_send(self, conn: "Connection", wire: Any) -> Generator:
        """Register ``wire`` for retransmission and transmit it.

        Generator run by the sending thread (charges the protocol send
        path, tunnelled when the channel is already dead).
        """
        pending = PendingSend(wire=wire, nbytes=wire.wire_bytes)
        conn.unacked[wire.sequence] = pending
        try:
            send_port, dst_endpoint = self.route(conn.port, conn.remote_rank)
        except FailoverExhaustedError:
            # No path at all: ULFM calls that rank dead.  Tell the
            # detector (it drains this connection) and let the error
            # surface to the sender, who converts it to an MPI failure.
            self._notify_unreachable(conn.remote_rank)
            raise
        if send_port is not conn.port:
            self._count_reroute(conn, 1)
        yield from send_port.endpoint.send_message(dst_endpoint,
                                                   wire.wire_bytes, wire)
        # Arm only once the NIC has accepted the message: the sender-side
        # injection cost (SCI PIO writes dwarf the ack RTT for large
        # payloads) must not eat into the retransmission timeout.
        self._arm_timer(conn, pending)

    def _arm_timer(self, conn: "Connection", pending: PendingSend) -> None:
        pending.cancel_timer()
        timeout = self._timeout_of(conn, pending)
        pending.timer = self.engine.schedule(
            timeout, self._on_timeout, conn, pending.wire.sequence
        )

    def _on_timeout(self, conn: "Connection", seq: int) -> None:
        if self.process.dead:
            return
        pending = conn.unacked.get(seq)
        if pending is None or (pending.timer is not None
                               and pending.timer.cancelled):
            return  # acked in the meantime
        channel = conn.port.channel
        if pending.attempts >= conn.port.params.max_retries:
            error = TransportError(
                f"connection {channel.name!r} rank {conn.port.rank} -> "
                f"{conn.remote_rank}: seq {seq} unacknowledged after "
                f"{pending.attempts} retransmissions",
                channel=channel.name, remote_rank=conn.remote_rank,
            )
            self.monitor.connection_failed(conn, error)
            return
        pending.attempts += 1
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("transport.retransmits", 1, channel=channel.name,
                      protocol=channel.protocol, rank=conn.port.rank)
            ins.emit("transport.retransmit", channel=channel.name,
                     rank=conn.port.rank, dst=conn.remote_rank, seq=seq,
                     attempt=pending.attempts)
        self.spawn_resend(conn, [pending])

    def spawn_resend(self, conn: "Connection",
                     pendings: list[PendingSend]) -> None:
        """Retransmit ``pendings`` (in order) from a temporary send thread."""

        def body() -> Generator:
            for pending in pendings:
                if self.process.dead:
                    return
                if conn.unacked.get(pending.wire.sequence) is not pending:
                    continue  # acked while this thread waited for the CPU
                try:
                    send_port, dst_endpoint = self.route(conn.port,
                                                         conn.remote_rank)
                except FailoverExhaustedError:
                    # With the rank-failure model the detector turns this
                    # into a peer-death declaration; without it the error
                    # must surface (a totally dead fabric aborts the run).
                    if not self._notify_unreachable(conn.remote_rank):
                        raise
                    return
                if send_port is not conn.port:
                    self._count_reroute(conn, 1)
                yield from send_port.endpoint.send_message(
                    dst_endpoint, pending.wire.wire_bytes, pending.wire
                )
                # Re-armed here (after the send) for the same reason
                # reliable_send arms late; acked-meanwhile timers are
                # harmless (the timeout finds no pending and returns).
                self._arm_timer(conn, pending)

        self.process.runtime.spawn_temporary(body(), name="transport-resend")

    def handle_ack(self, port: "ChannelPort", ack: MadAck) -> None:
        conn = port._connections.get(ack.source_rank)
        if conn is None:
            return
        checker = self.engine.checker
        if checker.enabled:
            checker.on_ack(conn, ack.ack_seq)
        pending = conn.unacked.pop(ack.ack_seq, None)
        if pending is None:
            return  # ack of a retransmitted message that already completed
        pending.cancel_timer()
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("transport.acks", 1, channel=port.channel.name,
                      protocol=port.channel.protocol, rank=port.rank)

    def _notify_unreachable(self, remote_rank: int) -> bool:
        """A rank no surviving channel reaches is dead by definition.

        Returns True when a failure detector handled the verdict (the
        caller may swallow the routing error), False when no rank-failure
        model is armed and the error must propagate as before.
        """
        detector = self.monitor.detector if self.monitor is not None else None
        if detector is None:
            return False
        detector.on_unreachable(remote_rank)
        return True

    def _count_reroute(self, conn: "Connection", amount: int) -> None:
        ins = self.engine.instruments
        if ins.enabled:
            channel = conn.port.channel
            ins.count("transport.rerouted", amount, channel=channel.name,
                      protocol=channel.protocol, rank=conn.port.rank)

    # -- receiver side -------------------------------------------------------

    def receive(self, port: "ChannelPort", delivery: "Delivery") -> None:
        """Admit one delivery: checksum, ack, deduplicate, reorder."""
        if self.process.dead:
            return
        wire = delivery.payload
        src = wire.source_rank
        ins = self.engine.instruments
        if delivery.corrupted:
            # The simulated checksum catches the poison; handled as loss.
            if ins.enabled:
                ins.count("transport.corrupt_drops", 1,
                          channel=port.channel.name, rank=port.rank)
                ins.emit("transport.corrupt_drop", channel=port.channel.name,
                         rank=port.rank, src=src, seq=wire.sequence)
            return
        seq = wire.sequence
        self._send_ack(port, src, seq)
        next_seq = port._recv_next.get(src, 0)
        if seq < next_seq:
            if ins.enabled:
                ins.count("transport.duplicates", 1,
                          channel=port.channel.name, rank=port.rank)
            return
        buffered = port._recv_buffer.setdefault(src, {})
        if seq > next_seq:
            if seq in buffered and ins.enabled:
                ins.count("transport.duplicates", 1,
                          channel=port.channel.name, rank=port.rank)
            buffered[seq] = delivery
            return
        checker = self.engine.checker
        if checker.enabled:
            # Past the dedup/reorder machinery, posts must be the exact
            # per-(channel, peer) sequence 0, 1, 2, ...
            checker.on_wire_deliver(port, src, seq)
        port.incoming.post(delivery)
        next_seq += 1
        while next_seq in buffered:
            if checker.enabled:
                checker.on_wire_deliver(port, src, next_seq)
            port.incoming.post(buffered.pop(next_seq))
            next_seq += 1
        port._recv_next[src] = next_seq

    def _send_ack(self, port: "ChannelPort", src_rank: int, seq: int) -> None:
        ack = MadAck(channel_id=port.channel.id, source_rank=port.rank,
                     dest_rank=src_rank, ack_seq=seq)

        def body() -> Generator:
            if self.process.dead:
                return
            try:
                send_port, dst_endpoint = self.route(port, src_rank)
            except FailoverExhaustedError:
                if not self._notify_unreachable(src_rank):
                    raise
                return
            yield from send_port.endpoint.send_message(dst_endpoint,
                                                       ACK_WIRE_BYTES, ack)

        self.process.runtime.spawn_temporary(body(), name="transport-ack")

    # -- teardown ------------------------------------------------------------

    def cancel_pending(self) -> int:
        """Cancel every retransmit timer (finalize teardown).

        By finalize time every *data* message has been consumed (the
        receiving rank could not have completed otherwise); only trailing
        ack races remain, and their timers must not fire into a
        torn-down world.  Returns the number of cancelled messages.
        """
        cancelled = 0
        for port in self.process._ports_by_channel.values():
            for conn in port._connections.values():
                for pending in conn.unacked.values():
                    pending.cancel_timer()
                    cancelled += 1
                conn.unacked.clear()
        return cancelled


class ChannelHealthMonitor:
    """Session-wide channel health: failure counting, death, failover.

    One monitor is shared by every process of a session: channel death is
    a *global* condition (the fabric is gone for everyone), matching the
    simulator's shared :class:`Channel` objects.
    """

    def __init__(self, engine, death_threshold: int = 1):
        self.engine = engine
        #: Connection failures on one channel before it is declared dead.
        self.death_threshold = death_threshold
        self._failures: dict[int, int] = {}
        #: Session :class:`~repro.faults.death.FailureDetector` (None
        #: when the fault plan kills no ranks).  When present it
        #: adjudicates every connection failure *before* the channel
        #: machinery: "peer dead, escalate to MPI" and "channel dead,
        #: fail over" are different diagnoses of the same timeout.
        self.detector = None

    def connection_failed(self, conn: "Connection",
                          error: TransportError) -> None:
        """A connection exhausted its retries; maybe kill the channel."""
        channel = conn.port.channel
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("transport.failures", 1, channel=channel.name,
                      protocol=channel.protocol, rank=conn.port.rank)
            ins.emit("transport.failure", channel=channel.name,
                     rank=conn.port.rank, dst=conn.remote_rank,
                     error=str(error))
        if self.detector is not None:
            from repro.faults.death import CHANNEL_SUSPECT, PEER_DEAD
            verdict = self.detector.on_transport_failure(conn, error)
            if verdict == PEER_DEAD:
                return  # traffic drained; MPI raises ERR_PROC_FAILED
            if verdict != CHANNEL_SUSPECT:
                # Undecided: silence is growing but below the threshold.
                # Reset the retry budget and keep hammering — either an
                # ack refreshes the peer or silence crosses the line.
                self._failover_connection(conn)
                return
        if channel.dead:
            self._failover_connection(conn)
            return
        count = self._failures.get(channel.id, 0) + 1
        self._failures[channel.id] = count
        if count >= self.death_threshold:
            self.mark_dead(channel, cause=error)
        else:
            # Give the channel another chance: reset the connection's
            # retry budget and keep hammering.
            self._failover_connection(conn)

    def mark_dead(self, channel: "Channel",
                  cause: TransportError | None = None) -> None:
        """Declare ``channel`` dead and fail all of its traffic over."""
        if channel.dead:
            return
        channel.dead = True
        ins = self.engine.instruments
        if ins.enabled:
            ins.count("failover.channels", 1, channel=channel.name,
                      protocol=channel.protocol)
            ins.emit("failover.channel_dead", channel=channel.name,
                     protocol=channel.protocol,
                     cause=str(cause) if cause else "")
        # Wake receivers parked on the channel so they can adapt.
        for rank in sorted(channel.ports):
            channel.ports[rank].incoming.post(DeadChannelNotice(channel))
        # Let devices react (ch_mad re-elects its eager threshold).
        for listener in list(channel._death_listeners):
            listener(channel)
        # Tunnel every in-flight message, in sequence order per connection.
        for rank in sorted(channel.ports):
            port = channel.ports[rank]
            for remote in sorted(port._connections):
                conn = port._connections[remote]
                if conn.unacked:
                    self._failover_connection(conn)

    def _failover_connection(self, conn: "Connection") -> None:
        """Reset and retransmit a connection's unacked messages (tunnelled)."""
        transport = conn.port.process.transport
        pendings = [conn.unacked[seq] for seq in sorted(conn.unacked)]
        for pending in pendings:
            pending.cancel_timer()
            pending.attempts = 0
        transport.spawn_resend(conn, pendings)
