"""Madeleine packing semantics flags (paper §3.2).

Each ``mad_pack``/``mad_unpack`` carries one :class:`SendMode` and one
:class:`ReceiveMode`.  The mode pair is part of the wire contract: sender
and receiver must pass identical flags for each block.
"""

from __future__ import annotations

import enum


class SendMode(enum.Enum):
    """Sender-side freedom for one packed block."""

    #: The block may be modified by the application right after ``mad_pack``
    #: returns: the library must have taken its own copy (or sent it).
    SAFER = "send_SAFER"
    #: The block must stay untouched until ``mad_end_packing`` returns.
    LATER = "send_LATER"
    #: The library picks whatever is cheapest (usual choice).
    CHEAPER = "send_CHEAPER"


class ReceiveMode(enum.Enum):
    """Receiver-side availability guarantee for one packed block."""

    #: Available immediately after the matching ``mad_unpack`` — required
    #: when the block's contents drive subsequent unpack calls (headers).
    EXPRESS = "receive_EXPRESS"
    #: Available only after ``mad_end_unpacking`` — lets the library use
    #: zero-copy bulk paths.
    CHEAPER = "receive_CHEAPER"


SEND_SAFER = SendMode.SAFER
SEND_LATER = SendMode.LATER
SEND_CHEAPER = SendMode.CHEAPER
RECEIVE_EXPRESS = ReceiveMode.EXPRESS
RECEIVE_CHEAPER = ReceiveMode.CHEAPER

#: Per-block wire framing (length + flags descriptor) in bytes.
BLOCK_FRAMING_BYTES = 8
#: Per-message wire framing (channel id, source, sequence) in bytes.
MESSAGE_FRAMING_BYTES = 16
