"""Channels and connections (paper §3.1).

A :class:`Channel` "defines a closed world for communication (much like an
MPI communicator)": it is bound to one network protocol and one adapter
per process, and holds one :class:`Connection` per process pair.
Communication on one channel never interferes with another channel's
ordering; in-order delivery is guaranteed only per connection within a
channel (§4.2.1 relies on this: one MPI message never spans channels).

Each process sees a channel through its :class:`ChannelPort`, which owns
the process-local incoming queue that either the application (raw
Madeleine usage) or a ch_mad polling thread consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import ChannelError
from repro.marcel.polling import PollSource
from repro.madeleine.message import IncomingMessage, MadWireMessage, OutgoingMessage, PackedBlock
from repro.madeleine.reliable import DeadChannelNotice, PendingSend
from repro.networks.fabric import Delivery
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.sim.coroutines import charge, wait
from repro.sim.sync import Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.session import MadProcess


class Channel:
    """A closed communication world over one protocol."""

    _counter = 0

    def __init__(self, name: str, protocol: str):
        Channel._counter += 1
        self.id = Channel._counter
        self.name = name
        self.protocol = protocol
        self.ports: dict[int, "ChannelPort"] = {}
        #: Set (once, globally — the Channel object is shared by every
        #: process) by the ChannelHealthMonitor when the channel fails.
        self.dead = False
        self._death_listeners: list = []

    def add_death_listener(self, callback) -> None:
        """Register ``callback(channel)`` to run when the channel dies."""
        self._death_listeners.append(callback)

    def port(self, rank: int) -> "ChannelPort":
        try:
            return self.ports[rank]
        except KeyError:
            raise ChannelError(
                f"channel {self.name!r} has no port for rank {rank}"
            ) from None

    def add_port(self, process: "MadProcess") -> "ChannelPort":
        if process.rank in self.ports:
            raise ChannelError(
                f"rank {process.rank} already has a port on channel {self.name!r}"
            )
        port = ChannelPort(self, process)
        self.ports[process.rank] = port
        return port

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Channel {self.name!r} protocol={self.protocol} ports={sorted(self.ports)}>"


class Connection:
    """A reliable point-to-point link within a channel (one per peer)."""

    def __init__(self, port: "ChannelPort", remote_rank: int):
        self.port = port
        self.remote_rank = remote_rank
        self._send_seq = 0
        #: Unacknowledged in-flight messages, keyed by sequence number
        #: (reliable transport only; stays empty on perfect networks).
        self.unacked: dict[int, PendingSend] = {}
        #: Diagnostics.
        self.messages_sent = 0

    def _transmit(self, blocks: tuple[PackedBlock, ...]) -> Generator:
        process = self.port.process
        checker = process.engine.checker
        if checker.enabled:
            # §4.2.3: the thread performing a connection send must never
            # be a registered polling thread.
            checker.on_transmit(self, process.runtime.cpu.current)
        wire = MadWireMessage(
            channel_id=self.port.channel.id,
            source_rank=self.port.rank,
            dest_rank=self.remote_rank,
            sequence=self._send_seq,
            blocks=blocks,
        )
        self._send_seq += 1
        self.messages_sent += 1
        ins = self.port.process.engine.instruments
        if ins.enabled:
            channel = self.port.channel
            ins.count("mad.messages", 1, channel=channel.name,
                      protocol=channel.protocol, rank=self.port.rank)
            ins.count("mad.bytes", wire.wire_bytes, channel=channel.name,
                      protocol=channel.protocol, rank=self.port.rank)
            for block in blocks:
                ins.count("mad.blocks", 1, channel=channel.name,
                          protocol=channel.protocol, rank=self.port.rank,
                          mode=block.receive_mode.name)
        transport = self.port.transport
        if transport is not None:
            yield from transport.reliable_send(self, wire)
            return
        remote_port = self.port.channel.port(self.remote_rank)
        yield from self.port.endpoint.send_message(
            remote_port.endpoint, wire.wire_bytes, wire
        )


class ChannelPort:
    """One process's view of a channel."""

    def __init__(self, channel: Channel, process: "MadProcess"):
        self.channel = channel
        self.process = process
        self.rank = process.rank
        self.endpoint: ProtocolEndpoint = process.endpoint(channel.protocol)
        self.memory = process.memory
        self.params: ProtocolParams = self.endpoint.params
        self.incoming: Mailbox = Mailbox(
            name=f"chan[{channel.name}]@{process.rank}.incoming"
        )
        self._connections: dict[int, Connection] = {}
        #: Reliable-transport state (None on perfect networks): the
        #: process's ReliableTransport, next expected sequence per source,
        #: and the out-of-order hold buffer per source.
        self.transport = process.transport
        self._recv_next: dict[int, int] = {}
        self._recv_buffer: dict[int, dict] = {}
        process._register_port(self)

    # -- sending ------------------------------------------------------------

    def connection(self, remote_rank: int) -> Connection:
        """The (lazily created) connection to ``remote_rank``."""
        if remote_rank == self.rank:
            raise ChannelError(
                "Madeleine connections are inter-process; intra-process "
                "communication belongs to the ch_self device"
            )
        if remote_rank not in self.channel.ports:
            raise ChannelError(
                f"rank {remote_rank} is not a member of channel "
                f"{self.channel.name!r}"
            )
        conn = self._connections.get(remote_rank)
        if conn is None:
            conn = self._connections[remote_rank] = Connection(self, remote_rank)
        return conn

    def begin_packing(self, remote_rank: int) -> OutgoingMessage:
        """Start building a message for ``remote_rank`` (mad_begin_packing)."""
        return OutgoingMessage(self.connection(remote_rank))

    # -- receiving -----------------------------------------------------------

    def begin_unpacking(self) -> Generator:
        """Block until *some* message arrives on this channel; open it.

        Evaluates to an :class:`IncomingMessage` (mad_begin_unpacking —
        note the paper's API does not select a source; the message's
        connection is discovered from the result).
        """
        delivery = yield wait(self.incoming)
        while isinstance(delivery, DeadChannelNotice):
            # The channel died, but in-flight traffic is tunnelled to this
            # very port — keep waiting.  If nothing can ever arrive the
            # failed retransmissions abort the run (FailoverExhaustedError)
            # before this wait could hang silently.
            delivery = yield wait(self.incoming)
        # Raw-Madeleine usage: the application thread itself performs the
        # detection (a select() on TCP, a flag check on SCI/BIP), so the
        # per-poll cost is charged here.  Under ch_mad the polling thread
        # pays it instead (via its PollSource) and calls open_delivery.
        if self.params.poll_cost:
            yield charge(self.params.poll_cost)
        message = yield from self.open_delivery(delivery)
        return message

    def open_delivery(self, delivery: Delivery) -> Generator:
        """Charge receive costs for a delivery and wrap it for unpacking.

        Used directly by polling-thread handlers which already hold the
        delivery (they consumed the mailbox via their poll source).
        """
        wire = delivery.payload
        if not isinstance(wire, MadWireMessage):  # pragma: no cover - defensive
            raise ChannelError(f"foreign payload on channel {self.channel.name!r}")
        cost = self.endpoint.recv_cost(delivery.nbytes)
        if cost:
            yield charge(cost)
        return IncomingMessage(self, wire, delivery)

    def poll_source(self) -> PollSource:
        """Marcel poll source for this port (per-protocol mode/period)."""
        p = self.params
        return PollSource(
            name=f"{self.channel.name}@{self.rank}",
            mode=p.poll_mode,
            mailbox=self.incoming,
            poll_cost=p.poll_cost,
            period=p.poll_period,
            idle_period=p.poll_idle_period,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ChannelPort {self.channel.name!r} rank={self.rank}>"
