"""Madeleine session bootstrap: processes, fabrics, channels.

A :class:`MadeleineSession` ties together the engine, one
:class:`~repro.networks.fabric.NetworkFabric` per physical network, and
one :class:`MadProcess` per simulated process.  Processes attach to the
networks they have boards for; channels are then opened over a protocol
for a set of member processes — the paper's "session" initialization.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ChannelError, ConfigurationError
from repro.madeleine.channel import Channel, ChannelPort
from repro.madeleine.reliable import (
    ChannelHealthMonitor,
    MadAck,
    ReliableTransport,
)
from repro.marcel.thread import MarcelRuntime
from repro.networks import ENDPOINT_CLASSES, PROTOCOL_PARAMS, base_protocol
from repro.networks.fabric import Delivery, NetworkFabric
from repro.networks.ib import HcaAck, RdmaOp
from repro.networks.memory import MemoryModel
from repro.networks.nic import ProtocolEndpoint
from repro.networks.params import ProtocolParams
from repro.sim.engine import Engine


class MadProcess:
    """One simulated process: a Marcel runtime plus its network endpoints."""

    def __init__(self, engine: Engine, rank: int, name: str | None = None,
                 memory: MemoryModel | None = None, switch_cost: int = 150):
        self.engine = engine
        self.rank = rank
        self.name = name or f"proc{rank}"
        self.memory = memory or MemoryModel()
        self.runtime = MarcelRuntime(engine, name=self.name,
                                     switch_cost=switch_cost)
        #: Reliability engine; installed by the session *before* channels
        #: are opened (ChannelPorts snapshot it).  None = trusted networks.
        self.transport: ReliableTransport | None = None
        #: Set by the DeathController the instant this process dies: its
        #: threads are gone and its NICs are dark on every fabric.
        self.dead: bool = False
        #: Session failure detector (None when the plan has no deaths);
        #: every delivery feeds it piggybacked liveness evidence.
        self.detector = None
        self._endpoints: dict[str, ProtocolEndpoint] = {}
        self._ports_by_channel: dict[int, ChannelPort] = {}
        #: Multirail striping stream state (see repro.madeleine.striping):
        #: per-destination transfer counter, per-source expected transfer,
        #: and the hold-back stash for stripes that overtook their turn.
        self._stripe_tx_seq: dict[int, int] = {}
        self._stripe_rx_seq: dict[int, int] = {}
        self._stripe_stash: dict[tuple[int, int], list] = {}

    # -- networks ------------------------------------------------------------

    def attach_network(self, fabric: NetworkFabric,
                       endpoint_cls: type[ProtocolEndpoint] | None = None
                       ) -> ProtocolEndpoint:
        """Install a board for ``fabric``'s protocol in this process."""
        protocol = fabric.name
        if protocol in self._endpoints:
            raise ConfigurationError(
                f"{self.name} already has a {protocol} endpoint"
            )
        cls = endpoint_cls or ENDPOINT_CLASSES.get(base_protocol(protocol),
                                                   ProtocolEndpoint)
        endpoint = cls(self.engine, fabric, owner=self)
        # Replace the endpoint's default sink with the per-channel demux.
        endpoint.adapter.rx_sink = self._demux_delivery
        self._endpoints[protocol] = endpoint
        return endpoint

    def endpoint(self, protocol: str) -> ProtocolEndpoint:
        try:
            return self._endpoints[protocol]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no {protocol} board; attached protocols: "
                f"{sorted(self._endpoints)}"
            ) from None

    def protocols(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # -- channel plumbing -------------------------------------------------------

    def _register_port(self, port: ChannelPort) -> None:
        self._ports_by_channel[port.channel.id] = port

    def _demux_delivery(self, delivery: Delivery) -> None:
        if self.dead:
            return  # a delivery racing the moment of death: dropped
        wire = delivery.payload
        if self.detector is not None:
            # Piggybacked liveness: data, acks and heartbeats all prove
            # their source was alive when it transmitted (even corrupted
            # deliveries — the bytes arrived, the peer exists).
            source = getattr(wire, "source_rank", None)
            if source is not None:
                self.detector.heard_from(source)
        if isinstance(wire, (RdmaOp, HcaAck)):
            # RDMA traffic never belongs to a channel: it is consumed by
            # the HCA model of the fabric's own endpoint (which applies
            # the RC reliability rules — CRC drop, dedup, ack).
            endpoint = self._endpoints.get(delivery.dest.fabric.name)
            if endpoint is None:  # pragma: no cover - defensive
                raise ChannelError(
                    f"{self.name} received RDMA traffic for unattached "
                    f"fabric {delivery.dest.fabric.name!r}")
            endpoint.hca_receive(delivery)
            return
        channel_id = getattr(wire, "channel_id", None)
        port = self._ports_by_channel.get(channel_id)
        if port is None:
            raise ChannelError(
                f"{self.name} received a message for unknown channel id "
                f"{channel_id!r}"
            )
        if self.transport is not None:
            if isinstance(wire, MadAck):
                if not delivery.corrupted:  # a corrupted ack is a lost ack
                    self.transport.handle_ack(port, wire)
                return
            self.transport.receive(port, delivery)
            return
        port.incoming.post(delivery)

    def port(self, channel: Channel) -> ChannelPort:
        try:
            return self._ports_by_channel[channel.id]
        except KeyError:
            raise ChannelError(
                f"{self.name} is not a member of channel {channel.name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MadProcess {self.name} rank={self.rank} nets={self.protocols()}>"


class MadeleineSession:
    """A running Madeleine instance across several simulated processes."""

    def __init__(self, engine: Engine | None = None, fault_plan=None,
                 reliable: bool = False, ft: bool = False):
        self.engine = engine or Engine()
        #: A FaultPlan makes the fabrics misbehave; faults without
        #: reliability would silently lose application data, so a plan
        #: forces the reliable transport on.
        self.fault_plan = fault_plan
        #: The rank-failure model is armed by an explicit ``ft`` request
        #: or by a plan that actually kills ranks — otherwise the
        #: fault-tolerance machinery does not exist and the simulation is
        #: bit-identical to a build without it.
        self.ft = ft or (fault_plan is not None and bool(fault_plan.deaths))
        #: Detection rides the reliable transport's timeouts: ft forces it.
        self.reliable = reliable or fault_plan is not None or self.ft
        self.health: ChannelHealthMonitor | None = (
            ChannelHealthMonitor(self.engine) if self.reliable else None
        )
        self._injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector
            self._injector = FaultInjector(self.engine, fault_plan)
        self.detector = None
        self.death_controller = None
        if self.ft:
            from repro.faults.death import DeathController, FailureDetector
            self.detector = FailureDetector(self.engine, self)
            if self.health is not None:
                self.health.detector = self.detector
            if fault_plan is not None and fault_plan.deaths:
                self.death_controller = DeathController(
                    self.engine, self, fault_plan, self.detector
                )
        self.fabrics: dict[str, NetworkFabric] = {}
        self.processes: list[MadProcess] = []
        self.channels: dict[str, Channel] = {}

    # -- construction -----------------------------------------------------------

    def add_fabric(self, protocol: str,
                   params: ProtocolParams | None = None) -> NetworkFabric:
        """Create the physical network for ``protocol`` (once).

        Additional rails of one protocol use ``"proto#N"`` names (e.g.
        ``"bip#1"``) and inherit the base protocol's parameters — the
        paper's multiple-adapters-per-protocol capability (§3.1).
        """
        if protocol in self.fabrics:
            raise ConfigurationError(f"fabric {protocol!r} already exists")
        if params is None:
            try:
                params = PROTOCOL_PARAMS[base_protocol(protocol)]
            except KeyError:
                raise ConfigurationError(
                    f"no canned parameters for protocol {protocol!r}; "
                    "pass ProtocolParams explicitly"
                ) from None
        fabric = NetworkFabric(self.engine, params, name=protocol)
        fabric.injector = self._injector
        self.fabrics[protocol] = fabric
        return fabric

    def add_process(self, networks: Iterable[str] = (),
                    name: str | None = None,
                    memory: MemoryModel | None = None,
                    switch_cost: int = 150) -> MadProcess:
        """Create a process and attach it to the named networks."""
        process = MadProcess(self.engine, rank=len(self.processes), name=name,
                             memory=memory, switch_cost=switch_cost)
        if self.reliable:
            process.transport = ReliableTransport(process, self.health)
        process.detector = self.detector
        self.processes.append(process)
        for protocol in networks:
            if protocol not in self.fabrics:
                self.add_fabric(protocol)
            process.attach_network(self.fabrics[protocol])
        return process

    def new_channel(self, name: str, protocol: str,
                    ranks: Sequence[int] | None = None) -> Channel:
        """Open a channel over ``protocol`` for ``ranks`` (default: all
        processes that have a board for the protocol)."""
        if name in self.channels:
            raise ConfigurationError(f"channel {name!r} already exists")
        if protocol not in self.fabrics:
            raise ConfigurationError(f"no fabric for protocol {protocol!r}")
        channel = Channel(name, protocol)
        members: list[MadProcess]
        if ranks is None:
            members = [p for p in self.processes if protocol in p.protocols()]
        else:
            members = [self.processes[r] for r in ranks]
        if len(members) < 2:
            raise ConfigurationError(
                f"channel {name!r} needs at least two member processes"
            )
        for process in members:
            channel.add_port(process)
        self.channels[name] = channel
        return channel

    # -- execution ----------------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run the simulation (thin wrapper over the engine)."""
        return self.engine.run(until=until, max_events=max_events)
