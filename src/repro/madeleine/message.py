"""Outgoing and incoming Madeleine messages (paper §3.2).

Cost model (see DESIGN.md §5):

- The first block of a message is covered by the protocol's per-message
  overheads.  Every *additional* block charges the driver's
  ``pack_op_cost`` on the sender and ``unpack_op_cost`` on the receiver —
  this is precisely the "additional packing operation" overhead the paper
  measures for ch_mad (21 us TCP / 6.5 us SCI / 4.5 us BIP per extra
  pack+unpack pair, §5.2–5.4).
- ``receive_EXPRESS`` blocks are aggregated into the message's express
  segment: both sides pay a memcpy of the block (EXPRESS trades copies
  for immediacy).  ``receive_CHEAPER`` blocks ride the driver's cheapest
  (zero-copy) path and cost no copies.
- ``send_SAFER`` forces a sender-side copy even for CHEAPER blocks (the
  library must detach the data from the application buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import PackingError
from repro.madeleine.constants import (
    BLOCK_FRAMING_BYTES,
    MESSAGE_FRAMING_BYTES,
    ReceiveMode,
    SendMode,
)
from repro.sim.coroutines import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.channel import ChannelPort, Connection
    from repro.networks.fabric import Delivery


@dataclass(frozen=True)
class PackedBlock:
    """One ``mad_pack``'d block as it travels on the wire."""

    data: Any
    size: int
    send_mode: SendMode
    receive_mode: ReceiveMode


@dataclass(frozen=True)
class MadWireMessage:
    """The payload handed to the network fabric for one Madeleine message."""

    channel_id: int
    source_rank: int
    dest_rank: int
    sequence: int
    blocks: tuple[PackedBlock, ...]

    @property
    def wire_bytes(self) -> int:
        """Total bytes serialized for this message (blocks + framing)."""
        return (
            MESSAGE_FRAMING_BYTES
            + sum(b.size + BLOCK_FRAMING_BYTES for b in self.blocks)
        )


class OutgoingMessage:
    """Build-side state machine: ``pack*`` then ``end_packing``."""

    def __init__(self, connection: "Connection"):
        self.connection = connection
        self._blocks: list[PackedBlock] = []
        self._finalized = False

    def pack(self, data: Any, size: int, send_mode: SendMode,
             receive_mode: ReceiveMode) -> Generator:
        """Append one block to the message (charges pack costs)."""
        if self._finalized:
            raise PackingError("pack after end_packing")
        if size < 0:
            raise PackingError(f"negative block size {size}")
        if not isinstance(send_mode, SendMode) or not isinstance(receive_mode, ReceiveMode):
            raise PackingError("pack requires a SendMode and a ReceiveMode flag")
        port = self.connection.port
        cost = 0
        if self._blocks:  # first block is covered by the message overheads
            cost += port.params.pack_op_cost
        if receive_mode is ReceiveMode.EXPRESS or send_mode is SendMode.SAFER:
            cost += port.memory.copy_cost(size)
        if cost:
            yield charge(cost)
        self._blocks.append(PackedBlock(data, size, send_mode, receive_mode))

    def end_packing(self) -> Generator:
        """Finalize and transmit; returns when the send completes locally."""
        if self._finalized:
            raise PackingError("end_packing called twice")
        if not self._blocks:
            raise PackingError("empty message: pack at least one block")
        self._finalized = True
        yield from self.connection._transmit(tuple(self._blocks))

    @property
    def block_count(self) -> int:
        return len(self._blocks)


class IncomingMessage:
    """Extract-side state machine: ``unpack*`` then ``end_unpacking``.

    Unpack calls must mirror the pack sequence exactly (size and both
    mode flags), as in real Madeleine where a mismatch corrupts the
    stream.  We detect and raise instead.
    """

    def __init__(self, port: "ChannelPort", wire: MadWireMessage,
                 delivery: "Delivery"):
        self.port = port
        self.wire = wire
        self.delivery = delivery
        self._cursor = 0
        self._finalized = False

    @property
    def source_rank(self) -> int:
        """Rank (process id) of the sender — identifies the connection."""
        return self.wire.source_rank

    def unpack(self, size: int, send_mode: SendMode,
               receive_mode: ReceiveMode) -> Generator:
        """Extract the next block; evaluates to the block's data."""
        if self._finalized:
            raise PackingError("unpack after end_unpacking")
        if self._cursor >= len(self.wire.blocks):
            raise PackingError(
                f"unpack #{self._cursor + 1} but message has only "
                f"{len(self.wire.blocks)} blocks"
            )
        block = self.wire.blocks[self._cursor]
        if block.size != size:
            raise PackingError(
                f"unpack size {size} != packed size {block.size} "
                f"(block {self._cursor})"
            )
        if block.send_mode is not send_mode or block.receive_mode is not receive_mode:
            raise PackingError(
                f"unpack modes ({send_mode}, {receive_mode}) do not match "
                f"packed modes ({block.send_mode}, {block.receive_mode})"
            )
        cost = 0
        if self._cursor > 0:
            cost += self.port.params.unpack_op_cost
        if receive_mode is ReceiveMode.EXPRESS:
            cost += self.port.memory.copy_cost(size)
        if cost:
            yield charge(cost)
        self._cursor += 1
        return block.data

    def end_unpacking(self) -> Generator:
        """Finish extraction.  All blocks must have been consumed."""
        if self._finalized:
            raise PackingError("end_unpacking called twice")
        if self._cursor != len(self.wire.blocks):
            raise PackingError(
                f"end_unpacking with {len(self.wire.blocks) - self._cursor} "
                "blocks not yet unpacked"
            )
        self._finalized = True
        return
        yield  # pragma: no cover - makes this a generator

    @property
    def remaining_blocks(self) -> int:
        return len(self.wire.blocks) - self._cursor

    def next_block_size(self) -> int:
        """Wire size of the next block to unpack.

        Madeleine frames each block with a length descriptor, so the
        receiving side may size a self-describing header before
        extracting it (ch_mad's type-field dispatch relies on this).
        """
        if self._cursor >= len(self.wire.blocks):
            raise PackingError("no blocks left to size")
        return self.wire.blocks[self._cursor].size
