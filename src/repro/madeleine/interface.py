"""Paper-style procedural wrappers around the Madeleine object API.

These mirror the C interface of Figure 2 so that code transcribed from
the paper reads one-to-one::

    connection = mad_begin_packing(channel_port, remote)
    yield from mad_pack(connection, size_blob, 4, SEND_CHEAPER, RECEIVE_EXPRESS)
    yield from mad_pack(connection, array, size, SEND_CHEAPER, RECEIVE_CHEAPER)
    yield from mad_end_packing(connection)

    connection = yield from mad_begin_unpacking(channel_port)
    size_blob = yield from mad_unpack(connection, 4, SEND_CHEAPER, RECEIVE_EXPRESS)
    array = yield from mad_unpack(connection, size, SEND_CHEAPER, RECEIVE_CHEAPER)
    yield from mad_end_unpacking(connection)

The "connection" returned by begin_packing/begin_unpacking is actually the
in-flight message object, exactly as the C API's connection handle doubles
as the current-message cursor.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.madeleine.channel import ChannelPort
from repro.madeleine.constants import ReceiveMode, SendMode
from repro.madeleine.message import IncomingMessage, OutgoingMessage


def mad_begin_packing(port: ChannelPort, remote_rank: int) -> OutgoingMessage:
    """Start a message on ``port`` towards ``remote_rank``."""
    return port.begin_packing(remote_rank)


def mad_pack(message: OutgoingMessage, data: Any, size: int,
             send_mode: SendMode, receive_mode: ReceiveMode) -> Generator:
    """Append a block to an outgoing message."""
    yield from message.pack(data, size, send_mode, receive_mode)


def mad_end_packing(message: OutgoingMessage) -> Generator:
    """Finalize and transmit an outgoing message."""
    yield from message.end_packing()


def mad_begin_unpacking(port: ChannelPort) -> Generator:
    """Wait for and open the next incoming message on ``port``."""
    message = yield from port.begin_unpacking()
    return message


def mad_unpack(message: IncomingMessage, size: int, send_mode: SendMode,
               receive_mode: ReceiveMode) -> Generator:
    """Extract the next block; evaluates to its data."""
    data = yield from message.unpack(size, send_mode, receive_mode)
    return data


def mad_end_unpacking(message: IncomingMessage) -> Generator:
    """Finish extracting an incoming message."""
    yield from message.end_unpacking()
