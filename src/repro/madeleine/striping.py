"""Multi-rail striping over several Madeleine channels (paper §3.1).

Madeleine "is able to ... manage multiple network adapters (NIC) for
each of these protocols", and "it is of course possible to have several
channels related to the same protocol and/or the same network adapter".
This module exploits that: a large block is split across several
channels (one per rail) and reassembled on the receiving side, giving
aggregate bandwidth close to the sum of the rails for DMA networks.

Note the in-order caveat the paper states (§3.1): ordering is only
guaranteed *within* a channel, so the stripes carry explicit indices and
the receiver reassembles by index, not by arrival order.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.errors import MadeleineError
from repro.madeleine.channel import ChannelPort
from repro.madeleine.constants import (
    RECEIVE_CHEAPER,
    RECEIVE_EXPRESS,
    SEND_CHEAPER,
)

#: Per-stripe header: stripe index + stripe count + payload length.
STRIPE_HEADER_BYTES = 12


def stripe_sizes(total: int, rails: int) -> list[int]:
    """Split ``total`` bytes into ``rails`` near-equal positive stripes."""
    if rails < 1:
        raise MadeleineError("need at least one rail")
    if total < 0:
        raise MadeleineError("negative stripe total")
    base, rem = divmod(total, rails)
    return [base + (1 if i < rem else 0) for i in range(rails)]


def striped_send(ports: Sequence[ChannelPort], remote_rank: int, data: Any,
                 size: int) -> Generator:
    """Send ``size`` bytes to ``remote_rank`` striped across ``ports``.

    The payload object rides the first stripe; the other stripes carry
    only their byte counts (the simulator moves costs, not bits).  Rails
    whose stripe would be empty are skipped.
    """
    if not ports:
        raise MadeleineError("striped_send needs at least one port")
    sizes = stripe_sizes(size, len(ports))
    nstripes = sum(1 for s in sizes if s > 0) or 1
    for index, (port, stripe) in enumerate(zip(ports, sizes)):
        if stripe == 0 and index > 0:
            continue
        message = port.begin_packing(remote_rank)
        yield from message.pack((index, nstripes, stripe),
                                STRIPE_HEADER_BYTES,
                                SEND_CHEAPER, RECEIVE_EXPRESS)
        payload = data if index == 0 else None
        yield from message.pack(payload, stripe,
                                SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()


def striped_recv(ports: Sequence[ChannelPort], size: int) -> Generator:
    """Receive one striped transfer; evaluates to the payload object.

    Waits for every expected stripe across the rails; stripes may land
    in any order (channels are independent worlds).
    """
    if not ports:
        raise MadeleineError("striped_recv needs at least one port")
    expected = None
    received = 0
    payload = None
    port_cycle = list(ports)
    while expected is None or received < expected:
        # One incoming stripe per port, round-robin over rails that still
        # owe us data; each port delivers its stripes in order.
        port = port_cycle[received % len(port_cycle)]
        message = yield from port.begin_unpacking()
        index, nstripes, stripe = yield from message.unpack(
            STRIPE_HEADER_BYTES, SEND_CHEAPER, RECEIVE_EXPRESS)
        body = yield from message.unpack(stripe, SEND_CHEAPER,
                                         RECEIVE_CHEAPER)
        yield from message.end_unpacking()
        if expected is None:
            expected = nstripes
        elif nstripes != expected:
            raise MadeleineError(
                f"stripe count mismatch: {nstripes} != {expected}"
            )
        if index == 0:
            payload = body
        received += 1
    return payload
