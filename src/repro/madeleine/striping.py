"""Multi-rail striping over several Madeleine channels (paper §3.1).

Madeleine "is able to ... manage multiple network adapters (NIC) for
each of these protocols", and "it is of course possible to have several
channels related to the same protocol and/or the same network adapter".
This module exploits that: a large block is split across several
channels (one per rail) and reassembled on the receiving side, giving
aggregate bandwidth close to the sum of the rails for DMA networks.

Note the in-order caveat the paper states (§3.1): ordering is only
guaranteed *within* a channel, so the stripes carry explicit indices and
the receiver reassembles by index, not by arrival order.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.errors import FailoverExhaustedError, MadeleineError
from repro.madeleine.channel import ChannelPort
from repro.madeleine.constants import (
    RECEIVE_CHEAPER,
    RECEIVE_EXPRESS,
    SEND_CHEAPER,
)
from repro.madeleine.reliable import DeadChannelNotice
from repro.sim.coroutines import charge, wait
from repro.sim.sync import MailboxSelect

#: Per-stripe header: transfer seq + stripe index + count + payload length.
STRIPE_HEADER_BYTES = 16


def stripe_sizes(total: int, rails: int) -> list[int]:
    """Split ``total`` bytes into ``rails`` near-equal positive stripes."""
    if rails < 1:
        raise MadeleineError("need at least one rail")
    if total < 0:
        raise MadeleineError("negative stripe total")
    base, rem = divmod(total, rails)
    return [base + (1 if i < rem else 0) for i in range(rails)]


def striped_send(ports: Sequence[ChannelPort], remote_rank: int, data: Any,
                 size: int) -> Generator:
    """Send ``size`` bytes to ``remote_rank`` striped across ``ports``.

    The payload object rides the first stripe; the other stripes carry
    only their byte counts (the simulator moves costs, not bits).  Rails
    whose stripe would be empty are skipped, and so are dead rails — the
    transfer degrades onto the survivors (down to a single rail).
    """
    if not ports:
        raise MadeleineError("striped_send needs at least one port")
    live = [p for p in ports if not p.channel.dead]
    if not live:
        raise FailoverExhaustedError(
            f"all {len(ports)} striping rails are dead"
        )
    # Per-destination transfer sequence: stripes of consecutive transfers
    # can overtake each other *across* rails (a tiny stripe on an idle
    # rail beats a huge one on a busy rail), so the receiver needs to
    # know which transfer a stripe belongs to.
    process = live[0].process
    transfer = process._stripe_tx_seq.get(remote_rank, 0)
    process._stripe_tx_seq[remote_rank] = transfer + 1
    sizes = stripe_sizes(size, len(live))
    nstripes = sum(1 for s in sizes if s > 0) or 1
    for index, (port, stripe) in enumerate(zip(live, sizes)):
        if stripe == 0 and index > 0:
            continue
        message = port.begin_packing(remote_rank)
        yield from message.pack((transfer, index, nstripes, stripe),
                                STRIPE_HEADER_BYTES,
                                SEND_CHEAPER, RECEIVE_EXPRESS)
        payload = data if index == 0 else None
        yield from message.pack(payload, stripe,
                                SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()


def striped_recv(ports: Sequence[ChannelPort], size: int) -> Generator:
    """Receive one striped transfer; evaluates to the payload object.

    Waits for every expected stripe across the rails; stripes may land
    in any order (channels are independent worlds) and — because a rail
    can die and shrink the sender's stripe set mid-stream — the receiver
    cannot predict which rail carries which stripe.  It therefore selects
    over *all* rails at once and trusts the per-stripe indices for
    reassembly.
    """
    if not ports:
        raise MadeleineError("striped_recv needs at least one port")
    by_mailbox = {port.incoming: port for port in ports}
    process = ports[0].process
    stash = process._stripe_stash       # (src, transfer) -> stripe list
    rx_next = process._stripe_rx_seq    # src -> next expected transfer
    current: tuple[int, int] | None = None
    expected = None
    received = 0
    payload = None
    while True:
        stripe_info = None
        if current is None:
            # A whole earlier transfer may already sit in the stash
            # (its stripes overtook the previous transfer's tail).
            for key in sorted(stash):
                src, transfer = key
                if transfer == rx_next.get(src, 0) and stash[key]:
                    current = key
                    break
        if current is not None and stash.get(current):
            stripe_info = stash[current].pop(0)
        if stripe_info is None:
            mailbox, delivery = yield wait(MailboxSelect(by_mailbox))
            if isinstance(delivery, DeadChannelNotice):
                continue  # the rail died; survivors carry the rest
            port = by_mailbox[mailbox]
            # The application thread performed the detection itself (raw
            # Madeleine usage) — charge the per-poll cost begin_unpacking
            # would have charged.
            if port.params.poll_cost:
                yield charge(port.params.poll_cost)
            message = yield from port.open_delivery(delivery)
            transfer, index, nstripes, stripe = yield from message.unpack(
                STRIPE_HEADER_BYTES, SEND_CHEAPER, RECEIVE_EXPRESS)
            body = yield from message.unpack(stripe, SEND_CHEAPER,
                                             RECEIVE_CHEAPER)
            yield from message.end_unpacking()
            key = (message.source_rank, transfer)
            if current is None and transfer == rx_next.get(
                    message.source_rank, 0):
                current = key
            if key != current:
                stash.setdefault(key, []).append((index, nstripes, body))
                continue
            stripe_info = (index, nstripes, body)
        index, nstripes, body = stripe_info
        if expected is None:
            expected = nstripes
        elif nstripes != expected:
            raise MadeleineError(
                f"stripe count mismatch: {nstripes} != {expected}"
            )
        if index == 0:
            payload = body
        received += 1
        if received >= expected:
            src, transfer = current
            rx_next[src] = transfer + 1
            if current in stash and not stash[current]:
                del stash[current]
            return payload
