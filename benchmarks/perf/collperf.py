"""Collective-algorithm sweep: flat vs hierarchical vs multi-lane.

Runs :func:`repro.bench.collectives.collective_bench` over a grid of
rank counts and registered algorithms through the batch runner (so the
sweep parallelizes across worker processes and re-runs answer from the
content-addressed cache), then enforces the node-aware acceptance
criterion: **hierarchical allreduce must beat the flat default at every
rank count >= 64** on the 2-rails-per-node SMP cluster.

All numbers are *virtual* nanoseconds from the deterministic simulator,
so a baseline comparison is exact: any drift from the committed
``BENCH_collectives.json`` means the collective traffic itself changed,
not the machine the benchmark ran on.

Usage::

    python benchmarks/perf/collperf.py --output BENCH_collectives.json
    python benchmarks/perf/collperf.py --quick --baseline BENCH_collectives.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runner import JobSpec, Runner  # noqa: E402

RANKS = (64, 128, 256, 512)
QUICK_RANKS = (64, 128)
ALGORITHMS = ("default", "hier", "multilane")
SIZE = 65536  # 64 KiB payload: comfortably in rendez-vous territory


def sweep_specs(ranks: tuple[int, ...], size: int = SIZE) -> list[JobSpec]:
    return [
        JobSpec(kind="coll_bench",
                params={"operation": "allreduce", "algorithm": algorithm,
                        "ranks": n, "processes_per_node": 2, "rails": 2,
                        "size": size, "reps": 3, "warmup": 1},
                label=f"allreduce/{algorithm}@{n}")
        for n in ranks
        for algorithm in ALGORITHMS
    ]


def run_sweep(ranks: tuple[int, ...], workers: int,
              cache: str | None) -> list[dict]:
    runner = Runner(workers=workers, cache=cache, out=print)
    results = runner.run(sweep_specs(ranks))
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"FAIL: {r.spec.display}: {r.error}")
        raise SystemExit(1)
    return [r.payload for r in results]


def check_hier_wins(points: list[dict]) -> list[str]:
    """The acceptance criterion: hier < default at every ranks level."""
    by_key = {(p["ranks"], p["algorithm"]): p["mean_ns"] for p in points}
    problems = []
    for n in sorted({p["ranks"] for p in points}):
        default = by_key.get((n, "default"))
        hier = by_key.get((n, "hier"))
        if default is None or hier is None:
            continue
        if hier >= default:
            problems.append(
                f"hier allreduce ({hier:.0f} ns) does not beat the flat "
                f"default ({default:.0f} ns) at {n} ranks")
    return problems


def check_baseline(points: list[dict], baseline: dict) -> list[str]:
    """Virtual times are deterministic — the comparison is exact."""
    base = {(p["ranks"], p["algorithm"]): p["mean_ns"]
            for p in baseline.get("points", [])}
    problems = []
    for p in points:
        key = (p["ranks"], p["algorithm"])
        if key in base and base[key] != p["mean_ns"]:
            problems.append(
                f"allreduce/{p['algorithm']}@{p['ranks']}: mean "
                f"{p['mean_ns']:.0f} ns differs from baseline "
                f"{base[key]:.0f} ns (virtual time is deterministic; "
                f"the collective's traffic changed)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default=None,
                        help="write the record as JSON to this path")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_collectives.json to compare "
                             "against (exact virtual-time match)")
    parser.add_argument("--quick", action="store_true",
                        help="64/128 ranks only (CI smoke)")
    parser.add_argument("--workers", type=int, default=4,
                        help="runner worker processes (default 4)")
    parser.add_argument("--cache", default=None,
                        help="content-addressed result cache directory")
    args = parser.parse_args(argv)

    ranks = QUICK_RANKS if args.quick else RANKS
    points = run_sweep(ranks, workers=args.workers, cache=args.cache)

    record = {
        "schema": "collperf/1",
        "python": platform.python_version(),
        "quick": args.quick,
        "cluster": {"processes_per_node": 2, "rails": 2, "network": "sisci"},
        "points": points,
    }

    problems = check_hier_wins(points)
    if args.baseline:
        problems += check_baseline(
            points, json.loads(Path(args.baseline).read_text()))

    for n in sorted({p["ranks"] for p in points}):
        row = {p["algorithm"]: p["mean_ns"] for p in points
               if p["ranks"] == n}
        default = row.get("default")
        summary = "  ".join(
            f"{alg}={row[alg] / 1e6:.3f}ms"
            + (f" ({default / row[alg]:.2f}x)" if default and alg != "default"
               else "")
            for alg in ALGORITHMS if alg in row)
        print(f"allreduce @ {n:4d} ranks: {summary}")

    text = json.dumps(record, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("collperf: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
