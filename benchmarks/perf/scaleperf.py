"""Large-world scaling benchmarks: events/s and peak memory vs rank count.

One probe per world size (64 / 256 / 1024 ranks by default, plus an
8-rank reference point) built from ``multirail_smp_cluster`` on a single
sisci rail.  Each probe records:

- ``build_seconds`` / ``build_peak_kb`` — wall-clock and tracemalloc
  peak for ``MPIWorld`` construction alone.  Construction must stay
  ~linear in ranks: the O(ranks^2) per-rank copies of world-wide tables
  (groups, node maps, peer meshes) were the original 1024-rank blocker.
- ``run_seconds`` / ``events_executed`` / ``events_per_sec`` — a sparse
  ring neighbour exchange (every rank talks to rank+-1 only) timed
  run-only.  Most of the world is idle at any instant, which is exactly
  the regime the per-CPU clock index and ``Engine.step_batch`` target:
  events/s should be roughly flat in world size, not collapse with it.
- ``rss_peak_kb`` — ``ru_maxrss`` after the run (informational only:
  it is process-lifetime-cumulative and allocator-dependent; the
  regression gates use tracemalloc numbers).

``REPRO_SOAK=1`` (or ``--soak``) adds the 1024-rank point to quick runs
and a million-event storm: enough exchange rounds that the 1024-rank
world executes >= 1e6 engine events in one sitting.

``--baseline BENCH_scale.json --max-regression 0.30`` makes CI fail when
any common probe's events/s drops more than 30 % below the committed
baseline or its build peak grows more than 50 % above it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.config import multirail_smp_cluster  # noqa: E402
from repro.cluster.session import MPIWorld  # noqa: E402

#: Rank counts of the committed baseline (8 is the flat-rate reference).
DEFAULT_POINTS = (8, 64, 256, 1024)
#: Neighbour-exchange rounds per probe (scaled up for the soak storm).
ROUNDS = 4
#: The soak storm must execute at least this many engine events.
STORM_MIN_EVENTS = 1_000_000


def _neighbor_exchange(rounds: int):
    """Ring neighbour exchange: rank r talks to r-1 and r+1 only."""

    def program(mpi):
        comm = mpi.comm_world
        rank, size = comm.rank, comm.size
        right = (rank + 1) % size
        left = (rank - 1) % size
        payload = b"x" * 64
        for _ in range(rounds):
            # Even ranks send first, odd ranks receive first; with an
            # eager 64-byte payload either order is deadlock-free, but
            # the split keeps the wire pattern symmetric.
            if rank % 2 == 0:
                yield from comm.send(payload, dest=right, tag=1)
                yield from comm.recv(source=left, tag=1)
                yield from comm.send(payload, dest=left, tag=2)
                yield from comm.recv(source=right, tag=2)
            else:
                yield from comm.recv(source=left, tag=1)
                yield from comm.send(payload, dest=right, tag=1)
                yield from comm.recv(source=right, tag=2)
                yield from comm.send(payload, dest=left, tag=2)

    return program


def probe(ranks: int, rounds: int = ROUNDS) -> dict:
    """Build a ``ranks``-rank world, run the exchange, record the costs."""
    config = multirail_smp_cluster(nodes=ranks // 4, processes_per_node=4,
                                   rails=1, network="sisci")
    tracemalloc.start()
    start = time.perf_counter()
    world = MPIWorld(config)
    build_seconds = time.perf_counter() - start
    _, build_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    start = time.perf_counter()
    world.run(_neighbor_exchange(rounds))
    run_seconds = time.perf_counter() - start
    events = world.engine.events_executed
    return {
        "ranks": ranks,
        "rounds": rounds,
        "build_seconds": build_seconds,
        "build_peak_kb": build_peak // 1024,
        "run_seconds": run_seconds,
        "events_executed": events,
        "events_per_sec": events / run_seconds if run_seconds else 0.0,
        "virtual_ns": world.engine.now,
        "rss_peak_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def storm(ranks: int = 1024) -> dict:
    """Soak-only: a >= 1e6-event exchange storm on the biggest world."""
    # ~1.5k events/round/world at 1024 ranks; start generous and verify.
    rounds = ROUNDS
    record = probe(ranks, rounds)
    while record["events_executed"] < STORM_MIN_EVENTS:
        scale = STORM_MIN_EVENTS / max(record["events_executed"], 1)
        rounds = max(rounds + 1, int(rounds * scale * 1.1))
        record = probe(ranks, rounds)
    record["storm"] = True
    return record


def run_suite(points=DEFAULT_POINTS, soak: bool = False) -> dict:
    # Warm imports and first-build caches so the first probe's
    # tracemalloc peak measures the world, not module loading.
    probe(8, rounds=1)
    probes = {str(ranks): probe(ranks) for ranks in points}
    reference = probes.get("8") or probes[str(points[0])]
    for record in probes.values():
        # The acceptance ratio: a big mostly-idle world should execute
        # events at roughly the small-world rate (>= 0.5x of reference).
        record["rate_vs_reference"] = (
            record["events_per_sec"] / reference["events_per_sec"]
            if reference["events_per_sec"] else 0.0)
    suite = {
        "schema": "scaleperf/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "probes": probes,
    }
    if soak:
        suite["storm_1024"] = storm()
    return suite


def compare(record: dict, baseline: dict, max_regression: float) -> int:
    """Gate: events/s down > max_regression, or build peak up > 50 %."""
    status = 0
    base_probes = baseline.get("probes", {})
    for key, new in record["probes"].items():
        base = base_probes.get(key)
        if not base:
            continue
        base_rate = base.get("events_per_sec") or 0.0
        if base_rate and new["events_per_sec"] < base_rate * (1.0 - max_regression):
            print(f"FAIL: {key}-rank events/s {new['events_per_sec']:,.0f} "
                  f"is below {(1.0 - max_regression):.2f}x baseline "
                  f"{base_rate:,.0f}")
            status = 1
        base_peak = base.get("build_peak_kb") or 0
        if base_peak and new["build_peak_kb"] > base_peak * 1.5:
            print(f"FAIL: {key}-rank build peak {new['build_peak_kb']} KiB "
                  f"exceeds 1.5x baseline {base_peak} KiB")
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default=None,
                        help="write the record as JSON to this path")
    parser.add_argument("--ranks", type=int, nargs="*", default=None,
                        help="world sizes to probe (default 8 64 256 1024; "
                             "quick CI uses 8 64 256)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the 1024-rank point (CI smoke)")
    parser.add_argument("--soak", action="store_true",
                        help="also run the 1024-rank million-event storm "
                             "(implied by REPRO_SOAK=1)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_scale.json to regress against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail if any probe's events/s drops more than "
                             "this fraction vs the baseline (default 0.30)")
    args = parser.parse_args(argv)

    soak = args.soak or os.environ.get("REPRO_SOAK") == "1"
    points = tuple(args.ranks) if args.ranks else DEFAULT_POINTS
    if args.quick and args.ranks is None:
        points = tuple(p for p in DEFAULT_POINTS if p < 1024)
    record = run_suite(points, soak=soak)

    status = 0
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        status = compare(record, baseline, args.max_regression)

    text = json.dumps(record, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    print(text)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
