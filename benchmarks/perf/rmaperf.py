"""One-sided (RMA) sweep: rendezvous-over-RDMA vs the packetized path.

Runs :func:`repro.bench.rma.rma_bench` over put/get/two-sided at four
message sizes, each under both transfer machineries (``rdma=True`` — the
zero-copy RDMA path — and ``rdma=False`` — the packetized ablation),
then enforces the acceptance criterion: **RDMA put and get bandwidth
must be >= 1.3x the packetized path at every swept size** (all sizes sit
above the 16 KiB IB rendezvous threshold).

All numbers are *virtual* nanoseconds from the deterministic simulator,
so the baseline comparison is exact: any drift from the committed
``BENCH_rma.json`` means the RMA traffic itself changed, not the machine
the benchmark ran on.

Usage::

    python benchmarks/perf/rmaperf.py --output BENCH_rma.json
    python benchmarks/perf/rmaperf.py --quick --baseline BENCH_rma.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runner import JobSpec, Runner  # noqa: E402

SIZES = (32_768, 65_536, 262_144, 1_048_576)
QUICK_SIZES = (65_536, 262_144)
OPERATIONS = ("put", "get", "two_sided")
MIN_RDMA_SPEEDUP = 1.3


def sweep_specs(sizes: tuple[int, ...]) -> list[JobSpec]:
    return [
        JobSpec(kind="rma_bench",
                params={"operation": operation, "size": size, "rdma": rdma,
                        "reps": 3, "warmup": 1},
                label=f"{operation}/{'rdma' if rdma else 'packet'}@{size}")
        for size in sizes
        for operation in OPERATIONS
        for rdma in (True, False)
    ]


def run_sweep(sizes: tuple[int, ...], workers: int,
              cache: str | None) -> list[dict]:
    runner = Runner(workers=workers, cache=cache, out=print)
    results = runner.run(sweep_specs(sizes))
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"FAIL: {r.spec.display}: {r.error}")
        raise SystemExit(1)
    return [r.payload for r in results]


def check_rdma_wins(points: list[dict]) -> list[str]:
    """The acceptance criterion: RDMA >= 1.3x packetized for put/get."""
    by_key = {(p["operation"], p["size"], p["rdma"]): p["bandwidth_mb_s"]
              for p in points}
    problems = []
    for operation in ("put", "get"):
        for size in sorted({p["size"] for p in points}):
            rdma = by_key.get((operation, size, True))
            packet = by_key.get((operation, size, False))
            if rdma is None or packet is None:
                continue
            if rdma < MIN_RDMA_SPEEDUP * packet:
                problems.append(
                    f"{operation}@{size}: RDMA bandwidth {rdma:.1f} MB/s is "
                    f"below {MIN_RDMA_SPEEDUP}x the packetized path "
                    f"({packet:.1f} MB/s, ratio {rdma / packet:.2f})")
    return problems


def check_baseline(points: list[dict], baseline: dict) -> list[str]:
    """Virtual times are deterministic — the comparison is exact."""
    base = {(p["operation"], p["size"], p["rdma"]): p["mean_ns"]
            for p in baseline.get("points", [])}
    problems = []
    for p in points:
        key = (p["operation"], p["size"], p["rdma"])
        if key in base and base[key] != p["mean_ns"]:
            problems.append(
                f"{p['operation']}/{'rdma' if p['rdma'] else 'packet'}@"
                f"{p['size']}: mean {p['mean_ns']:.0f} ns differs from "
                f"baseline {base[key]:.0f} ns (virtual time is "
                f"deterministic; the RMA traffic changed)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default=None,
                        help="write the record as JSON to this path")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_rma.json to compare against "
                             "(exact virtual-time match)")
    parser.add_argument("--quick", action="store_true",
                        help="64 KiB / 256 KiB only (CI smoke)")
    parser.add_argument("--workers", type=int, default=4,
                        help="runner worker processes (default 4)")
    parser.add_argument("--cache", default=None,
                        help="content-addressed result cache directory")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else SIZES
    points = run_sweep(sizes, workers=args.workers, cache=args.cache)

    record = {
        "schema": "rmaperf/1",
        "python": platform.python_version(),
        "quick": args.quick,
        "cluster": {"nodes": 2, "network": "ib"},
        "points": points,
    }

    problems = check_rdma_wins(points)
    if args.baseline:
        problems += check_baseline(
            points, json.loads(Path(args.baseline).read_text()))

    by_key = {(p["operation"], p["size"], p["rdma"]): p["bandwidth_mb_s"]
              for p in points}
    for size in sorted({p["size"] for p in points}):
        row = []
        for operation in OPERATIONS:
            rdma = by_key.get((operation, size, True))
            packet = by_key.get((operation, size, False))
            if rdma is None:
                continue
            cell = f"{operation}={rdma:.0f}MB/s"
            if packet:
                cell += f" ({rdma / packet:.2f}x pkt)"
            row.append(cell)
        print(f"rma @ {size:8d} B: " + "  ".join(row))

    text = json.dumps(record, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("rmaperf: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
