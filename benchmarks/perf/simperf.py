"""Simulator wall-clock micro-benchmarks (the perf trajectory's measuring stick).

Three probes, smallest to largest:

- ``engine_throughput`` — raw event loop: how many schedule+execute
  cycles per second the :class:`~repro.sim.engine.Engine` sustains.
- ``pingpong_rate`` — the full MPI stack: events per second while a
  ch_mad/TCP ping-pong runs (exercises CPU dispatch, polling, NIC
  models — the profile mix of the paper figures).
- ``figure6_wall`` — end-to-end: wall-clock seconds for one complete
  ``figure6_tcp`` series, the number the ISSUE's >= 2x target is
  measured against.

``python benchmarks/perf/simperf.py --output BENCH_simperf.json``
writes a machine-readable record; CI compares ``figure6_wall`` and
``engine_throughput`` against the committed baseline and fails on a
>30 % wall-clock regression.  All probes measure *wall-clock only*:
virtual-time results are pinned separately by the golden digests in
``tests/test_determinism.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.engine import Engine  # noqa: E402


def engine_throughput(n_events: int = 200_000) -> dict:
    """Events/second through a bare engine (self-rescheduling chain)."""
    engine = Engine()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(10, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "events": engine.events_executed,
        "seconds": elapsed,
        "events_per_sec": engine.events_executed / elapsed,
    }


def pingpong_rate(size: int = 1024, reps: int = 30) -> dict:
    """Engine events/second during a full-stack ch_mad/TCP ping-pong."""
    from repro.bench.pingpong import mpi_pingpong
    from repro.cluster.config import two_node_cluster
    from repro.cluster.session import MPIWorld

    # Warm the caches (imports, first-build costs) and grab the virtual-time
    # latency from the public entry point.
    result = mpi_pingpong(size, networks=("tcp",), reps=reps)

    # Then measure events/second on ONE run: the numerator (events) and the
    # denominator (wall seconds) must come from the same world, and the
    # timed region must exclude world construction.  (An earlier version
    # divided a probe world's event count by mpi_pingpong's wall time —
    # construction noise moved the rate ~2x between runs while one_way_ns
    # sat still.)
    world = MPIWorld(two_node_cluster(networks=("tcp",)))

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            for _ in range(reps):
                yield from comm.send(b"", dest=1, tag=9, size=size)
                yield from comm.recv(source=1, tag=9, size=size)
        else:
            for _ in range(reps):
                yield from comm.recv(source=0, tag=9, size=size)
                yield from comm.send(b"", dest=0, tag=9, size=size)

    start = time.perf_counter()
    world.run(program)
    elapsed = time.perf_counter() - start
    events = world.engine.events_executed
    return {
        "size": size,
        "reps": reps,
        "one_way_ns": result.one_way_ns,
        "seconds": elapsed,
        "events_executed": events,
        "events_per_sec": events / elapsed if elapsed else 0.0,
    }


def figure6_wall() -> dict:
    """Wall-clock for one full figure6_tcp sweep (the acceptance probe)."""
    from repro.bench.figures import figure6_tcp

    start = time.perf_counter()
    figure = figure6_tcp()
    elapsed = time.perf_counter() - start
    # A stable virtual-time checksum rides along so a perf run that
    # accidentally changed results is caught even outside the test suite.
    checksum = sum(
        round(latency * 1000)
        for series in figure.series.values() for latency in series.latency_us
    )
    return {"seconds": elapsed, "latency_checksum": checksum}


def run_suite(quick: bool = False) -> dict:
    probes = {
        "engine_throughput": engine_throughput(50_000 if quick else 200_000),
        "pingpong_rate": pingpong_rate(reps=8 if quick else 30),
    }
    if not quick:
        probes["figure6_wall"] = figure6_wall()
    return {
        "schema": "simperf/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "probes": probes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default=None,
                        help="write the record as JSON to this path")
    parser.add_argument("--quick", action="store_true",
                        help="smaller probe sizes (CI smoke / pre-commit)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_simperf.json to merge 'before' "
                             "numbers from and regress against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail if figure6 wall-clock regresses more than "
                             "this fraction vs the baseline (default 0.30)")
    args = parser.parse_args(argv)

    record = run_suite(quick=args.quick)

    status = 0
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        record["baseline_before"] = baseline.get("before")
        base_probes = baseline.get("probes", {})
        base_wall = base_probes.get("figure6_wall", {}).get("seconds")
        new_wall = record["probes"].get("figure6_wall", {}).get("seconds")
        if base_wall and new_wall:
            ratio = new_wall / base_wall
            record["figure6_wall_vs_baseline"] = ratio
            if ratio > 1.0 + args.max_regression:
                print(f"FAIL: figure6 wall-clock {new_wall:.2f}s is "
                      f"{ratio:.2f}x the baseline {base_wall:.2f}s "
                      f"(limit {1.0 + args.max_regression:.2f}x)")
                status = 1

    text = json.dumps(record, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    print(text)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
