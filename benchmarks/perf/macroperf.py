"""Macro-workload sweep: application-shaped traffic at 8-512 ranks.

Runs the two macro-workloads of the unified registry
(:mod:`repro.workloads`) through the batch runner's ``workload`` job
kind (parallel across workers, content-addressed cache):

- ``ml_training`` — per-step model bcast + bucketed gradient
  allreduces, swept flat (``default``) vs hierarchical (``hier``)
  collectives.  The acceptance criterion mirrors ``collperf.py``'s,
  now on application traffic: **hier must beat flat at every rank
  count >= 64**.
- ``cfd_halo`` — jagged halo exchanges on the cart and graph
  topologies over the InfiniBand fabric (eager/rendezvous/RDMA mix).

All numbers are *virtual* nanoseconds from the deterministic
simulator, so the committed ``BENCH_macro.json`` baseline comparison
is exact: any drift means the workloads' traffic itself changed, not
the machine the benchmark ran on.

Usage::

    python benchmarks/perf/macroperf.py --output BENCH_macro.json
    python benchmarks/perf/macroperf.py --quick --baseline BENCH_macro.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runner import JobSpec, Runner  # noqa: E402

RANKS = (8, 64, 256, 512)
QUICK_RANKS = (8, 64)
ML_ALGORITHMS = ("default", "hier")
CFD_TOPOLOGIES = ("cart", "graph")


def _ppn(ranks: int) -> int:
    """Processes per node: 2 at tiny scale, 8 on the big SMP worlds."""
    return 2 if ranks < 64 else (4 if ranks < 256 else 8)


def sweep_specs(ranks: tuple[int, ...]) -> list[JobSpec]:
    specs = []
    for n in ranks:
        for algorithm in ML_ALGORITHMS:
            specs.append(JobSpec(
                kind="workload", seed=0,
                params={"workload": "ml_training", "metrics": True,
                        "ranks": n, "processes_per_node": _ppn(n),
                        "algorithm": algorithm},
                label=f"ml_training/{algorithm}@{n}"))
        for topology in CFD_TOPOLOGIES:
            specs.append(JobSpec(
                kind="workload", seed=0,
                params={"workload": "cfd_halo", "metrics": True,
                        "ranks": n, "processes_per_node": _ppn(n),
                        "topology": topology},
                label=f"cfd_halo/{topology}@{n}"))
    return specs


def _variant(payload: dict) -> str:
    params = payload["params"]
    return params.get("algorithm") or params.get("topology")


def run_sweep(ranks: tuple[int, ...], workers: int,
              cache: str | None) -> list[dict]:
    runner = Runner(workers=workers, cache=cache, out=print)
    results = runner.run(sweep_specs(ranks))
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"FAIL: {r.spec.display}: {r.error}")
        raise SystemExit(1)
    points = []
    for r in results:
        payload = r.payload
        points.append({
            "workload": payload["workload"],
            "variant": _variant(payload),
            "ranks": payload["params"]["ranks"],
            "time_ns": payload["time_ns"],
            "result_digest": payload["result_digest"],
            "metrics": payload["metrics"],
        })
    return points


def check_hier_wins(points: list[dict]) -> list[str]:
    """Acceptance: hier beats flat on ml_training at every ranks >= 64."""
    by_key = {(p["ranks"], p["variant"]): p["time_ns"] for p in points
              if p["workload"] == "ml_training"}
    problems = []
    for n in sorted({p["ranks"] for p in points}):
        if n < 64:
            continue
        default = by_key.get((n, "default"))
        hier = by_key.get((n, "hier"))
        if default is None or hier is None:
            continue
        if hier >= default:
            problems.append(
                f"ml_training with hier collectives ({hier:.0f} ns) does "
                f"not beat flat ({default:.0f} ns) at {n} ranks")
    return problems


def check_baseline(points: list[dict], baseline: dict) -> list[str]:
    """Virtual times and digests are deterministic — compare exactly."""
    base = {(p["workload"], p["variant"], p["ranks"]): p
            for p in baseline.get("points", [])}
    problems = []
    for p in points:
        key = (p["workload"], p["variant"], p["ranks"])
        want = base.get(key)
        if want is None:
            continue
        if want["time_ns"] != p["time_ns"]:
            problems.append(
                f"{p['workload']}/{p['variant']}@{p['ranks']}: "
                f"{p['time_ns']} ns differs from baseline "
                f"{want['time_ns']} ns (virtual time is deterministic; "
                f"the workload's traffic changed)")
        elif want["result_digest"] != p["result_digest"]:
            problems.append(
                f"{p['workload']}/{p['variant']}@{p['ranks']}: result "
                f"digest changed while virtual time did not")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default=None,
                        help="write the record as JSON to this path")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_macro.json to compare "
                             "against (exact virtual-time match)")
    parser.add_argument("--quick", action="store_true",
                        help="8/64 ranks only (CI smoke)")
    parser.add_argument("--workers", type=int, default=4,
                        help="runner worker processes (default 4)")
    parser.add_argument("--cache", default=None,
                        help="content-addressed result cache directory")
    args = parser.parse_args(argv)

    ranks = QUICK_RANKS if args.quick else RANKS
    points = run_sweep(ranks, workers=args.workers, cache=args.cache)

    record = {
        "schema": "macroperf/1",
        "python": platform.python_version(),
        "quick": args.quick,
        "points": points,
    }

    problems = check_hier_wins(points)
    if args.baseline:
        problems += check_baseline(
            points, json.loads(Path(args.baseline).read_text()))

    for workload, variants in (("ml_training", ML_ALGORITHMS),
                               ("cfd_halo", CFD_TOPOLOGIES)):
        for n in sorted({p["ranks"] for p in points}):
            row = {p["variant"]: p["time_ns"] for p in points
                   if p["workload"] == workload and p["ranks"] == n}
            if not row:
                continue
            first = row.get(variants[0])
            summary = "  ".join(
                f"{variant}={row[variant] / 1e6:.3f}ms"
                + (f" ({first / row[variant]:.2f}x)"
                   if first and variant != variants[0] else "")
                for variant in variants if variant in row)
            print(f"{workload} @ {n:4d} ranks: {summary}")

    text = json.dumps(record, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("macroperf: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
