"""Collective-algorithm comparison on the simulated networks.

Beyond the paper: the MPICH algorithm zoo measured on the paper's
hardware models.  The interesting interaction with ch_mad is that
algorithm rankings *depend on the network* — high-latency TCP punishes
message count (favouring trees/doubling), while SCI's low latency
narrows the gap.
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.cluster import MPIWorld
from repro.mpi.algorithms import (
    ALLREDUCE_ALGORITHMS,
    BCAST_ALGORITHMS,
)
from repro.mpi.reduce_ops import SUM
from repro.sim.coroutines import now
from tests.helpers import linear_cluster

NRANKS = 16


def _time_collective(network, body_factory, nranks=NRANKS):
    """Max over ranks of the time spent inside the collective."""
    world = MPIWorld(linear_cluster(nranks, networks=(network,)))

    def program(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        t0 = yield now()
        yield from body_factory(comm)
        yield from comm.barrier()
        t1 = yield now()
        return t1 - t0

    return max(world.run(program)) / 1000  # us


def test_bcast_algorithms(benchmark):
    def run():
        rows = []
        for network in ("sisci", "tcp"):
            timings = {}
            for name, algorithm in BCAST_ALGORITHMS.items():
                def body(comm, algorithm=algorithm):
                    obj = b"\x00" if comm.rank == 0 else None
                    yield from algorithm(comm, obj, 0)
                timings[name] = _time_collective(network, body)
            rows.append((network, timings["linear"], timings["binomial"],
                         timings["linear"] / timings["binomial"]))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["network", "linear (us)", "binomial (us)", "speedup"],
        rows, title=f"bcast algorithms, {NRANKS} ranks, 1 B payload"))
    by_net = {r[0]: r for r in rows}
    # At 16 ranks the tree's log(p) critical path beats the root's
    # serialized (p-1) sends on both networks — but by network-dependent
    # margins (SCI ~1.3x, TCP ~1.2x here), which is exactly why MPICH
    # selects algorithms from per-device parameters.
    assert by_net["tcp"][3] > 1.1, "binomial must win on TCP at 16 ranks"
    assert by_net["sisci"][3] > 1.1, "binomial must win on SCI at 16 ranks"


def test_allreduce_algorithms(benchmark):
    def run():
        rows = []
        for network in ("sisci", "tcp"):
            timings = {}
            for name, algorithm in ALLREDUCE_ALGORITHMS.items():
                def body(comm, algorithm=algorithm):
                    yield from algorithm(comm, comm.rank, SUM)
                timings[name] = _time_collective(network, body)
            rows.append((network, timings["reduce_bcast"],
                         timings["recursive_doubling"],
                         timings["reduce_bcast"]
                         / timings["recursive_doubling"]))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["network", "reduce+bcast (us)", "recursive dbl (us)", "speedup"],
        rows, title=f"allreduce algorithms, {NRANKS} ranks"))
    for network, _, _, speedup in rows:
        # Recursive doubling halves the critical path (log p vs 2 log p).
        assert speedup > 1.2, f"recursive doubling must win on {network}"
