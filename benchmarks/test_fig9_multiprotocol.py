"""Figure 9 — the cost of the multi-protocol feature.

All traffic rides SCI; the second configuration additionally opens (and
polls) a TCP channel.  Paper shape statements (§5.5): the extra polling
thread costs something, the loss is "directly linked with the secondary
protocol supported", but "in any cases, the gap remains limited and the
performance ... is very close to the device performance in mono-protocol
mode".
"""

from conftest import run_once

from repro.bench.figures import figure9_multiprotocol


def test_figure9_sci_plus_tcp_polling(benchmark):
    figure = run_once(benchmark, figure9_multiprotocol)
    print()
    print(figure.render())
    alone = figure.series["SCI_thread_only"]
    both = figure.series["SCI_thread_+_TCP_thread"]

    # The TCP polling thread never helps.
    slower = sum(
        1 for size in alone.sizes
        if both.at(size)[0] >= alone.at(size)[0] * 0.999
    )
    assert slower >= len(alone.sizes) - 1, "interference should hurt (or tie)"

    # There is a measurable gap at small sizes...
    gap_4 = both.at(4)[0] - alone.at(4)[0]
    assert gap_4 > 0.3, f"expected visible interference, gap={gap_4:.2f} us"

    # ...but it remains limited: within 35 % at small sizes, and the
    # large-message bandwidths nearly coincide.
    assert both.at(4)[0] < alone.at(4)[0] * 1.35
    for size in (262144, 1024 * 1024):
        ratio = both.at(size)[1] / alone.at(size)[1]
        assert ratio > 0.90, f"large-message bandwidth ratio {ratio:.2f}"


def test_fig9_interference_is_polling_cpu(benchmark):
    """Attribute the Figure 9 gap: the TCP polling thread's CPU share.

    Per-task CPU accounting shows the secondary poller burning select()
    cycles while carrying zero traffic — the *mechanism* behind the gap.
    """

    def run():
        from repro.cluster import MPIWorld, two_node_cluster
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp"),
                                          active_network="sisci"))

        def program(mpi):
            comm = mpi.comm_world
            for _ in range(40):
                if comm.rank == 0:
                    yield from comm.send(b"", dest=1, tag=1, size=256)
                    yield from comm.recv(source=1, tag=1)
                else:
                    yield from comm.recv(source=0, tag=1)
                    yield from comm.send(b"", dest=0, tag=1, size=256)

        world.run(program)
        cpu = world.envs[1].process.runtime.cpu
        shares = {}
        for task in cpu.tasks():
            if ".poll." in task.name or task.name.endswith(".main#1"):
                shares[task.name.split(".", 1)[1]] = task.cpu_time
        total_busy = cpu.busy_time
        return shares, total_busy, world.engine.now

    shares, total_busy, elapsed = run_once(benchmark, run)
    tcp_time = next(v for k, v in shares.items() if "tcp" in k)
    sci_time = next(v for k, v in shares.items() if "sisci" in k)
    print()
    print(f"rank1 CPU attribution over {elapsed / 1000:.0f} us: "
          + ", ".join(f"{k}={v / 1000:.1f} us" for k, v in shares.items()))
    # The idle TCP poller burns real CPU despite carrying no traffic...
    assert tcp_time > 0.10 * elapsed, "TCP poller share unexpectedly small"
    # ...more than the SCI poller that handles all 80 messages.
    assert tcp_time > 1.3 * sci_time
