"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation: each one toggles a design
decision of §4.2 and measures its cost, demonstrating *why* the paper's
choice matters.

1. **Header/body split** (§4.2.2): ship eager bodies inside a padded
   MPID_PKT_MAX_DATA_SIZE buffer instead of the split — "a lot of null
   data will be sent too, thus wasting most of Madeleine capabilities".
2. **Single elected threshold** (§4.2.2): the ADI's one-integer
   limitation forces SCI's 8 KB onto TCP, whose natural switch point is
   64 KB — mid-size TCP messages pay a premature rendezvous.
3. **Gateway forwarding** (§6 future work, implemented): the overhead of
   crossing a gateway versus a direct (slower) network.
"""

from conftest import run_once

from repro.bench.pingpong import custom_pingpong
from repro.bench.report import format_table
from repro.cluster import ClusterConfig, NodeSpec


def _two_nodes(networks, **kwargs):
    nodes = [NodeSpec(f"n{i}", networks=tuple(networks)) for i in range(2)]
    return ClusterConfig(nodes=nodes, device="ch_mad", **kwargs)


def test_padded_short_packet_ablation(benchmark):
    """The §4.2.2 split vs the naive padded short packet."""

    def run():
        rows = []
        for size in (4, 256, 4096):
            split = custom_pingpong(
                _two_nodes(("sisci", "tcp"),
                           channel_preference=("sisci", "tcp")),
                size, label="split")
            padded = custom_pingpong(
                _two_nodes(("sisci", "tcp"),
                           channel_preference=("sisci", "tcp"),
                           padded_short_packets=True),
                size, label="padded")
            rows.append((size, split.latency_us, padded.latency_us,
                         padded.latency_us / split.latency_us))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["size (B)", "split (us)", "padded (us)", "ratio"],
                       rows, title="Ablation 1: header/body split (SCI+TCP, "
                                   "traffic on SCI, 64 KB pad)"))
    for size, split_us, padded_us, ratio in rows:
        # With TCP present the padded short buffer is 64 KB: a 4-byte
        # message drags ~64 KB of null data across SCI.
        assert ratio > 5.0, f"padding should be catastrophic at {size} B"


def test_single_threshold_election_ablation(benchmark):
    """Elected 8 KB threshold vs per-network thresholds, traffic on TCP.

    SCI's presence elects 8 KB for the whole device; TCP's natural value
    is 64 KB.  Messages in 8-64 KB then rendezvous prematurely on TCP,
    paying two extra ~130 us control messages.
    """

    def run():
        rows = []
        for size in (16 * 1024, 32 * 1024):
            elected = custom_pingpong(
                _two_nodes(("sisci", "tcp"),
                           channel_preference=("tcp", "sisci")),
                size, label="elected")
            per_net = custom_pingpong(
                _two_nodes(("sisci", "tcp"),
                           channel_preference=("tcp", "sisci"),
                           per_network_thresholds=True),
                size, label="per-network")
            rows.append((size, elected.latency_us, per_net.latency_us,
                         elected.latency_us / per_net.latency_us))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["size (B)", "elected 8K (us)", "per-net 64K (us)", "penalty"],
        rows, title="Ablation 2: single elected threshold (traffic on TCP)"))
    # Clear penalty at 16 KB (two extra ~130 us control messages against
    # a ~1.8 ms transfer), shrinking as the wire time dominates.
    assert rows[0][3] > 1.05, f"16 KB penalty too small: {rows[0][3]:.3f}"
    assert rows[1][3] > 1.005, f"32 KB penalty vanished: {rows[1][3]:.3f}"
    assert rows[0][3] > rows[1][3]


def test_gateway_forwarding_overhead(benchmark):
    """Forwarding (§6, implemented) vs a direct slow network.

    Three configurations for an SCI island talking to a Myrinet island:
    (a) direct TCP everywhere (the paper's only option),
    (b) no TCP, gateway node forwarding SCI <-> Myrinet (the extension),
    """

    def run():
        tcp_config = ClusterConfig(nodes=[
            NodeSpec("sci0", networks=("tcp", "sisci")),
            NodeSpec("gw", networks=("tcp", "sisci", "bip")),
            NodeSpec("myri0", networks=("tcp", "bip")),
        ], device="ch_mad")
        fwd_config = ClusterConfig(nodes=[
            NodeSpec("sci0", networks=("sisci",)),
            NodeSpec("gw", networks=("sisci", "bip")),
            NodeSpec("myri0", networks=("bip",)),
        ], device="ch_mad", forwarding=True)
        rows = []
        for size in (4, 4096, 256 * 1024):
            direct = custom_pingpong(tcp_config, size, ranks=(0, 2),
                                     label="tcp-direct")
            forwarded = custom_pingpong(fwd_config, size, ranks=(0, 2),
                                        label="gateway")
            rows.append((size, direct.latency_us, forwarded.latency_us,
                         direct.bandwidth_mb_s, forwarded.bandwidth_mb_s))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["size (B)", "TCP direct (us)", "gateway (us)",
         "TCP (MB/s)", "gateway (MB/s)"],
        rows, title="Ablation 3: gateway forwarding vs direct TCP "
                    "(SCI island <-> Myrinet island)"))
    # Small messages: two fast hops beat one TCP hop handily.
    assert rows[0][2] < rows[0][1] * 0.6
    # Large messages: store-and-forward over fast networks still crushes
    # Fast-Ethernet bandwidth.
    assert rows[2][4] > 3 * rows[2][3]


def test_polling_cost_sensitivity(benchmark):
    """How strongly does the Figure 9 interference depend on the cost of
    the secondary protocol's poll primitive?

    The paper: "the performance gap is directly linked with the secondary
    protocol supported (it depends on the Madeleine polling function
    implemented for a particular protocol)".  We sweep the TCP select
    cost and measure the mean SCI latency penalty.
    """
    import dataclasses

    from repro.networks.tcp import TCP_FAST_ETHERNET

    def run():
        baseline = custom_pingpong(
            _two_nodes(("sisci",)), 256, reps=9, label="sci-only")
        rows = []
        for select_us in (2, 6, 12):
            params = dataclasses.replace(
                TCP_FAST_ETHERNET,
                poll_cost=select_us * 1000,
            )
            config = _two_nodes(("sisci", "tcp"),
                                channel_preference=("sisci", "tcp"),
                                protocol_params={"tcp": params})
            result = custom_pingpong(config, 256, reps=9,
                                     label=f"select={select_us}us")
            gap = (result.mean_one_way_ns - baseline.mean_one_way_ns) / 1000
            rows.append((select_us, baseline.mean_one_way_ns / 1000,
                         result.mean_one_way_ns / 1000, gap))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["select cost (us)", "SCI only (us)", "SCI+TCP (us)", "gap (us)"],
        rows, title="Ablation 4: interference vs secondary poll cost "
                    "(256 B messages, mean latency)"))
    gaps = [gap for _, _, _, gap in rows]
    # Interference exists and grows with the secondary poll cost.
    assert gaps[0] >= -0.5
    assert gaps[-1] > gaps[0], "gap should grow with select cost"
    assert gaps[-1] > 1.0, "a 12 us select must visibly interfere"
