"""Table 2 — ch_mad performance summary.

Paper anchors (0 B latency / 4 B latency / 8 MB bandwidth):
TCP 130 / 148.7 us / 11.2 MB/s; BIP 16.9 / 18.9 us / 115 MB/s;
SISCI 13 / 20 us / 82.5 MB/s.
"""

from conftest import run_once

from repro.bench.figures import TABLE2_PAPER, table2_checks
from repro.bench.report import format_paper_checks


def test_table2_ch_mad_summary(benchmark):
    checks = run_once(benchmark, table2_checks)
    print()
    print(format_paper_checks(checks, "Table 2: ch_mad summary"))
    by_name = {c.quantity: c for c in checks}

    # 4-byte latencies and bandwidths are the headline anchors.
    for protocol in TABLE2_PAPER:
        assert by_name[f"{protocol}.lat4_us"].ok
        assert by_name[f"{protocol}.bandwidth_mb_s"].ok

    # 0-byte messages skip the body pack, so they are strictly cheaper;
    # the gap approximates the extra pack/unpack pair per network.
    for protocol in TABLE2_PAPER:
        lat0 = by_name[f"{protocol}.lat0_us"].measured
        lat4 = by_name[f"{protocol}.lat4_us"].measured
        assert lat0 < lat4

    # ch_mad never beats raw Madeleine (Table 1) — it adds overhead.
    from repro.bench.figures import TABLE1_PAPER
    assert by_name["sisci.lat4_us"].measured > TABLE1_PAPER["sisci"]["latency_us"]
    assert by_name["bip.lat4_us"].measured > TABLE1_PAPER["bip"]["latency_us"]
    assert by_name["tcp.lat4_us"].measured > TABLE1_PAPER["tcp"]["latency_us"]
