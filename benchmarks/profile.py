"""Profile a paper-figure entry point under cProfile.

The perf work in DESIGN.md ("Simulator performance") started from exactly
this view: run one figure end-to-end, sort by cumulative time, and look
at what the event loop spends its life on.  Keep using it before touching
the hot path — the top-20 table is the evidence a change needs.

Usage::

    python benchmarks/profile.py figure6_tcp
    python benchmarks/profile.py figure9_multiprotocol --top 40
    python benchmarks/profile.py table2_summary --sort tottime
    python benchmarks/profile.py --list
"""

from __future__ import annotations

import sys
from pathlib import Path

# When run as a script, Python puts this directory first on sys.path, where
# this very file shadows the stdlib ``profile`` module that cProfile
# imports.  Drop it — nothing here imports from benchmarks/.
_HERE = Path(__file__).resolve().parent
sys.path[:] = [p for p in sys.path if Path(p or ".").resolve() != _HERE]
sys.modules.pop("profile", None)

import argparse  # noqa: E402
import cProfile  # noqa: E402
import pstats  # noqa: E402
import time  # noqa: E402

REPO_ROOT = _HERE.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def _entry_points() -> dict:
    """Zero-argument callables exported by repro.bench.figures."""
    from repro.bench import figures

    points = {}
    for name in dir(figures):
        if name.startswith(("figure", "table")):
            fn = getattr(figures, name)
            if callable(fn):
                points[name] = fn
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("entry", nargs="?", default="figure6_tcp",
                        help="entry point in repro.bench.figures "
                             "(default: figure6_tcp)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the stats table to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--dump", default=None,
                        help="also write raw pstats data to this path "
                             "(inspect later with pstats or snakeviz)")
    parser.add_argument("--list", action="store_true",
                        help="list available entry points and exit")
    args = parser.parse_args(argv)

    points = _entry_points()
    if args.list:
        for name in sorted(points):
            print(name)
        return 0
    if args.entry not in points:
        parser.error(f"unknown entry point {args.entry!r}; "
                     f"choose from: {', '.join(sorted(points))}")

    fn = points[args.entry]
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    fn()
    profiler.disable()
    elapsed = time.perf_counter() - start

    print(f"{args.entry}: {elapsed:.3f}s wall-clock\n")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
