"""Table 1 — raw Madeleine latency and bandwidth per protocol.

Paper anchors: TCP 121 us / 11.2 MB/s; BIP 9.2 us / 122 MB/s;
SISCI 4.4 us / 82.6 MB/s (8 MB messages, 1 MB = 10^6 B).
"""

from conftest import run_once

from repro.bench.figures import TABLE1_PAPER, table1_checks
from repro.bench.report import format_paper_checks


def test_table1_raw_madeleine(benchmark):
    checks = run_once(benchmark, table1_checks)
    print()
    print(format_paper_checks(checks, "Table 1: raw Madeleine"))
    by_name = {c.quantity: c for c in checks}

    # Absolute anchors within tolerance (these calibrate everything else).
    for quantity, check in by_name.items():
        assert check.ok, f"{quantity}: paper {check.paper}, measured {check.measured:.2f}"

    # Shape: the protocol ordering must hold.
    lat = {p: by_name[f"{p}.latency_us"].measured for p in TABLE1_PAPER}
    bw = {p: by_name[f"{p}.bandwidth_mb_s"].measured for p in TABLE1_PAPER}
    assert lat["sisci"] < lat["bip"] < lat["tcp"]
    assert bw["tcp"] < bw["sisci"] < bw["bip"]
