"""Figure 7 — SISCI/SCI: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine.

Paper shape statements (§5.3):
 (a) the native SCI MPIs beat ch_mad on small-message latency (they sit
     directly on the hardware); ch_mad ~ 20 us vs raw Madeleine 4.5 us,
     a ~15 us overhead (6.5 pack pair + 8.5 handling).
 (b) the 8 KB eager/rendezvous switch point is visible; past 16 KB the
     zero-copy rendezvous lets ch_mad outperform both native MPIs with a
     sustained 80+ MB/s.
"""

from conftest import run_once

from repro.bench.figures import figure7_sci


def test_figure7_sci(benchmark):
    figure = run_once(benchmark, figure7_sci)
    print()
    print(figure.render())
    ch_mad = figure.series["ch_mad"]
    raw = figure.series["raw_Madeleine"]
    scampi = figure.series["ScaMPI"]
    sci_mpich = figure.series["SCI-MPICH"]

    # (a) natives win at small sizes; ch_mad's handicap is bounded.
    for size in (1, 4, 16, 64, 256, 1024):
        assert scampi.at(size)[0] < ch_mad.at(size)[0]
        assert sci_mpich.at(size)[0] < ch_mad.at(size)[0]

    # (a) ch_mad ~ raw + ~15 us at 4 B.
    overhead = ch_mad.at(4)[0] - raw.at(4)[0]
    assert 11.0 < overhead < 20.0, f"ch_mad-over-raw = {overhead:.1f} us"

    # (b) the 8 KB switch point: a visible bandwidth jump 8 KB -> 16 KB,
    # much larger than the preceding eager-slope increment.
    jump = ch_mad.at(16384)[1] - ch_mad.at(8192)[1]
    prev = ch_mad.at(8192)[1] - ch_mad.at(4096)[1]
    assert jump > 2 * max(prev, 1.0), "switch point not visible at 8 KB"

    # (b) ch_mad outperforms both natives from 16 KB upwards.
    for size in (16384, 65536, 262144, 1024 * 1024):
        assert ch_mad.at(size)[1] > scampi.at(size)[1]
        assert ch_mad.at(size)[1] > sci_mpich.at(size)[1]

    # (b) sustained 80+ MB/s for large messages.
    assert ch_mad.at(1024 * 1024)[1] > 80.0

    # (b) below the switch point ch_mad is a "valuable alternative" but
    # not dominant: at least one native matches or beats it at 4 KB.
    assert min(scampi.at(4096)[1], sci_mpich.at(4096)[1]) < ch_mad.at(16384)[1]
