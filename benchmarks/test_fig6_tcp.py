"""Figure 6 — TCP/Fast-Ethernet: ch_mad vs ch_p4 vs raw Madeleine.

Paper shape statements (§5.2):
 (a) ch_mad beats ch_p4 for messages not exceeding ~256 B; the gap stays
     limited for longer messages; ch_mad tracks raw Madeleine + ~28 us
     (21 us extra pack pair + ~7 us handling).
 (b) ch_p4 hits a ~10 MB/s ceiling for large messages while ch_mad keeps
     climbing past 11 MB/s, delivering ~100 % of raw Madeleine's
     bandwidth for long (rendezvous) messages.
"""

from conftest import run_once

from repro.bench.figures import figure6_tcp


def test_figure6_tcp(benchmark):
    figure = run_once(benchmark, figure6_tcp)
    print()
    print(figure.render())
    ch_mad = figure.series["ch_mad"]
    ch_p4 = figure.series["ch_p4"]
    raw = figure.series["raw_Madeleine"]

    # (a) ch_mad wins at small sizes.
    for size in (1, 4, 16, 64, 256):
        lat_mad, _ = ch_mad.at(size)
        lat_p4, _ = ch_p4.at(size)
        assert lat_mad < lat_p4, f"ch_mad must beat ch_p4 at {size} B"

    # (a) the gap stays limited (within 15 %) at 1 KB.
    lat_mad, _ = ch_mad.at(1024)
    lat_p4, _ = ch_p4.at(1024)
    assert abs(lat_p4 - lat_mad) / lat_mad < 0.15

    # (a) ch_mad ~ raw + 28 us at 4 B (21 pack + 7 handling).
    overhead = ch_mad.at(4)[0] - raw.at(4)[0]
    assert 20.0 < overhead < 36.0, f"ch_mad-over-raw = {overhead:.1f} us"

    # (b) ch_p4 ceiling ~10 MB/s; ch_mad exceeds 11 MB/s at 1 MB.
    assert ch_p4.at(1024 * 1024)[1] < 10.5
    assert ch_mad.at(1024 * 1024)[1] > 11.0

    # (b) bandwidths are similar (within 20 %) below the 64 KB switch.
    for size in (4096, 16384, 65536):
        bw_mad = ch_mad.at(size)[1]
        bw_p4 = ch_p4.at(size)[1]
        assert abs(bw_mad - bw_p4) / bw_mad < 0.20

    # (b) ch_mad delivers ~100 % of raw Madeleine bandwidth at 1 MB.
    assert ch_mad.at(1024 * 1024)[1] > 0.93 * raw.at(1024 * 1024)[1]
