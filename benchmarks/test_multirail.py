"""Multi-rail striping bench (paper §3.1's multiple-NICs capability).

Beyond the paper's evaluation: Madeleine claims support for several
adapters per protocol; this bench measures what channel striping buys on
DMA networks (BIP/Myrinet) — and what it does *not* buy on PIO networks
(SCI), where the sending CPU is the transfer engine and a second rail
cannot help a single sender.
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.madeleine import MadeleineSession
from repro.madeleine.striping import striped_recv, striped_send
from repro.units import bandwidth_mb_s

SIZE = 4_000_000


def _striped_time(protocol, rails):
    session = MadeleineSession()
    names = [protocol] + [f"{protocol}#{i}" for i in range(1, rails)]
    for name in names:
        session.add_fabric(name)
    p0 = session.add_process(networks=names)
    p1 = session.add_process(networks=names)
    channels = [session.new_channel(name, name) for name in names]
    ports0 = [p0.port(c) for c in channels]
    ports1 = [p1.port(c) for c in channels]

    def sender():
        yield from striped_send(ports0, 1, b"", SIZE)

    def receiver():
        yield from striped_recv(ports1, SIZE)

    p0.runtime.spawn(sender)
    p1.runtime.spawn(receiver)
    return session.run()


def test_striping_scales_on_dma_not_pio(benchmark):
    def run():
        rows = []
        for protocol in ("bip", "sisci"):
            one = _striped_time(protocol, 1)
            two = _striped_time(protocol, 2)
            rows.append((protocol,
                         bandwidth_mb_s(SIZE, one),
                         bandwidth_mb_s(SIZE, two),
                         one / two))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["network", "1 rail (MB/s)", "2 rails (MB/s)", "speedup"],
        rows, title=f"channel striping, {SIZE // 1_000_000} MB transfers"))
    by_net = {r[0]: r for r in rows}
    # DMA (Myrinet): the wire is the bottleneck; a second rail ~doubles it.
    assert by_net["bip"][3] > 1.7
    # PIO (SCI): the sending CPU is the bottleneck; a second rail is
    # nearly useless for a single sender.
    assert by_net["sisci"][3] < 1.25
