"""Figure 8 — BIP/Myrinet: ch_mad vs raw Madeleine vs MPI-GM vs MPICH-PM.

Paper shape statements (§5.4):
 (a) raw Madeleine ~9 us, ch_mad ~20 us (4.5 us pack pair + 6.5 us
     handling); ch_mad beats MPI-GM below 512 B and trails MPICH-PM by
     ~5 us; above ~512 B MPI-GM takes the latency lead (ch_mad pays
     BIP's 1 KB long-message handshake).
 (b) MPI-GM is "definitely outperformed" by both ch_mad and MPICH-PM;
     the ch_mad curve dips at 1 KB (BIP's doing); the eager/rendezvous
     switch sits around 7 KB; MPICH-PM leads below 4 KB and above
     256 KB, with rough parity in between.
"""

from conftest import run_once

from repro.bench.figures import figure8_myrinet


def test_figure8_myrinet(benchmark):
    figure = run_once(benchmark, figure8_myrinet)
    print()
    print(figure.render())
    ch_mad = figure.series["ch_mad"]
    raw = figure.series["raw_Madeleine"]
    gm = figure.series["MPI-GM"]
    pm = figure.series["MPICH-PM"]

    # (a) overhead over raw Madeleine ~11 us at 4 B.
    overhead = ch_mad.at(4)[0] - raw.at(4)[0]
    assert 7.0 < overhead < 16.0, f"ch_mad-over-raw = {overhead:.1f} us"

    # (a) ch_mad beats MPI-GM below 512 B...
    for size in (1, 4, 16, 64, 256):
        assert ch_mad.at(size)[0] < gm.at(size)[0]
    # ...but MPI-GM wins at 1 KB (the BIP long-message handshake bites).
    assert gm.at(1024)[0] < ch_mad.at(1024)[0]

    # (a) MPICH-PM is ~5 us ahead of ch_mad at small sizes.
    gap = ch_mad.at(4)[0] - pm.at(4)[0]
    assert 2.0 < gap < 10.0, f"PM gap = {gap:.1f} us"

    # (b) the 1 KB dip: the bandwidth growth 256 B -> 1 KB collapses
    # relative to the healthy growth just before it (BIP's long-message
    # handshake), then the curve recovers.
    healthy_growth = ch_mad.at(256)[1] / ch_mad.at(64)[1]
    dip_growth = ch_mad.at(1024)[1] / ch_mad.at(256)[1]
    assert dip_growth < 0.75 * healthy_growth, (
        f"no 1 KB dip: growth {dip_growth:.2f} vs healthy {healthy_growth:.2f}"
    )
    assert ch_mad.at(4096)[1] > 1.5 * ch_mad.at(1024)[1], "must recover"

    # (b) MPI-GM definitely outperformed at large sizes by both.
    for size in (65536, 262144, 1024 * 1024):
        assert ch_mad.at(size)[1] > gm.at(size)[1]
        assert pm.at(size)[1] > gm.at(size)[1]

    # (b) MPICH-PM ahead below 4 KB and at/above 256 KB...
    assert pm.at(1024)[1] > ch_mad.at(1024)[1]
    assert pm.at(1024 * 1024)[1] > ch_mad.at(1024 * 1024)[1]
    # ...and roughly equal (within 20 %) in the 16-64 KB middle range.
    for size in (16384, 65536):
        ratio = ch_mad.at(size)[1] / pm.at(size)[1]
        assert 0.8 < ratio < 1.25, f"mid-range ratio {ratio:.2f} at {size}"
