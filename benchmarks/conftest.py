"""Shared benchmark configuration.

Every benchmark runs its (deterministic) simulation exactly once via
``benchmark.pedantic(..., rounds=1)``: the interesting output is the
*simulated* metric (latencies/bandwidths inside the virtual cluster),
which repetition cannot change; pytest-benchmark's wall-clock number
then reports how long the simulation itself takes to execute.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` once under the benchmark fixture and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
