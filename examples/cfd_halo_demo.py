#!/usr/bin/env python
"""CFD halo exchange across the protocol switch points.

The ``cfd_halo`` macro-workload (see
:mod:`repro.workloads.cfd_halo`) models a partitioned mesh solver:
per-iteration stencil compute, one jagged halo message per face to each
topological neighbour, and periodic residual allreduces.  Face sizes
are drawn log-uniformly, so a single iteration mixes eager, rendezvous
and — on the InfiniBand fabric — rendezvous-over-RDMA traffic.

This demo runs the same mesh on the periodic 2-D process grid
(``create_cart``/``shift``, the heat2d layering) and on an irregular
graph topology (``create_graph``), on both the SCI and IB fabrics, and
shows which wire protocol carried the halos.  Determinism is asserted
the way every simulator claim is: same seed, same digest.

Run: python examples/cfd_halo_demo.py
"""

import repro.workloads as workloads
from repro.workloads.cfd_halo import face_sizes, halo_graph

SEED = 0
SCALE = {"ranks": 16, "processes_per_node": 4}


def main() -> None:
    adjacency = halo_graph(SEED, SCALE["ranks"])
    edges = [(a, b) for a, nbrs in adjacency.items() for b in nbrs]
    sizes = face_sizes(SEED, edges, 512, 98_304)
    small = sum(1 for s in sizes.values() if s < 8192)
    big = sum(1 for s in sizes.values() if s > 16384)
    print(f"graph mesh: {len(sizes)} directed faces "
          f"({small} eager-sized <8KiB, {big} RDMA-sized >16KiB)")

    for topology in ("cart", "graph"):
        for network in ("sisci", "ib"):
            outcome = workloads.run(
                "cfd_halo", seed=SEED,
                params={**SCALE, "topology": topology, "network": network},
                check=True, instrumentation=True)
            assert not outcome.violations, outcome.violations
            rdma = outcome.metrics.get("rdma.writes", 0)
            print(f"  {topology:5s} on {network:5s}: "
                  f"t={outcome.time_ns/1e6:7.3f} ms  "
                  f"bytes={outcome.metrics['mad.bytes']:>9}  "
                  f"rdma.writes={rdma}")
            if network == "ib":
                assert rdma > 0, "big faces on IB must take the RDMA path"
            else:
                assert rdma == 0

    # Same seed, same digest — on a fixed topology/fabric the halo
    # exchange is a pure function of the configuration.
    first = workloads.run("cfd_halo", seed=3, params=SCALE)
    again = workloads.run("cfd_halo", seed=3, params=SCALE)
    assert first.digest == again.digest
    print(f"deterministic: seed 3 reproduces digest {first.digest[:16]}…")


if __name__ == "__main__":
    main()
