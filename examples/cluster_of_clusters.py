#!/usr/bin/env python
"""Tour of the multi-protocol machinery on a cluster of clusters.

Demonstrates, on a 2xSCI + 2xMyrinet + everywhere-Ethernet meta-cluster:

1. which Madeleine channel ch_mad elects for every process pair;
2. the single elected eager/rendezvous switch point (§4.2.2);
3. a measured pairwise latency/bandwidth matrix — fast inside islands,
   TCP across them, all within one MPI session;
4. the polling-thread population of §4.2.3.

Run:  python examples/cluster_of_clusters.py
"""

from repro.bench.report import format_table
from repro.cluster import MPIWorld, cluster_of_clusters
from repro.sim.coroutines import now


def survey(mpi):
    """Each rank reports its channel choices and thread population."""
    device = mpi.inter_device
    choices = {}
    for other in range(mpi.size):
        if other != mpi.rank:
            choices[other] = device.select_port(other).channel.protocol
    pollers = sorted(p.port.channel.protocol for p in device._pollers)
    return {
        "choices": choices,
        "threshold": device.eager_threshold,
        "pollers": pollers,
    }
    yield  # pragma: no cover


def pairwise_pingpong(mpi, pairs, size, reps=3):
    comm = mpi.comm_world
    timings = {}
    for a, b in pairs:
        yield from comm.barrier()
        if comm.rank == a:
            best = None
            for _ in range(reps):
                t0 = yield now()
                yield from comm.send(b"", dest=b, tag=1, size=size)
                yield from comm.recv(source=b, tag=1, size=size)
                t1 = yield now()
                best = t1 - t0 if best is None else min(best, t1 - t0)
            timings[(a, b)] = best / 2
        elif comm.rank == b:
            for _ in range(reps):
                yield from comm.recv(source=a, tag=1, size=size)
                yield from comm.send(b"", dest=a, tag=1, size=size)
    return timings


def main():
    config = cluster_of_clusters(sci_nodes=2, myrinet_nodes=2)
    names = [node.name for node in config.nodes]

    world = MPIWorld(config)
    surveys = world.run(survey)

    print("node -> network boards:")
    for node in config.nodes:
        print(f"  {node.name}: {', '.join(node.networks)}")

    print("\nch_mad channel election per pair (rank 0's view shown):")
    rows = [(f"rank0 ({names[0]}) -> rank{o} ({names[o]})", proto)
            for o, proto in sorted(surveys[0]["choices"].items())]
    print(format_table(["pair", "channel"], rows))

    print(f"\nelected eager/rendezvous switch point: "
          f"{surveys[0]['threshold']} bytes "
          f"(SCI present => SCI's 8 KB wins, §4.2.2)")
    print(f"polling threads on rank 0: {surveys[0]['pollers']} "
          f"+ 1 main thread (§4.2.3)")

    pairs = [(0, 1), (2, 3), (0, 2)]
    labels = {(0, 1): "SCI island (sci0-sci1)",
              (2, 3): "Myrinet island (myri0-myri1)",
              (0, 2): "across islands (sci0-myri0)"}
    for size in (4, 64 * 1024):
        world = MPIWorld(cluster_of_clusters(sci_nodes=2, myrinet_nodes=2))
        timings = world.run(
            lambda mpi, pairs=pairs, size=size:
                pairwise_pingpong(mpi, pairs, size)
        )
        merged = {}
        for t in timings:
            merged.update(t or {})
        rows = []
        for pair in pairs:
            one_way_us = merged[pair] / 1000
            bw = (size / 1e6) / (merged[pair] / 1e9) if size else 0.0
            rows.append((labels[pair], f"{one_way_us:.1f}", f"{bw:.1f}"))
        print()
        print(format_table(["route", "one-way (us)", "MB/s"], rows,
                           title=f"pairwise ping-pong, {size} B payloads"))

    print("\nEvery pair communicates in one MPI session; the fast networks "
          "are used at\nfull speed inside the islands while TCP only carries "
          "the island crossing —\nexactly the capability the paper adds "
          "over single-device MPICH builds.")


if __name__ == "__main__":
    main()
