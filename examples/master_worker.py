#!/usr/bin/env python
"""Master/worker task farm with dynamic load balancing.

The classic ANY_SOURCE idiom: a master hands out work units, workers
return results tagged with their identity, and faster networks simply
complete more tasks — run on the heterogeneous meta-cluster, the SCI
workers out-earn the TCP-reachable Myrinet workers for small tasks
because their round-trips are cheaper.

Demonstrates: MPI_ANY_SOURCE receives, tag-based protocol (WORK/RESULT/
STOP), probe-driven masters, and per-network throughput effects.

Run:  python examples/master_worker.py
"""

import numpy as np

from repro.cluster import MPIWorld, cluster_of_clusters
from repro.mpi.constants import ANY_SOURCE

TAG_WORK = 1
TAG_RESULT = 2
TAG_STOP = 3

NTASKS = 60
TASK_BYTES = 2048


def make_tasks():
    rng = np.random.default_rng(4016)  # the report number
    return [rng.standard_normal(TASK_BYTES // 8) for _ in range(NTASKS)]


def program(mpi):
    comm = mpi.comm_world
    if comm.rank == 0:
        # ------------------------------------------------ master ----------
        tasks = make_tasks()
        results = {}
        completed_by = {}
        next_task = 0
        outstanding = 0
        # Prime every worker with one task.
        for worker in range(1, comm.size):
            if next_task < len(tasks):
                yield from comm.send((next_task, tasks[next_task]),
                                     dest=worker, tag=TAG_WORK)
                next_task += 1
                outstanding += 1
        # Hand out the rest as results come back, from whoever is ready.
        while outstanding:
            (task_id, value), status = yield from comm.recv(
                source=ANY_SOURCE, tag=TAG_RESULT)
            results[task_id] = value
            completed_by.setdefault(status.source, 0)
            completed_by[status.source] += 1
            outstanding -= 1
            if next_task < len(tasks):
                yield from comm.send((next_task, tasks[next_task]),
                                     dest=status.source, tag=TAG_WORK)
                next_task += 1
                outstanding += 1
        for worker in range(1, comm.size):
            yield from comm.send(None, dest=worker, tag=TAG_STOP)
        return results, completed_by
    # ---------------------------------------------------- worker ----------
    done = 0
    while True:
        # Either a work unit or a stop marker may arrive: probe the tag.
        status = yield from comm.probe(source=0)
        if status.tag == TAG_STOP:
            yield from comm.recv(source=0, tag=TAG_STOP)
            return done
        (task_id, payload), _ = yield from comm.recv(source=0, tag=TAG_WORK)
        value = float(np.sum(payload ** 2))  # the "work"
        yield from comm.send((task_id, value), dest=0, tag=TAG_RESULT)
        done += 1


def main():
    # Rank 0 (master) on an SCI node; workers on both islands.
    config = cluster_of_clusters(sci_nodes=2, myrinet_nodes=2)
    world = MPIWorld(config)
    outputs = world.run(program)
    results, completed_by = outputs[0]

    tasks = make_tasks()
    expected = {i: float(np.sum(t ** 2)) for i, t in enumerate(tasks)}
    assert results == expected, "task results diverged from serial reference"
    print(f"all {NTASKS} tasks verified against the serial reference")

    names = [node.name for node in config.nodes]
    print("\ntasks completed per worker:")
    for worker in range(1, config.world_size):
        route = "SCI" if worker == 1 else "TCP (cross-island)"
        print(f"  rank {worker} ({names[worker]:6s}, reached via {route:18s}): "
              f"{completed_by.get(worker, 0):3d}")
    print(f"\nsimulated time: {world.engine.now / 1e6:.2f} ms")

    # The SCI-local worker gets work faster, so it completes more tasks.
    sci_worker = completed_by.get(1, 0)
    tcp_workers = max(completed_by.get(w, 0) for w in (2, 3))
    print(f"\nSCI worker completed {sci_worker} vs best cross-island "
          f"worker {tcp_workers}: cheap round-trips win more work — the "
          "load balance follows the network topology.")
    assert sci_worker > tcp_workers


if __name__ == "__main__":
    main()
