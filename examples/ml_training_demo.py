#!/usr/bin/env python
"""Data-parallel training on the simulated cluster, three ways.

The ``ml_training`` macro-workload (see
:mod:`repro.workloads.ml_training`) models one synchronous SGD job:
per-step model broadcast, bucketed gradient allreduces overlapped with
backward compute, and an optimizer charge.  This demo runs the same
model (same seed, same log-normal layer sizes) under three
configurations through the unified workload API:

- flat collectives, no overlap (the naive baseline);
- flat collectives with compute/communication overlap;
- hierarchical (node-aware) collectives with overlap — the default.

Gradients are integer-valued, so float summation is exact and all three
runs must agree on every checksum — the demo asserts it, then shows
what each optimization bought in virtual wall-clock.

Run: python examples/ml_training_demo.py
"""

import repro.workloads as workloads
from repro.workloads.ml_training import gradient_buckets, model_layers

SEED = 0
SCALE = {"ranks": 16, "processes_per_node": 4}


def main() -> None:
    sizes = model_layers(SEED, layers=12)
    buckets = gradient_buckets(sizes, 32 * 1024)
    print(f"model: {len(sizes)} layers, {sum(sizes)} bytes "
          f"(min {min(sizes)}, max {max(sizes)}), "
          f"{len(buckets)} gradient buckets")

    variants = [
        ("flat, no overlap", {"algorithm": "default", "overlap": False}),
        ("flat, overlapped", {"algorithm": "default", "overlap": True}),
        ("hier, overlapped", {"algorithm": "hier", "overlap": True}),
    ]
    outcomes = []
    for label, overrides in variants:
        outcome = workloads.run("ml_training", seed=SEED,
                                params={**SCALE, **overrides},
                                check=True, instrumentation=True)
        assert not outcome.violations, outcome.violations
        outcomes.append((label, outcome))
        packets = outcome.metrics.get("chmad.packets", 0)
        print(f"  {label:18s} t={outcome.time_ns/1e6:8.3f} ms  "
              f"packets={packets}")

    # Exact integer gradients: reduction order cannot change a checksum,
    # so every rank of every variant must agree element for element.
    references = [outcome.results for _, outcome in outcomes]
    assert references[0] == references[1] == references[2], \
        "variants disagree on training checksums"
    print("all three variants agree on every per-step checksum")

    baseline = outcomes[0][1].time_ns
    best = outcomes[-1][1].time_ns
    assert best < baseline, "hier+overlap should beat the naive baseline"
    print(f"hier + overlap speedup over naive: {baseline / best:.2f}x "
          f"(virtual time, {SCALE['ranks']} ranks)")


if __name__ == "__main__":
    main()
