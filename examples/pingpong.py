#!/usr/bin/env python
"""mpptest-style ping-pong CLI over the simulated stack.

Sweep message sizes on a chosen network/device and print latency and
bandwidth — the measurement program behind every figure of the paper
(§5.1).

Usage:
  python examples/pingpong.py                      # ch_mad over SCI
  python examples/pingpong.py --network bip
  python examples/pingpong.py --device ch_p4       # the TCP baseline
  python examples/pingpong.py --network sisci --secondary tcp   # Fig. 9
  python examples/pingpong.py --raw --network tcp  # raw Madeleine
"""

import argparse

from repro.bench.pingpong import mpi_pingpong
from repro.bench.raw_madeleine import raw_madeleine_pingpong
from repro.bench.report import format_table
from repro.bench.sweeps import BANDWIDTH_SWEEP_SIZES, LATENCY_SWEEP_SIZES


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="sisci",
                        choices=["tcp", "sisci", "bip"],
                        help="network carrying the traffic")
    parser.add_argument("--device", default="ch_mad",
                        choices=["ch_mad", "ch_p4"])
    parser.add_argument("--secondary", default=None,
                        choices=["tcp", "sisci", "bip"],
                        help="additional idle-but-polled network (Fig. 9)")
    parser.add_argument("--raw", action="store_true",
                        help="measure raw Madeleine instead of MPI")
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()

    sizes = args.sizes or sorted(set(LATENCY_SWEEP_SIZES)
                                 | set(BANDWIDTH_SWEEP_SIZES))
    rows = []
    for size in sizes:
        reps = max(2, args.reps if size < 256 * 1024 else 2)
        if args.raw:
            result = raw_madeleine_pingpong(args.network, size, reps=reps)
        else:
            networks = (args.network,)
            if args.secondary:
                networks = (args.network, args.secondary)
            result = mpi_pingpong(size, networks=networks,
                                  device=args.device,
                                  active_network=args.network, reps=reps)
        rows.append((size, f"{result.latency_us:.2f}",
                     f"{result.bandwidth_mb_s:.2f}"))

    label = ("raw Madeleine" if args.raw else args.device)
    extra = f" (+{args.secondary} polling thread)" if args.secondary else ""
    print(format_table(
        ["size (B)", "one-way (us)", "bandwidth (MB/s)"], rows,
        title=f"{label} over {args.network}{extra}",
    ))


if __name__ == "__main__":
    main()
