#!/usr/bin/env python
"""Quickstart: a first MPI program on the simulated multi-protocol cluster.

Builds a two-node cluster where each node has both an SCI board and plain
Fast-Ethernet (the paper's ch_mad setup), then runs a program using
point-to-point messaging and a few collectives.  MPI programs are Python
generator coroutines: every communication call is used with ``yield from``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import MPIWorld, two_node_cluster
from repro.mpi.reduce_ops import MAX, SUM


def program(mpi):
    comm = mpi.comm_world
    rank, size = comm.rank, comm.size

    # --- point-to-point -----------------------------------------------------
    if rank == 0:
        yield from comm.send({"greeting": "hello from rank 0"}, dest=1, tag=7)
        reply, status = yield from comm.recv(source=1, tag=8)
        print(f"[rank 0] got reply {reply!r} "
              f"(source={status.source}, {status.count} bytes) "
              f"at t={mpi.wtime() * 1e6:.1f} us")
    else:
        msg, status = yield from comm.recv(source=0, tag=7)
        print(f"[rank 1] received {msg!r} over the "
              f"{mpi.inter_device.select_port(0).channel.protocol} channel")
        yield from comm.send("hi back!", dest=0, tag=8)

    # --- numpy buffers ------------------------------------------------------
    data = np.full(8, float(rank + 1))
    total = np.zeros(8)
    yield from comm.Allreduce(data, total, op=SUM)
    assert total[0] == sum(range(1, size + 1))

    # --- collectives --------------------------------------------------------
    winner = yield from comm.allreduce(rank * 10, op=MAX)
    gathered = yield from comm.gather(f"rank{rank}", root=0)
    yield from comm.barrier()
    if rank == 0:
        print(f"[rank 0] allreduce(MAX) = {winner}, gather = {gathered}")
        print(f"[rank 0] simulated elapsed time: {mpi.wtime() * 1e6:.1f} us")
    return rank


def main():
    world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
    results = world.run(program)
    print(f"per-rank results: {results}")
    print(f"total simulated time: {world.engine.now / 1e6:.3f} ms "
          f"({world.engine.events_executed} events)")


if __name__ == "__main__":
    main()
