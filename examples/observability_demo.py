#!/usr/bin/env python
"""The instrumentation subsystem on a multi-protocol (TCP+SCI) run.

Builds a three-node cluster where two nodes share SCI and all three
share TCP, so one MPI job genuinely drives both networks at once (the
paper's headline capability).  With ``install_instrumentation(engine)``
the run produces:

- typed metrics — per-channel message/byte counters with the
  EXPRESS-vs-CHEAPER block split, per-packet-type ch_mad counts,
  eager-vs-rendezvous switch decisions, polling-thread wakeups/idle
  time, SendGate depth — printed as a plain-text report;
- a Chrome ``trace_event`` JSON timeline — load it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see deliveries,
  packet sends and polling wakeups on the virtual clock.

Run:  python examples/observability_demo.py [--out trace.json]
"""

import argparse
import json
import tempfile

import numpy as np

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.mpi.reduce_ops import SUM
from repro.sim.engine import install_instrumentation


def multi_protocol_cluster() -> ClusterConfig:
    """node0/node1 share SCI+TCP; node2 is TCP-only (cluster of clusters)."""
    nodes = [
        NodeSpec("sci0", networks=("sisci", "tcp")),
        NodeSpec("sci1", networks=("sisci", "tcp")),
        NodeSpec("eth0", networks=("tcp",)),
    ]
    return ClusterConfig(nodes=nodes, device="ch_mad")


def program(mpi):
    comm = mpi.comm_world
    # Eager ping-pong around the triangle: 0-1 rides SCI, x-2 rides TCP.
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for _ in range(4):
        status = yield from comm.Sendrecv(
            np.full(64, comm.rank, dtype=np.float64), dest=right,
            recvbuf=np.empty(64), source=left)
        assert status.count == 64 * 8
    # One rendezvous on each network (past both switch points).
    big = np.zeros(100_000, dtype=np.uint8)
    if comm.rank == 0:
        yield from comm.send(big, dest=1, tag=7)   # SCI rendezvous
        yield from comm.send(big, dest=2, tag=8)   # TCP rendezvous
    elif comm.rank == 1:
        yield from comm.recv(source=0, tag=7)
    else:
        yield from comm.recv(source=0, tag=8)
    total = yield from comm.allreduce(comm.rank, op=SUM)
    assert total == 3


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="Chrome trace output path (default: temp file)")
    args = parser.parse_args()

    world = MPIWorld(multi_protocol_cluster())
    instruments = install_instrumentation(world.engine)
    world.run(program)

    print(f"simulated {world.engine.now / 1000:.1f} us, "
          f"{len(instruments.tracer.records)} trace records, "
          f"{len(instruments.metrics)} instruments\n")
    print(instruments.report(title="Metrics: multi-protocol TCP+SCI run"))

    out = args.out or tempfile.mkstemp(prefix="observability_",
                                       suffix=".json")[1]
    instruments.export_chrome_trace(out)

    # Self-check: the export is valid Chrome trace_event JSON and the
    # run really was multi-protocol.
    with open(out) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"]
    assert events and all(
        {"ph", "ts", "pid"} <= set(e) for e in events), "malformed trace"
    metrics = instruments.metrics
    for protocol in ("sisci", "tcp"):
        assert metrics.value("chmad.packets", pkt="MAD_SHORT_PKT",
                             protocol=protocol, rank=0, dir="send") > 0
        assert metrics.value("chmad.packets", pkt="MAD_RNDV_PKT",
                             protocol=protocol, rank=0, dir="send") == 1
    print(f"\nChrome trace: {out} ({len(events)} events) — open in "
          "chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
