#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Deprecated entry point: this script now delegates to the consolidated
CLI — use ``python -m repro report`` directly (it accepts the same
targets, plus ``--workers N`` to fan measurements out across processes
and ``--cache DIR`` to reuse previous results):

    python -m repro report              # everything (~1 min)
    python -m repro report tables       # just the tables
    python -m repro report fig7 fig9    # a subset
"""

import sys
import warnings

from repro.cli import main as cli_main


def main():
    warnings.warn(
        "examples/reproduce_paper.py is deprecated; use "
        "`python -m repro report` (same targets, plus --workers/--cache)",
        DeprecationWarning, stacklevel=2)
    return cli_main(["report", *sys.argv[1:]])


if __name__ == "__main__":
    status = main()
    if status:  # plain return on success keeps runpy-based smoke tests quiet
        raise SystemExit(status)
