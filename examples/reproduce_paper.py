#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Prints paper-vs-measured rows for Tables 1 and 2 and the full data
series behind Figures 6-9.  This is the script that generated the
numbers recorded in EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py            # everything (~1 min)
      python examples/reproduce_paper.py tables      # just the tables
      python examples/reproduce_paper.py fig7 fig9   # a subset
"""

import sys
import time

from repro.bench import figures
from repro.bench.report import format_paper_checks


def run_tables():
    print(format_paper_checks(figures.table1_checks(),
                              "Table 1: raw Madeleine (latency @4 B, "
                              "bandwidth @8 MB)"))
    print()
    print(format_paper_checks(figures.table2_checks(),
                              "Table 2: ch_mad summary (0 B / 4 B latency, "
                              "8 MB bandwidth)"))
    print()


def run_figure(builder):
    data = builder()
    print(data.render())
    print()


ALL = {
    "tables": run_tables,
    "fig6": lambda: run_figure(figures.figure6_tcp),
    "fig7": lambda: run_figure(figures.figure7_sci),
    "fig8": lambda: run_figure(figures.figure8_myrinet),
    "fig9": lambda: run_figure(figures.figure9_multiprotocol),
}


def main():
    targets = sys.argv[1:] or list(ALL)
    unknown = [t for t in targets if t not in ALL]
    if unknown:
        raise SystemExit(f"unknown targets {unknown}; pick from {list(ALL)}")
    start = time.time()
    for target in targets:
        print(f"### {target} " + "#" * (60 - len(target)))
        ALL[target]()
    print(f"(wall time: {time.time() - start:.1f} s — every number above "
          "came out of the discrete-event simulation, except the four "
          "closed-source comparators, which are analytic curves "
          "calibrated to the paper's own figures)")


if __name__ == "__main__":
    main()
