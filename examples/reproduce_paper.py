#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Convenience wrapper over the consolidated CLI — identical to running
``python -m repro report`` (which also accepts ``--workers N`` to fan
measurements out across processes and ``--cache DIR`` to reuse previous
results):

    python -m repro report              # everything (~1 min)
    python -m repro report tables       # just the tables
    python -m repro report fig7 fig9    # a subset
"""

import sys

from repro.cli import main as cli_main


def main():
    return cli_main(["report", *sys.argv[1:]])


if __name__ == "__main__":
    status = main()
    if status:  # plain return on success keeps runpy-based smoke tests quiet
        raise SystemExit(status)
