#!/usr/bin/env python
"""1-D heat diffusion with halo exchange on a heterogeneous meta-cluster.

The paper's motivating workload class (§1): a domain-decomposed stencil
code running across a *cluster of clusters* — here two SCI nodes and two
Myrinet nodes joined by Fast-Ethernet, all inside one MPI session.
Neighbouring ranks inside an island exchange halos over the fast network;
the island boundary crossing automatically falls back to TCP (ch_mad
channel selection).

The simulation result is verified against a serial computation, and the
per-network traffic counters show which wires the halos actually used.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro.cluster import MPIWorld, cluster_of_clusters

GLOBAL_CELLS = 4096
STEPS = 50
ALPHA = 0.1


def serial_reference(initial: np.ndarray) -> np.ndarray:
    u = initial.copy()
    for _ in range(STEPS):
        padded = np.pad(u, 1, mode="edge")
        u = u + ALPHA * (padded[:-2] - 2 * u + padded[2:])
    return u


def initial_condition() -> np.ndarray:
    x = np.linspace(0.0, 1.0, GLOBAL_CELLS)
    return np.exp(-200.0 * (x - 0.3) ** 2) + 0.5 * np.exp(-80.0 * (x - 0.7) ** 2)


def program(mpi):
    comm = mpi.comm_world
    rank, size = comm.rank, comm.size
    local_n = GLOBAL_CELLS // size
    lo = rank * local_n

    full = initial_condition()
    u = full[lo:lo + local_n].copy()
    left, right = rank - 1, rank + 1

    for _ in range(STEPS):
        halo_left = u[0]
        halo_right = u[-1]
        requests = []
        if left >= 0:
            requests.append(comm.isend(float(u[0]), dest=left, tag=1))
        if right < size:
            requests.append(comm.isend(float(u[-1]), dest=right, tag=2))
        if left >= 0:
            halo_left, _ = yield from comm.recv(source=left, tag=2)
        if right < size:
            halo_right, _ = yield from comm.recv(source=right, tag=1)
        for request in requests:
            yield from request.wait()
        padded = np.concatenate(([halo_left], u, [halo_right]))
        u = u + ALPHA * (padded[:-2] - 2 * u + padded[2:])

    # Gather the final field on rank 0 for verification.
    pieces = yield from comm.gather(u, root=0)
    if rank == 0:
        return np.concatenate(pieces)
    return None


def main():
    config = cluster_of_clusters(sci_nodes=2, myrinet_nodes=2)
    world = MPIWorld(config)
    results = world.run(program)

    computed = results[0]
    expected = serial_reference(initial_condition())
    error = float(np.max(np.abs(computed - expected)))
    print(f"max |parallel - serial| = {error:.2e}")
    assert error < 1e-12, "parallel result diverged from the serial reference"

    print(f"simulated wall time for {STEPS} steps on 4 ranks: "
          f"{world.engine.now / 1e6:.3f} ms")
    print("\ntraffic per network (messages received per adapter):")
    for name, fabric in sorted(world.session.fabrics.items()):
        messages = sum(a.messages_received for a in fabric.adapters)
        payload = sum(a.bytes_received for a in fabric.adapters)
        print(f"  {name:6s}: {messages:5d} messages, {payload:9d} bytes")
    sci = world.session.fabrics["sisci"]
    bip = world.session.fabrics["bip"]
    tcp = world.session.fabrics["tcp"]
    assert sum(a.messages_received for a in sci.adapters) > 0, "SCI unused?"
    assert sum(a.messages_received for a in bip.adapters) > 0, "Myrinet unused?"
    assert sum(a.messages_received for a in tcp.adapters) > 0, "TCP unused?"
    print("\nhalo exchange used all three networks: fast paths inside each "
          "island,\nTCP only across the island boundary — the ch_mad value "
          "proposition.")


if __name__ == "__main__":
    main()
