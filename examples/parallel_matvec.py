#!/usr/bin/env python
"""Parallel matrix-vector product with Allgather (row decomposition).

The classic mpi4py-tutorial kernel: each rank owns a block of rows of A
and the matching slice of x; one Allgather assembles the full vector,
then every rank computes its local rows.  Run on dual-processor SMP
nodes so the Allgather ring exercises smp_plug (intra-node) and ch_mad
(inter-node) in a single collective — the paper's Figure 3 stack end to
end.

Run:  python examples/parallel_matvec.py
"""

import numpy as np

from repro.cluster import MPIWorld, smp_node_cluster

N = 512          # global matrix dimension
SEED = 20001001  # the report's publication month


def make_problem(size: int):
    rng = np.random.default_rng(SEED)
    A = rng.standard_normal((N, N))
    x = rng.standard_normal(N)
    return A, x


def program(mpi):
    comm = mpi.comm_world
    rank, size = comm.rank, comm.size
    assert N % size == 0
    local_rows = N // size

    A, x = make_problem(size)
    local_A = A[rank * local_rows:(rank + 1) * local_rows]
    local_x = x[rank * local_rows:(rank + 1) * local_rows].copy()

    xg = np.zeros(N)
    yield from comm.Allgather(local_x, xg)
    local_y = local_A @ xg

    y = np.zeros(N) if rank == 0 else None
    yield from comm.Gather(local_y, y, root=0)
    if rank == 0:
        return y
    return None


def main():
    config = smp_node_cluster(nodes=2, processes_per_node=2,
                              networks=("sisci",))
    world = MPIWorld(config)
    results = world.run(program)

    A, x = make_problem(config.world_size)
    expected = A @ x
    error = float(np.max(np.abs(results[0] - expected)))
    print(f"N = {N}, ranks = {config.world_size} "
          f"(2 SMP nodes x 2 processors, SCI between nodes)")
    print(f"max |parallel - serial| = {error:.2e}")
    assert error < 1e-9

    print(f"simulated time: {world.engine.now / 1e6:.3f} ms")
    sci = world.session.fabrics["sisci"]
    print(f"SCI messages: {sum(a.messages_received for a in sci.adapters)} "
          "(inter-node only; intra-node slices moved through smp_plug)")


if __name__ == "__main__":
    main()
