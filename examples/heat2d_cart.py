#!/usr/bin/env python
"""2-D heat diffusion on a Cartesian process grid.

The full stencil stack: ``dims_create`` picks a balanced grid,
``create_cart`` builds the topology, persistent-style halo exchanges use
``cart.shift`` in both dimensions, and ``Gatherv`` reassembles the field
for verification against a serial reference.

Runs on four SMP nodes of two processors each (a 4x2 process grid), so
halo traffic crosses ch_self is never needed, smp_plug carries one grid
dimension and ch_mad/SCI the other.

Run:  python examples/heat2d_cart.py
"""

import numpy as np

from repro.cluster import MPIWorld, smp_node_cluster
from repro.mpi.cartesian import dims_create

N = 96          # global grid is N x N
STEPS = 25
ALPHA = 0.2


def initial_field():
    x = np.linspace(-1, 1, N)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    return np.exp(-8 * (xx ** 2 + yy ** 2))


def serial_reference():
    u = initial_field()
    for _ in range(STEPS):
        p = np.pad(u, 1, mode="edge")
        u = u + ALPHA * (p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2]
                         + p[1:-1, 2:] - 4 * u)
    return u


def program(mpi):
    comm = mpi.comm_world
    dims = dims_create(comm.size, 2)
    cart = yield from comm.create_cart(dims, periods=(False, False))
    pr, pc = cart.coords
    rows, cols = N // dims[0], N // dims[1]
    r0, c0 = pr * rows, pc * cols

    u = initial_field()[r0:r0 + rows, c0:c0 + cols].copy()

    for _ in range(STEPS):
        halos = {}
        # Exchange both halos of each dimension (PROC_NULL at the edges
        # makes boundary sends/receives no-ops returning None).
        for direction, (low_edge, high_edge) in enumerate(
                ((u[0, :], u[-1, :]), (u[:, 0], u[:, -1]))):
            # shift(d, 1): source = lower-coord neighbour, dest = higher.
            low_nbr, high_nbr = cart.shift(direction, 1)
            t_low, t_high = 2 * direction, 2 * direction + 1
            reqs = [cart.isend(low_edge.copy(), dest=low_nbr, tag=t_low),
                    cart.isend(high_edge.copy(), dest=high_nbr, tag=t_high)]
            # The lower neighbour sent us its high edge, and vice versa.
            from_low, _ = yield from cart.recv(source=low_nbr, tag=t_high)
            from_high, _ = yield from cart.recv(source=high_nbr, tag=t_low)
            for req in reqs:
                yield from req.wait()
            halos[direction] = (
                from_low if from_low is not None else low_edge,
                from_high if from_high is not None else high_edge,
            )
        up, down = halos[0]
        left, right = halos[1]
        p = np.pad(u, 1)
        p[0, 1:-1], p[-1, 1:-1] = up, down
        p[1:-1, 0], p[1:-1, -1] = left, right
        # Corner values are unused by the 5-point stencil.
        u = u + ALPHA * (p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2]
                         + p[1:-1, 2:] - 4 * u)

    # Reassemble on rank 0 with Gatherv (block sizes are equal here, but
    # the v-collective keeps the example general).
    counts = [rows * cols] * comm.size
    displs = list(np.arange(comm.size) * rows * cols)
    recv = np.zeros(N * N) if comm.rank == 0 else None
    spec = (recv, counts, displs) if comm.rank == 0 else None
    yield from comm.Gatherv(u.ravel(), spec, root=0)
    if comm.rank == 0:
        # Undo the block layout.
        full = np.zeros((N, N))
        for rank in range(comm.size):
            rr, cc = divmod(rank, dims[1])
            block = recv[rank * rows * cols:(rank + 1) * rows * cols]
            full[rr * rows:(rr + 1) * rows,
                 cc * cols:(cc + 1) * cols] = block.reshape(rows, cols)
        return full
    return None


def main():
    config = smp_node_cluster(nodes=4, processes_per_node=2,
                              networks=("sisci",))
    world = MPIWorld(config)
    results = world.run(program)
    expected = serial_reference()
    error = float(np.max(np.abs(results[0] - expected)))
    dims = dims_create(config.world_size, 2)
    print(f"{N}x{N} grid on a {dims[0]}x{dims[1]} process grid "
          f"({config.world_size} ranks on 4 SMP nodes)")
    print(f"max |parallel - serial| = {error:.2e}")
    assert error < 1e-12
    print(f"simulated time for {STEPS} steps: {world.engine.now / 1e6:.2f} ms")
    sci = world.session.fabrics["sisci"]
    print(f"SCI halo messages: "
          f"{sum(a.messages_received for a in sci.adapters)}; the other "
          "grid dimension travelled through smp_plug inside each node")


if __name__ == "__main__":
    main()
