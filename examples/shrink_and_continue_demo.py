#!/usr/bin/env python
"""Losing a rank and finishing the job anyway: ULFM-style recovery.

The paper's fault story (and PR 2's fault plans) covered *network*
failures: drops, link death, whole-fabric death — all survivable below
MPI because the reliable transport retransmits and ch_mad fails traffic
over to another protocol.  A *process* death is different: no amount of
rerouting brings the rank back, so the MPI layer itself must change
shape.  This demo walks the ULFM recovery sequence on a 4-node cluster:

1. a 4-rank allreduce loop is running when rank 2's node dies;
2. the failure detector (heartbeats + piggybacked liveness + transport
   timeouts) declares the rank dead, and every survivor's pending
   collective fails with ``ERR_PROC_FAILED`` instead of hanging;
3. survivors call ``comm.revoke()`` — a reliable flood that poisons the
   communicator everywhere — then ``comm.shrink()`` to build a dense
   3-rank communicator, run the allreduce on it, and confirm the
   recovery with ``comm.agree()``;
4. the driver checks every survivor saw the failure, the shrunk
   communicator is dense (ranks 0..n-2), the reduced value is correct,
   and the whole run is deterministic (repeated runs are identical).

Run:  python examples/shrink_and_continue_demo.py
"""

from repro.bench.report import format_table
from repro.cluster import ClusterConfig, EngineConfig, MPIWorld, NodeSpec
from repro.errors import MPIProcFailedError
from repro.faults import FaultPlan
from repro.units import us

WORLD_SIZE = 4
VICTIM = 2
DEATH_NS = us(300)
ITERATIONS = 50


def program(mpi):
    """Allreduce loop that recovers from a rank death, ULFM style."""
    comm = mpi.comm_world
    failure = None
    for step in range(ITERATIONS):
        try:
            yield from comm.allreduce(comm.rank + 1)
        except MPIProcFailedError as exc:
            failure = (step, exc.failed_rank)
            break
    if failure is None:
        return {"role": "unscathed"}

    # ULFM recovery: poison the old communicator everywhere, rebuild a
    # dense one from the survivors, and prove it works.
    comm.revoke()
    shrunk = yield from comm.shrink()
    total = yield from shrunk.allreduce(shrunk.rank + 1)
    agreed = yield from shrunk.agree(1)
    return {
        "role": "survivor",
        "saw_failure_of": failure[1],
        "at_iteration": failure[0],
        "new_rank": shrunk.rank,
        "new_size": shrunk.size,
        "total": total,
        "agreed": agreed,
    }


def run_once():
    config = ClusterConfig(
        nodes=[NodeSpec(name=f"n{i}", networks=("tcp", "sisci"))
               for i in range(WORLD_SIZE)],
        fault_plan=FaultPlan.node_death(rank=VICTIM, at=DEATH_NS),
    )
    world = MPIWorld(config, engine_config=EngineConfig(
        seed=11, instrumentation=True, checker=True))
    results = world.run(program)
    return world, results


def main():
    world, results = run_once()

    survivors = [r for r in results if r is not None]
    assert results[VICTIM] is None, "the dead rank returned a result?"
    assert len(survivors) == WORLD_SIZE - 1
    for r in survivors:
        assert r["role"] == "survivor", "a survivor never saw the failure"
        assert r["saw_failure_of"] == VICTIM
        assert r["new_size"] == WORLD_SIZE - 1, "shrunk comm is not dense"
        assert r["agreed"] == 1, "agreement failed after recovery"
    new_ranks = sorted(r["new_rank"] for r in survivors)
    assert new_ranks == list(range(WORLD_SIZE - 1)), \
        f"shrink left holes in the rank space: {new_ranks}"
    expected = sum(range(1, WORLD_SIZE))  # 1+2+..+(n-1) on the shrunk comm
    assert all(r["total"] == expected for r in survivors), \
        "post-shrink allreduce got the wrong answer"

    # Determinism: an identical second run must be bit-identical.
    _world2, results2 = run_once()
    assert results2 == results, "rank-death recovery is not deterministic!"

    metrics = world.engine.instruments.metrics
    detect = metrics.collect()
    latency = [m for m in detect if m.name == "ft.detection_latency_ns"]
    latency_ms = latency[0].mean / 1e6 if latency else float("nan")

    print(f"cluster: {WORLD_SIZE} nodes (tcp + sisci), rank {VICTIM} "
          f"dies at t={DEATH_NS} ns\n")
    rows = [
        ("rank deaths injected", metrics.total("faults.node_deaths")),
        ("peer-death verdicts", metrics.total("ft.peer_deaths")),
        ("detection latency", f"{latency_ms:.2f} ms"),
        ("collectives failed over", metrics.total("ft.ops_failed")),
        ("revoke floods", metrics.total("ft.revoke_floods")),
        ("shrinks", metrics.total("ft.shrinks")),
        ("agreements", metrics.total("ft.agreements")),
    ]
    print(format_table(["event", "value"], rows,
                       title="what the rank death cost"))
    sample = survivors[0]
    print(f"\nevery survivor saw ERR_PROC_FAILED(failed={VICTIM}) at "
          f"iteration {sample['at_iteration']},")
    print(f"shrank {WORLD_SIZE} -> {sample['new_size']} ranks "
          f"(dense: new ranks {new_ranks}),")
    print(f"re-ran the allreduce (= {sample['total']}) and agreed the "
          "recovery succeeded.")
    print("two identical runs produced bit-identical results: recovery "
          "is deterministic.")


if __name__ == "__main__":
    main()
