#!/usr/bin/env python
"""Inspect a run with the tracing and analysis tools.

Runs a small mixed-traffic program on a two-network cluster with tracing
enabled, then prints the full analysis: CPU attribution per thread
(watch the TCP poller burn select() cycles), per-network traffic, the
ch_mad packet mix (eager vs the three-step rendezvous), and a text
timeline of deliveries.

Run:  python examples/trace_analysis.py
"""

import numpy as np

from repro.bench.timeline import full_report
from repro.cluster import MPIWorld, two_node_cluster
from repro.mpi.reduce_ops import SUM
from repro.sim.engine import install_instrumentation


def program(mpi):
    comm = mpi.comm_world
    # A little of everything: eager traffic, a rendezvous, a collective.
    for round_ in range(4):
        if comm.rank == 0:
            yield from comm.send(b"", dest=1, tag=1, size=512)
            yield from comm.recv(source=1, tag=2)
        else:
            yield from comm.recv(source=0, tag=1)
            yield from comm.send(b"", dest=0, tag=2, size=512)
    if comm.rank == 0:
        yield from comm.send(np.zeros(8192), dest=1, tag=3)  # rendezvous
    else:
        yield from comm.recv(source=0, tag=3)
    total = yield from comm.allreduce(comm.rank + 1, op=SUM)
    assert total == 3


def main():
    world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
    tracer = install_instrumentation(world.engine).tracer
    world.run(program)
    print(f"simulated {world.engine.now / 1000:.1f} us, "
          f"{world.engine.events_executed} events, "
          f"{len(tracer.records)} trace records\n")
    print(full_report(world))
    print("\nReading guide: the TCP polling thread shows up prominently in "
          "CPU attribution\ndespite carrying zero messages (all traffic "
          "chose the SCI channel) — the\nFigure 9 effect, visible per "
          "thread; the packet mix shows one REQUEST/SENDOK/\nRNDV triple "
          "for the single 64 KB rendezvous among the eager SHORT packets.")


if __name__ == "__main__":
    main()
