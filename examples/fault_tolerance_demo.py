#!/usr/bin/env python
"""Surviving a network death on the paper's cluster-of-clusters.

The motivating topology of the paper (§1) is an SCI cluster and a
Myrinet cluster joined by plain Ethernet — several networks in one MPI
session.  On perfect fabrics that is purely a performance story; this
demo shows it is a *redundancy* story too:

1. run a halo-exchange + reduction job on the meta-cluster, fault-free;
2. run the identical job with a fault plan that kills the whole SCI
   fabric mid-run: the reliable Madeleine transport retransmits the
   lost messages, the channel health monitor declares the SCI channel
   dead, and ch_mad fails the SCI island's traffic over to TCP
   (re-electing its eager/rendezvous switch point along the way);
3. verify the MPI-level results are byte-identical.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.bench.report import format_table
from repro.cluster import MPIWorld, cluster_of_clusters
from repro.faults import FaultPlan, fabric_death
from repro.sim.engine import install_instrumentation
from repro.units import us

#: Virtual time at which the SCI fabric dies (mid-run: the job below
#: runs for a few tens of milliseconds).
SCI_DEATH_NS = us(400)


def make_world(fault_plan=None):
    config = cluster_of_clusters(sci_nodes=2, myrinet_nodes=2)
    config.fault_plan = fault_plan
    config.reliable = True  # same transport in both runs: comparable paths
    return MPIWorld(config)


def program(mpi):
    """A small iterative job: ring halo exchange + global reduction."""
    comm = mpi.comm_world
    rank, size = comm.rank, comm.size
    value = float(rank + 1)
    history = []
    for step in range(12):
        right = (rank + 1) % size
        left = (rank - 1) % size
        data, _status = yield from comm.sendrecv(
            ("halo", rank, step, value), dest=right, sendtag=step,
            source=left, recvtag=step, size=9000,
        )
        value = 0.5 * value + 0.5 * data[3]
        total = yield from comm.allreduce(value)
        history.append(round(total, 9))
    return history


def main():
    clean_world = make_world()
    clean = clean_world.run(program)

    plan = FaultPlan(fabrics={"sisci": fabric_death(SCI_DEATH_NS)}, seed=1)
    faulty_world = make_world(plan)
    ins = install_instrumentation(faulty_world.engine)
    faulty = faulty_world.run(program)

    assert faulty == clean, "failover changed MPI-level results!"

    retransmits = ins.metrics.total("transport.retransmits")
    failovers = ins.metrics.total("failover.channels")
    rerouted = ins.metrics.total("transport.rerouted")
    assert retransmits > 0, "the fabric death never cost a retransmission?"
    assert failovers == 1, f"expected exactly one channel death, got {failovers}"

    sci_devices = [env.inter_device for env in faulty_world.envs
                   if "sisci" in env.inter_device.ports]
    assert all(d.ports["sisci"].channel.dead for d in sci_devices)

    print("cluster of clusters: 2 SCI nodes + 2 Myrinet nodes, "
          "Ethernet everywhere")
    print(f"fault plan: the whole SCI fabric dies at t={SCI_DEATH_NS} ns\n")
    rows = [
        ("dropped by the dead fabric", ins.metrics.total("faults.dropped")),
        ("transport retransmissions", retransmits),
        ("channel failover events", failovers),
        ("messages tunnelled to TCP", rerouted),
        ("SCI island eager threshold now",
         f"{sci_devices[0].eager_threshold} B (was 8192 B)"),
    ]
    print(format_table(["event", "count"], rows, title="what the fault cost"))
    print(f"\nclean run finished at   {clean_world.engine.now / 1e6:8.3f} ms")
    print(f"faulty run finished at  {faulty_world.engine.now / 1e6:8.3f} ms")
    print("\nMPI-level results are byte-identical with and without the "
          "fabric death:\nthe SCI island's traffic completed over TCP. "
          "Multi-protocol MPI turns the\nslow network into a hot spare.")


if __name__ == "__main__":
    main()
