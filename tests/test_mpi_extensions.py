"""Tests for synchronous sends, v-collectives and Cartesian topologies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIError
from repro.mpi.cartesian import CartComm, dims_create
from repro.mpi.constants import PROC_NULL
from repro.cluster import smp_node_cluster
from tests.helpers import run_ranks, run_world


class TestSsend:
    def test_ssend_completes_after_recv_posted(self):
        """A synchronous send must not complete before the receive starts."""
        def program(mpi):
            from repro.sim.coroutines import now, sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                t0 = yield now()
                yield from comm.ssend(b"sync", dest=1, tag=1, size=16)
                t1 = yield now()
                return t1 - t0
            yield sleep(us(700))   # delay posting the receive
            data, _ = yield from comm.recv(source=0, tag=1)
            return data

        results = run_ranks(program)
        # The sender blocked across the receiver's 700 us delay.
        assert results[0] > 600_000
        assert results[1] == b"sync"

    def test_plain_eager_send_does_not_wait(self):
        def program(mpi):
            from repro.sim.coroutines import now, sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                t0 = yield now()
                yield from comm.send(b"fire-and-forget", dest=1, tag=1)
                t1 = yield now()
                return t1 - t0
            yield sleep(us(700))
            yield from comm.recv(source=0, tag=1)
            return None

        results = run_ranks(program)
        assert results[0] < 100_000  # local completion, no waiting

    def test_issend_wait(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.issend(b"x", dest=1, tag=2, size=8)
                yield from comm.barrier()   # receive gets posted after this
                yield from req.wait()
                return True
            req = comm.irecv(source=0, tag=2)
            yield from comm.barrier()
            data, _ = yield from req.wait()
            return data

        assert run_ranks(program) == [True, b"x"]

    def test_ssend_to_self_with_posted_recv(self):
        def program(mpi):
            comm = mpi.comm_world
            req = comm.irecv(source=comm.rank, tag=3)
            yield from comm.ssend("self-sync", dest=comm.rank, tag=3)
            data, _ = yield from req.wait()
            return data

        assert run_ranks(program) == ["self-sync", "self-sync"]


class TestVCollectives:
    def test_gatherv_uneven_blocks(self):
        def program(mpi):
            comm = mpi.comm_world
            count = comm.rank + 1
            send = np.full(count, float(comm.rank))
            if comm.rank == 0:
                counts = [r + 1 for r in range(comm.size)]
                displs = np.concatenate(([0], np.cumsum(counts)[:-1]))
                recv = np.zeros(sum(counts))
                yield from comm.Gatherv(send, (recv, counts, displs), root=0)
                return recv.tolist()
            yield from comm.Gatherv(send, None, root=0)
            return None

        results = run_ranks(program, nranks=3)
        assert results[0] == [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_scatterv_roundtrip(self):
        def program(mpi):
            comm = mpi.comm_world
            counts = [r + 1 for r in range(comm.size)]
            displs = list(np.concatenate(([0], np.cumsum(counts)[:-1])))
            recv = np.zeros(comm.rank + 1)
            if comm.rank == 0:
                send = np.arange(sum(counts), dtype=np.float64)
                yield from comm.Scatterv((send, counts, displs), recv, root=0)
            else:
                yield from comm.Scatterv(None, recv, root=0)
            return recv.tolist()

        results = run_ranks(program, nranks=3)
        assert results == [[0.0], [1.0, 2.0], [3.0, 4.0, 5.0]]

    def test_gatherv_count_mismatch_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            send = np.zeros(2)
            if comm.rank == 0:
                recv = np.zeros(2 * comm.size)
                with pytest.raises(MPIError, match="Gatherv"):
                    yield from comm.Gatherv(send, (recv, [1, 1], [0, 1]),
                                            root=0)
            else:
                yield from comm.Gatherv(send, None, root=0)
            return None

        run_ranks(program)


class TestDimsCreate:
    def test_balanced_2d(self):
        assert dims_create(12, 2) == [4, 3]
        assert dims_create(16, 2) == [4, 4]

    def test_respects_fixed_dims(self):
        assert dims_create(12, 2, [0, 6]) == [2, 6]

    def test_1d(self):
        assert dims_create(7, 1) == [7]

    def test_3d(self):
        dims = dims_create(24, 3)
        assert sorted(dims) == sorted(dims, )
        assert np.prod(dims) == 24

    def test_incompatible_fixed_raises(self):
        with pytest.raises(MPIError):
            dims_create(10, 2, [3, 0])

    @given(st.integers(1, 256), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_product_always_matches(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        assert int(np.prod(dims)) == nnodes
        assert all(d >= 1 for d in dims)
        # Balanced: dims are non-increasing.
        assert dims == sorted(dims, reverse=True)


class TestCartComm:
    def test_coords_roundtrip(self):
        def program(mpi):
            comm = mpi.comm_world
            cart = yield from comm.create_cart((2, 2))
            assert cart.rank_of(cart.coords) == cart.rank
            return cart.coords

        results = run_ranks(program, nranks=4)
        assert results == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_nonperiodic_shift_hits_proc_null(self):
        def program(mpi):
            comm = mpi.comm_world
            cart = yield from comm.create_cart((4,), periods=(False,))
            return cart.shift(0)

        results = run_ranks(program, nranks=4)
        assert results[0] == (PROC_NULL, 1)
        assert results[3] == (2, PROC_NULL)

    def test_periodic_shift_wraps(self):
        def program(mpi):
            comm = mpi.comm_world
            cart = yield from comm.create_cart((4,), periods=(True,))
            return cart.shift(0)

        results = run_ranks(program, nranks=4)
        assert results[0] == (3, 1)
        assert results[3] == (2, 0)

    def test_ring_exchange_over_cart(self):
        """A periodic ring rotation using shift + sendrecv."""
        def program(mpi):
            comm = mpi.comm_world
            cart = yield from comm.create_cart((comm.size,), periods=(True,))
            source, dest = cart.shift(0, 1)
            data, _ = yield from cart.sendrecv(cart.rank, dest=dest,
                                               sendtag=1, source=source,
                                               recvtag=1)
            return data

        results = run_ranks(program, nranks=4)
        assert results == [3, 0, 1, 2]

    def test_grid_size_mismatch_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPIError, match="grid"):
                yield from comm.create_cart((3, 3))
            return None

        run_ranks(program, nranks=4)

    def test_2d_halo_pattern_on_smp_cluster(self):
        """2x2 grid over 2 SMP nodes: shifts cross smp_plug and ch_mad."""
        def program(mpi):
            comm = mpi.comm_world
            cart = yield from comm.create_cart((2, 2), periods=(True, True))
            total = float(cart.rank)
            for direction in range(2):
                source, dest = cart.shift(direction)
                value, _ = yield from cart.sendrecv(
                    float(cart.rank), dest=dest, sendtag=direction,
                    source=source, recvtag=direction)
                total += value
            return total

        results = run_world(program, smp_node_cluster(nodes=2,
                                                      processes_per_node=2))
        # Each rank sums itself + its up and left periodic neighbours.
        assert len(results) == 4
        assert sum(results) == 3 * sum(range(4))
