"""Tests for multiple adapters per protocol and channel striping (§3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FailoverExhaustedError, MadeleineError
from repro.faults import FaultPlan, fabric_death
from repro.madeleine import MadeleineSession
from repro.madeleine.striping import stripe_sizes, striped_recv, striped_send
from repro.networks import base_protocol
from repro.sim.engine import install_instrumentation
from repro.units import us


def make_rail_session(rails=2, protocol="bip", fault_plan=None):
    session = MadeleineSession(fault_plan=fault_plan)
    names = [protocol] + [f"{protocol}#{i}" for i in range(1, rails)]
    for name in names:
        session.add_fabric(name)
    for _ in range(2):
        session.add_process(networks=names)
    channels = [session.new_channel(name, name) for name in names]
    return session, channels


class TestBaseProtocol:
    def test_strip_suffix(self):
        assert base_protocol("bip#1") == "bip"
        assert base_protocol("sisci") == "sisci"

    def test_rail_fabric_inherits_params(self):
        session, _ = make_rail_session()
        assert session.fabrics["bip#1"].params.name == "bip"
        assert session.fabrics["bip#1"].name == "bip#1"

    def test_unknown_base_still_rejected(self):
        session = MadeleineSession()
        with pytest.raises(Exception):
            session.add_fabric("quadrics#1")


class TestStripeSizes:
    def test_even_split(self):
        assert stripe_sizes(100, 2) == [50, 50]

    def test_remainder_spread(self):
        assert stripe_sizes(10, 3) == [4, 3, 3]

    def test_zero(self):
        assert stripe_sizes(0, 2) == [0, 0]

    def test_bad_args(self):
        with pytest.raises(MadeleineError):
            stripe_sizes(10, 0)
        with pytest.raises(MadeleineError):
            stripe_sizes(-1, 2)

    @given(st.integers(0, 10**7), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, total, rails):
        sizes = stripe_sizes(total, rails)
        assert sum(sizes) == total
        assert len(sizes) == rails
        assert max(sizes) - min(sizes) <= 1


class TestStripedTransfer:
    def _roundtrip(self, rails, size, payload=b"data"):
        session, channels = make_rail_session(rails=rails)
        p0, p1 = session.processes
        ports0 = [p0.port(c) for c in channels]
        ports1 = [p1.port(c) for c in channels]
        out = []

        def sender():
            yield from striped_send(ports0, 1, payload, size)

        def receiver():
            data = yield from striped_recv(ports1, size)
            out.append(data)

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        elapsed = session.run()
        return out[0], elapsed

    def test_payload_delivered(self):
        data, _ = self._roundtrip(rails=2, size=100_000)
        assert data == b"data"

    def test_single_rail_degenerates_gracefully(self):
        data, _ = self._roundtrip(rails=1, size=50_000)
        assert data == b"data"

    def test_zero_byte_transfer(self):
        data, _ = self._roundtrip(rails=2, size=0)
        assert data == b"data"

    def test_tiny_transfer_skips_empty_rails(self):
        data, _ = self._roundtrip(rails=4, size=2)
        assert data == b"data"

    def test_two_rails_nearly_double_bandwidth(self):
        size = 2_000_000
        _, one_rail = self._roundtrip(rails=1, size=size)
        _, two_rails = self._roundtrip(rails=2, size=size)
        speedup = one_rail / two_rails
        assert speedup > 1.7, f"striping speedup only {speedup:.2f}x"

    def test_three_rails_scale_further(self):
        size = 3_000_000
        _, one = self._roundtrip(rails=1, size=size)
        _, three = self._roundtrip(rails=3, size=size)
        assert one / three > 2.3

    def test_empty_ports_rejected(self):
        session, _ = make_rail_session()
        p0 = session.processes[0]

        def sender():
            yield from striped_send([], 1, b"", 10)

        task = p0.runtime.spawn(sender)
        with pytest.raises(MadeleineError):
            session.run()


class TestStripingUnderFaults:
    def _roundtrip_with_plan(self, rails, size, fault_plan, payload=b"data",
                             repeats=1):
        session, channels = make_rail_session(rails=rails,
                                              fault_plan=fault_plan)
        ins = install_instrumentation(session.engine)
        p0, p1 = session.processes
        ports0 = [p0.port(c) for c in channels]
        ports1 = [p1.port(c) for c in channels]
        out = []

        def sender():
            for _ in range(repeats):
                yield from striped_send(ports0, 1, payload, size)

        def receiver():
            for _ in range(repeats):
                data = yield from striped_recv(ports1, size)
                out.append(data)

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        session.run()
        return out, ins, channels

    def test_uneven_stripe_sizes_roundtrip(self):
        """Stripe totals that do not divide evenly across the rails."""
        session, channels = make_rail_session(rails=3)
        p0, p1 = session.processes
        ports0 = [p0.port(c) for c in channels]
        ports1 = [p1.port(c) for c in channels]
        sizes = [100_001, 7, 3_000_002]
        out = []

        def sender():
            for size in sizes:
                yield from striped_send(ports0, 1, ("blob", size), size)

        def receiver():
            for size in sizes:
                out.append((yield from striped_recv(ports1, size)))

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        session.run()
        assert out == [("blob", size) for size in sizes]

    def test_rail_dies_mid_message(self):
        """A rail's fabric dies while a striped transfer is in flight; the
        lost stripes are recovered through a surviving rail."""
        size = 2_000_000
        plan = FaultPlan(fabrics={"bip#1": fabric_death(us(500))}, seed=4)
        out, ins, channels = self._roundtrip_with_plan(2, size, plan)
        assert out == [b"data"]
        assert ins.metrics.total("failover.channels") == 1
        assert ins.metrics.total("transport.retransmits") > 0
        assert channels[1].dead and not channels[0].dead

    def test_single_surviving_rail_degradation(self):
        """With two of three rails dead, later transfers degrade onto the
        one survivor and still complete."""
        plan = FaultPlan(fabrics={"bip#1": fabric_death(us(200)),
                                  "bip#2": fabric_death(us(200))}, seed=4)
        out, ins, channels = self._roundtrip_with_plan(
            3, 300_000, plan, repeats=3)
        assert out == [b"data"] * 3
        assert ins.metrics.total("failover.channels") == 2
        assert [c.dead for c in channels] == [False, True, True]

    def test_all_rails_dead_raises(self):
        session, channels = make_rail_session(rails=2)
        for channel in channels:
            channel.dead = True
        p0 = session.processes[0]
        p0.runtime.spawn(striped_send([p0.port(c) for c in channels],
                                      1, b"x", 10))
        with pytest.raises(FailoverExhaustedError):
            session.run()


class TestChMadOnMultiRailNodes:
    def test_ch_mad_uses_first_rail(self):
        """ch_mad remains single-rail (per the paper); it must pick the
        base rail and still work on a multi-rail node."""
        from repro.cluster import ClusterConfig, MPIWorld, NodeSpec

        nodes = [NodeSpec(f"n{i}", networks=("bip", "bip#1"))
                 for i in range(2)]
        config = ClusterConfig(nodes=nodes, device="ch_mad")

        def program(mpi):
            comm = mpi.comm_world
            port = mpi.inter_device.select_port(1 - mpi.rank)
            if comm.rank == 0:
                yield from comm.send(b"multi-rail", dest=1)
                return port.channel.protocol
            data, _ = yield from comm.recv(source=0)
            return (port.channel.protocol, data)

        world = MPIWorld(config)
        results = world.run(program)
        assert results[0] == "bip"
        assert results[1] == ("bip", b"multi-rail")
        assert world.envs[0].inter_device.eager_threshold == 7 * 1024
