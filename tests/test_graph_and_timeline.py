"""Tests for graph topologies and the timeline analysis tool."""

import pytest

from repro.cluster import MPIWorld, paper_cluster
from repro.errors import MPIError
from repro.mpi.graph import GraphComm, create_graph
from repro.sim.engine import install_instrumentation
from tests.helpers import run_ranks


#: The MPI-1 standard's example graph: 0-1, 0-3, 1-0, 2-3, 3-0, 3-2.
RING_INDEX = (2, 3, 4, 6)
RING_EDGES = (1, 3, 0, 3, 0, 2)


class TestGraphComm:
    def test_standard_example_neighbors(self):
        def program(mpi):
            comm = mpi.comm_world
            graph = yield from create_graph(comm, RING_INDEX, RING_EDGES)
            return graph.neighbors

        results = run_ranks(program, nranks=4)
        assert results == [(1, 3), (0,), (3,), (0, 2)]

    def test_dims(self):
        def program(mpi):
            comm = mpi.comm_world
            graph = yield from create_graph(comm, RING_INDEX, RING_EDGES)
            return (graph.nnodes, graph.nedges,
                    [graph.neighbor_count(r) for r in range(4)])

        results = run_ranks(program, nranks=4)
        assert results[0] == (4, 6, [2, 1, 1, 2])

    def test_neighbor_exchange(self):
        def program(mpi):
            comm = mpi.comm_world
            graph = yield from create_graph(comm, RING_INDEX, RING_EDGES)
            got = yield from graph.neighbor_exchange(graph.rank * 10)
            return got

        results = run_ranks(program, nranks=4)
        assert results[0] == {1: 10, 3: 30}
        assert results[1] == {0: 0}
        assert results[3] == {0: 0, 2: 20}

    def test_bad_index_length(self):
        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPIError, match="index"):
                yield from create_graph(comm, (1, 2), (0, 1))
            yield from comm.barrier()

        run_ranks(program, nranks=4)

    def test_edge_out_of_range(self):
        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPIError, match="out of range"):
                yield from create_graph(comm, (1, 2), (1, 9))
            yield from comm.barrier()

        run_ranks(program, nranks=2)

    def test_decreasing_index_rejected(self):
        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPIError, match="non-decreasing"):
                yield from create_graph(comm, (2, 1), (0, 1, 0))
            yield from comm.barrier()

        run_ranks(program, nranks=2)


class TestTimeline:
    def _traced_run(self):
        world = MPIWorld(paper_cluster(nodes=2, networks=("sisci", "tcp")))
        install_instrumentation(world.engine).tracer

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"", dest=1, tag=1, size=100)
                yield from comm.send(b"", dest=1, tag=2, size=50_000)
            else:
                yield from comm.recv(source=0, tag=1)
                yield from comm.recv(source=0, tag=2)

        world.run(program)
        return world

    def test_cpu_report_lists_pollers(self):
        from repro.bench.timeline import cpu_report
        report = cpu_report(self._traced_run())
        assert "poll.sisci" in report
        assert "cpu (us)" in report

    def test_network_report_counts_traffic(self):
        from repro.bench.timeline import network_report
        report = network_report(self._traced_run())
        assert "sisci" in report and "tcp" in report

    def test_packet_mix(self):
        from repro.bench.timeline import packet_mix
        world = self._traced_run()
        report = packet_mix(world.engine.tracer.records)
        assert "MAD_SHORT_PKT" in report
        assert "MAD_RNDV_PKT" in report

    def test_message_timeline_histogram(self):
        from repro.bench.timeline import message_timeline
        world = self._traced_run()
        text = message_timeline(world.engine.tracer.records, bucket_us=50)
        assert "deliveries per 50 us bucket" in text
        assert "#" in text

    def test_message_timeline_empty(self):
        from repro.bench.timeline import message_timeline
        assert "no deliveries" in message_timeline([])

    def test_full_report(self):
        from repro.bench.timeline import full_report
        report = full_report(self._traced_run())
        assert "CPU attribution" in report
        assert "Network traffic" in report
        assert "ch_mad packet mix" in report
