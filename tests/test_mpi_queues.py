"""Unit tests for ADI queues, envelopes, and matching semantics."""

from hypothesis import given, settings, strategies as st

from repro.mpi.adi.packets import Envelope
from repro.mpi.adi.queues import (
    PostedQueue,
    UnexpectedEntry,
    UnexpectedKind,
    UnexpectedQueue,
)
from repro.mpi.adi.rhandle import RecvHandle
from repro.mpi.constants import ANY_SOURCE, ANY_TAG


def env(context=0, source=0, tag=0, size=0):
    return Envelope(context, source, tag, size)


class TestEnvelopeMatching:
    def test_exact_match(self):
        assert env(source=3, tag=7).matches(3, 7)

    def test_wildcards(self):
        assert env(source=3, tag=7).matches(ANY_SOURCE, 7)
        assert env(source=3, tag=7).matches(3, ANY_TAG)
        assert env(source=3, tag=7).matches(ANY_SOURCE, ANY_TAG)

    def test_mismatches(self):
        assert not env(source=3, tag=7).matches(4, 7)
        assert not env(source=3, tag=7).matches(3, 8)


class TestPostedQueue:
    def test_first_match_wins(self):
        q = PostedQueue()
        h1 = RecvHandle(0, ANY_SOURCE, ANY_TAG)
        h2 = RecvHandle(0, ANY_SOURCE, ANY_TAG)
        q.post(h1)
        q.post(h2)
        assert q.match(env()) is h1
        assert q.match(env()) is h2
        assert q.match(env()) is None

    def test_context_isolation(self):
        q = PostedQueue()
        handle = RecvHandle(5, ANY_SOURCE, ANY_TAG)
        q.post(handle)
        assert q.match(env(context=0)) is None
        assert q.match(env(context=5)) is handle

    def test_specific_source_skips_nonmatching(self):
        q = PostedQueue()
        h_for_2 = RecvHandle(0, 2, ANY_TAG)
        h_any = RecvHandle(0, ANY_SOURCE, ANY_TAG)
        q.post(h_for_2)
        q.post(h_any)
        assert q.match(env(source=1)) is h_any
        assert q.match(env(source=2)) is h_for_2

    def test_remove(self):
        q = PostedQueue()
        handle = RecvHandle(0, ANY_SOURCE, ANY_TAG)
        q.post(handle)
        assert q.remove(handle)
        assert not q.remove(handle)
        assert q.match(env()) is None


class TestUnexpectedQueue:
    def test_fifo_match_order(self):
        q = UnexpectedQueue()
        e1 = UnexpectedEntry(env(tag=1, size=4), UnexpectedKind.EAGER, data=b"a")
        e2 = UnexpectedEntry(env(tag=1, size=4), UnexpectedKind.EAGER, data=b"b")
        q.add(e1)
        q.add(e2)
        assert q.match(0, ANY_SOURCE, 1) is e1
        assert q.match(0, ANY_SOURCE, 1) is e2

    def test_peek_is_nondestructive(self):
        q = UnexpectedQueue()
        entry = UnexpectedEntry(env(), UnexpectedKind.EAGER, data=b"x")
        q.add(entry)
        assert q.peek(0, ANY_SOURCE, ANY_TAG) is entry
        assert len(q) == 1

    def test_buffered_bytes_accounting(self):
        q = UnexpectedQueue()
        q.add(UnexpectedEntry(env(size=100), UnexpectedKind.EAGER, data=b""))
        q.add(UnexpectedEntry(env(size=50), UnexpectedKind.RNDV_REQUEST))
        assert q.buffered_bytes == 100
        q.match(0, ANY_SOURCE, ANY_TAG)
        assert q.buffered_bytes == 0

    def test_tag_filtering(self):
        q = UnexpectedQueue()
        q.add(UnexpectedEntry(env(tag=1), UnexpectedKind.EAGER))
        q.add(UnexpectedEntry(env(tag=2), UnexpectedKind.EAGER))
        assert q.match(0, ANY_SOURCE, 2).envelope.tag == 2
        assert q.match(0, ANY_SOURCE, 2) is None


class TestMatchingProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_posted_matching_preserves_post_order_per_pattern(self, arrivals):
        """For any arrival sequence, matches come out in post order."""
        q = PostedQueue()
        handles = []
        for i in range(10):
            h = RecvHandle(0, ANY_SOURCE, ANY_TAG)
            h.order = i
            q.post(h)
            handles.append(h)
        matched = []
        for source, tag in arrivals:
            h = q.match(env(source=source, tag=tag))
            if h is not None:
                matched.append(h.order)
        assert matched == sorted(matched)

    @given(st.lists(st.integers(0, 2), min_size=0, max_size=12),
           st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_unexpected_match_returns_oldest_matching_tag(self, tags, want):
        q = UnexpectedQueue()
        for i, tag in enumerate(tags):
            q.add(UnexpectedEntry(env(tag=tag, size=i), UnexpectedKind.EAGER))
        entry = q.match(0, ANY_SOURCE, want)
        expected = next((i for i, t in enumerate(tags) if t == want), None)
        if expected is None:
            assert entry is None
        else:
            assert entry.envelope.size == expected
