"""Unit tests for the network substrate (fabric, endpoints, cost models)."""

import pytest

from repro.errors import NetworkError, RouteError
from repro.marcel import MarcelRuntime, PollMode
from repro.networks import (
    BIP_MYRINET,
    BipEndpoint,
    MemoryModel,
    NetworkFabric,
    SISCI_SCI,
    SisciEndpoint,
    TCP_FAST_ETHERNET,
    TcpEndpoint,
)
from repro.networks.params import MemoryParams, ProtocolParams
from repro.sim import Engine, wait
from repro.units import us


@pytest.fixture
def engine():
    return Engine()


def simple_params(**overrides):
    defaults = dict(
        name="testnet",
        send_overhead=100,
        cpu_send_ns_per_byte=0.0,
        wire_latency=1000,
        wire_ns_per_byte=10.0,
        chunk_size=1024,
    )
    defaults.update(overrides)
    return ProtocolParams(**defaults)


class TestMemoryModel:
    def test_zero_copy_is_free(self):
        assert MemoryModel().copy_cost(0) == 0

    def test_cost_is_affine(self):
        mem = MemoryModel(MemoryParams(copy_overhead=100, copy_ns_per_byte=2.0))
        assert mem.copy_cost(10) == 100 + 20
        assert mem.copy_cost(1000) == 100 + 2000

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().copy_cost(-1)

    def test_bandwidth_report(self):
        mem = MemoryModel(MemoryParams(copy_overhead=0, copy_ns_per_byte=5.0))
        assert mem.copy_bandwidth_mb_s() == pytest.approx(200.0)


class TestProtocolParams:
    def test_chunks_small_message_single_chunk(self):
        p = simple_params(chunk_size=1024)
        assert p.chunks(10) == [10]
        assert p.chunks(1024) == [1024]
        assert p.chunks(0) == [0]

    def test_chunks_large_message(self):
        p = simple_params(chunk_size=1000)
        assert p.chunks(2500) == [1000, 1000, 500]

    def test_wire_time_includes_header(self):
        p = simple_params(wire_ns_per_byte=10.0, wire_header_bytes=50)
        assert p.wire_time(100) == 1500


class TestFabric:
    def test_point_to_point_delivery_time(self, engine):
        fabric = NetworkFabric(engine, simple_params())
        a = fabric.attach("A")
        b = fabric.attach("B")
        arrivals = []
        b.rx_sink = lambda d: arrivals.append((d.payload, engine.now))
        fabric.transmit_message(a, b, nbytes=100, payload="hello")
        engine.run()
        # 100 B * 10 ns + 1000 ns latency.
        assert arrivals == [("hello", 2000)]

    def test_serialization_queues_back_to_back(self, engine):
        fabric = NetworkFabric(engine, simple_params())
        a, b = fabric.attach("A"), fabric.attach("B")
        arrivals = []
        b.rx_sink = lambda d: arrivals.append((d.payload, engine.now))
        fabric.transmit_message(a, b, 100, "m1")  # wire 1000 ns
        fabric.transmit_message(a, b, 100, "m2")  # queued behind m1
        engine.run()
        assert arrivals == [("m1", 2000), ("m2", 3000)]

    def test_chunked_message_arrival_is_last_chunk(self, engine):
        fabric = NetworkFabric(engine, simple_params(chunk_size=100))
        a, b = fabric.attach("A"), fabric.attach("B")
        arrivals = []
        b.rx_sink = lambda d: arrivals.append(engine.now)
        fabric.transmit_message(a, b, 250, "big")
        engine.run()
        # Three chunks serialize back-to-back: 2500 ns + 1000 latency.
        assert arrivals == [3500]

    def test_delivery_records_metadata(self, engine):
        fabric = NetworkFabric(engine, simple_params())
        a, b = fabric.attach("A"), fabric.attach("B")
        seen = []
        b.rx_sink = seen.append
        fabric.transmit_message(a, b, 64, "x")
        engine.run()
        (d,) = seen
        assert d.source is a and d.dest is b
        assert d.nbytes == 64
        assert d.sent_at == 0
        assert d.delivered_at == engine.now
        assert a.messages_sent == 1 and b.messages_received == 1
        assert a.bytes_sent == 64 and b.bytes_received == 64

    def test_cross_fabric_route_rejected(self, engine):
        f1 = NetworkFabric(engine, simple_params())
        f2 = NetworkFabric(engine, simple_params())
        a, b = f1.attach("A"), f2.attach("B")
        with pytest.raises(RouteError):
            f1.transmit_chunk(a, b, 10)

    def test_self_route_rejected(self, engine):
        fabric = NetworkFabric(engine, simple_params())
        a = fabric.attach("A")
        with pytest.raises(RouteError):
            fabric.transmit_chunk(a, a, 10)

    def test_missing_rx_sink_raises(self, engine):
        fabric = NetworkFabric(engine, simple_params())
        a, b = fabric.attach("A"), fabric.attach("B")
        fabric.transmit_message(a, b, 10, "x")
        with pytest.raises(NetworkError, match="rx_sink"):
            engine.run()


class TestEndpointSend:
    def _wire_up(self, engine, params, endpoint_cls):
        fabric = NetworkFabric(engine, params)
        src = endpoint_cls(engine, fabric)
        dst = endpoint_cls(engine, fabric)
        runtime = MarcelRuntime(engine, "sender", switch_cost=0)
        return src, dst, runtime

    def test_sisci_send_delivers_payload(self, engine):
        src, dst, runtime = self._wire_up(engine, SISCI_SCI, SisciEndpoint)
        received = []

        def sender():
            yield from src.send_message(dst, 64, payload="sci-data")

        def receiver():
            delivery = yield wait(dst.rx_mailbox)
            received.append((delivery.payload, delivery.nbytes))

        rt2 = MarcelRuntime(engine, "receiver", switch_cost=0)
        runtime.spawn(sender)
        rt2.spawn(receiver)
        engine.run()
        assert received == [("sci-data", 64)]

    def test_send_charges_sender_cpu(self, engine):
        src, dst, runtime = self._wire_up(engine, SISCI_SCI, SisciEndpoint)

        def sender():
            yield from src.send_message(dst, 4, payload=None)

        runtime.spawn(sender)
        dst.adapter.rx_sink = lambda d: None
        engine.run()
        # send_overhead + 4 bytes of PIO.
        expected = SISCI_SCI.send_overhead + round(4 * SISCI_SCI.cpu_send_ns_per_byte)
        assert runtime.cpu.busy_time == expected

    def test_pipelined_send_overlaps_cpu_and_wire(self, engine):
        # Large TCP send: total time ~ max(cpu, wire) per chunk, not sum.
        src, dst, runtime = self._wire_up(engine, TCP_FAST_ETHERNET, TcpEndpoint)
        arrivals = []
        dst.adapter.rx_sink = lambda d: arrivals.append(engine.now)
        n = 1_000_000

        def sender():
            yield from src.send_message(dst, n, payload=None)

        runtime.spawn(sender)
        engine.run()
        wire_only = TCP_FAST_ETHERNET.wire_time(TCP_FAST_ETHERNET.chunk_size)
        nchunks = len(TCP_FAST_ETHERNET.chunks(n))
        # Arrival should be close to pure wire serialization (pipelined),
        # far below wire+cpu fully serialized.
        assert arrivals
        serialized_all = nchunks * wire_only
        assert arrivals[0] < serialized_all * 1.15
        assert arrivals[0] > serialized_all * 0.95

    def test_bip_long_message_pays_handshake(self, engine):
        src, dst, runtime = self._wire_up(engine, BIP_MYRINET, BipEndpoint)
        arrivals = {}

        def run_one(size, key):
            local_engine = Engine()
            fabric = NetworkFabric(local_engine, BIP_MYRINET)
            s = BipEndpoint(local_engine, fabric)
            d = BipEndpoint(local_engine, fabric)
            d.adapter.rx_sink = lambda dv: arrivals.__setitem__(key, local_engine.now)
            rt = MarcelRuntime(local_engine, "s", switch_cost=0)

            def sender():
                yield from s.send_message(d, size, payload=None)

            rt.spawn(sender)
            local_engine.run()

        run_one(1023, "short")
        run_one(1024, "long")
        # The long path pays extra send overhead + extra latency, so the
        # 1-byte-larger message arrives much later: the 1 KB dip.
        gap = arrivals["long"] - arrivals["short"]
        assert gap > BIP_MYRINET.long_extra_send + BIP_MYRINET.long_extra_latency


class TestPollSources:
    def test_tcp_poll_source_is_periodic(self, engine):
        fabric = NetworkFabric(engine, TCP_FAST_ETHERNET)
        ep = TcpEndpoint(engine, fabric)
        source = ep.poll_source()
        assert source.mode is PollMode.PERIODIC
        assert source.period == TCP_FAST_ETHERNET.poll_period
        assert source.mailbox is ep.rx_mailbox

    def test_sisci_poll_source_is_event(self, engine):
        fabric = NetworkFabric(engine, SISCI_SCI)
        ep = SisciEndpoint(engine, fabric)
        assert ep.poll_source().mode is PollMode.EVENT

    def test_recv_cost_scales_with_bytes(self, engine):
        params = simple_params(recv_overhead=500, cpu_recv_ns_per_byte=2.0)
        fabric = NetworkFabric(engine, params)
        ep = TcpEndpoint(engine, fabric)
        assert ep.recv_cost(0) == 500
        assert ep.recv_cost(1000) == 500 + 2000
