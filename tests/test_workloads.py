"""The unified workload registry: one registration, every front end.

Covers the PR's API contract:

- round-trip: ``run`` (direct), the ``workload`` job kind (sweep/cache
  path) and ``repro.check.fuzz`` (fuzz path) all resolve the *same*
  registered workload and agree on its results;
- parameter schema: defaults resolve, overrides apply, typos raise;
- macro-workloads: same-seed bit-determinism for ``ml_training`` and
  ``cfd_halo``, and the differential claim that the hierarchical
  allreduce matches the flat one element for element on the integer
  gradients;
- legacy surface: ``repro.check.workloads`` / ``repro.runner.jobs``
  re-export the same registry objects.
"""

import numpy as np
import pytest

import repro.workloads as workloads
from repro.errors import ConfigurationError
from repro.mpi import coll
from repro.mpi.reduce_ops import SUM
from repro.runner import JobSpec, Runner
from repro.workloads import Param, Workload
from repro.workloads.ml_training import (
    _grad,
    gradient_buckets,
    model_layers,
)
from tests.helpers import run_ranks


# ---------------------------------------------------------------------------
# the protocol
# ---------------------------------------------------------------------------

def test_params_resolve_defaults_overrides_and_typos():
    wl = workloads.get("ml_training")
    resolved = wl.resolve()
    assert resolved["ranks"] == 8 and resolved["algorithm"] == "hier"
    assert wl.resolve({"ranks": 64})["ranks"] == 64
    with pytest.raises(ConfigurationError, match="no parameter 'rnaks'"):
        wl.resolve({"rnaks": 64})


def test_legacy_positional_workload_shape_still_works():
    # The pre-unification fuzz workloads were (name, description, build)
    # triples; the unified dataclass keeps that positional prefix.
    wl = Workload("tmp", "desc", lambda seed: (None, None))
    assert wl.params == {} and "fuzz" in wl.tags
    assert wl.resolve() == {}


def test_register_rejects_duplicates():
    with pytest.raises(ConfigurationError, match="already registered"):
        workloads.register(Workload("pingpong", "dup", lambda seed: None))


def test_unknown_workload_error_lists_the_registry():
    with pytest.raises(ConfigurationError, match="ml_training"):
        workloads.get("no_such_workload")


def test_tags_partition_the_registry():
    assert set(workloads.names("macro")) == {"ml_training", "cfd_halo"}
    assert set(workloads.names("fuzz")) == set(workloads.names())


# ---------------------------------------------------------------------------
# round-trip: run / sweep / fuzz resolve the same workload
# ---------------------------------------------------------------------------

def _planted_build(seed, *, scale=3):
    from tests.helpers import linear_cluster

    def program(mpi):
        comm = mpi.comm_world
        total = yield from comm.allreduce((comm.rank + seed) * scale, SUM)
        return total

    return linear_cluster(2), program


def test_round_trip_run_sweep_fuzz_resolve_one_registration():
    workloads.WORKLOADS["planted"] = Workload(
        "planted", "round-trip probe", _planted_build,
        params={"scale": Param(3, "multiplier")})
    try:
        # 1. the direct path
        direct = workloads.run("planted", seed=1)
        assert direct.results == [9, 9]  # (0+1)*3 + (1+1)*3 on both ranks

        # 2. the runner path (the `workload` job kind), with a cache
        spec = JobSpec(kind="workload", seed=1,
                       params={"workload": "planted", "scale": 3})
        result = Runner(workers=1).run([spec])[0]
        assert result.ok
        assert result.payload["result_digest"] == direct.digest
        assert result.payload["params"] == {"scale": 3}

        # 3. the fuzz path
        from repro.check.fuzz import run_workload
        fuzzed = run_workload("planted", fuzz_seed=2, workload_seed=1)
        assert fuzzed.ok
        assert fuzzed.results == direct.results
    finally:
        del workloads.WORKLOADS["planted"]


def test_workload_job_kind_caches_content_addressed(tmp_path):
    spec = JobSpec(kind="workload", seed=0,
                   params={"workload": "cfd_halo", "iters": 2})
    first = Runner(workers=1, cache=str(tmp_path)).run([spec])[0]
    second = Runner(workers=1, cache=str(tmp_path)).run([spec])[0]
    assert first.ok and second.ok
    assert not first.cached and second.cached
    assert first.payload == second.payload


def test_workload_kind_rejects_bad_parameters():
    spec = JobSpec(kind="workload",
                   params={"workload": "ml_training", "rnaks": 4})
    result = Runner(workers=1).run([spec])[0]
    assert not result.ok
    assert "no parameter" in str(result.error)


# ---------------------------------------------------------------------------
# macro-workloads: determinism and the differential claim
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["ml_training", "cfd_halo"])
def test_macro_same_seed_bit_determinism(name):
    first = workloads.run(name, seed=4)
    again = workloads.run(name, seed=4)
    assert first.digest == again.digest
    assert first.results == again.results
    assert first.time_ns == again.time_ns
    other = workloads.run(name, seed=5)
    assert other.digest != first.digest  # the seed genuinely reshapes it


@pytest.mark.parametrize("name", ["ml_training", "cfd_halo"])
def test_macro_workloads_are_checker_clean(name):
    outcome = workloads.run(name, seed=0, check=True)
    assert outcome.violations == ()


def test_ml_training_hier_matches_flat_results():
    hier = workloads.run("ml_training", seed=2)
    flat = workloads.run("ml_training", seed=2,
                         params={"algorithm": "default"})
    blocking = workloads.run("ml_training", seed=2,
                             params={"overlap": False})
    assert hier.results == flat.results == blocking.results


def test_ml_training_hier_matches_flat_element_for_element():
    # Stronger than checksum equality: reduce the workload's own gradient
    # arrays under both algorithms and compare every element.
    sizes = model_layers(2, 12)
    buckets = gradient_buckets(sizes, 32 * 1024)
    bucket_bytes = sum(sizes[layer] for layer in buckets[0])
    hier_fn = coll.get("allreduce", "hier").fn
    flat_fn = coll.get("allreduce", "default").fn

    def program(mpi):
        comm = mpi.comm_world
        grad = _grad(bucket_bytes // 8, comm.rank, step=0, bucket=0)
        via_hier = yield from hier_fn(comm, grad, SUM)
        via_flat = yield from flat_fn(comm, grad, SUM)
        return np.array_equal(np.asarray(via_hier), np.asarray(via_flat))

    assert all(run_ranks(program, nranks=4))


def test_cfd_halo_graph_topology_is_deterministic_too():
    first = workloads.run("cfd_halo", seed=1, params={"topology": "graph"})
    again = workloads.run("cfd_halo", seed=1, params={"topology": "graph"})
    assert first.digest == again.digest


def test_macro_workloads_fuzz_clean():
    from repro.check.fuzz import run_sweep

    failures = run_sweep(["ml_training", "cfd_halo"], range(2),
                         out=lambda _line: None)
    assert failures == []


# ---------------------------------------------------------------------------
# legacy surface
# ---------------------------------------------------------------------------

def test_legacy_modules_reexport_the_same_objects():
    from repro.check import workloads as legacy_workloads
    from repro.runner import jobs as legacy_jobs
    from repro.workloads import executors

    assert legacy_workloads.WORKLOADS is workloads.WORKLOADS
    assert legacy_workloads.Workload is Workload
    assert legacy_jobs.EXECUTORS is executors.EXECUTORS
    assert legacy_jobs.execute is executors.execute


def test_metrics_of_interest_reported_when_instrumented():
    outcome = workloads.run("cfd_halo", seed=0, instrumentation=True)
    assert set(outcome.metrics) == {"chmad.packets", "mad.bytes",
                                    "rdma.writes"}
    assert outcome.metrics["chmad.packets"] > 0
    bare = workloads.run("cfd_halo", seed=0)
    assert bare.metrics == {}
    assert bare.digest == outcome.digest  # instrumentation is invisible
