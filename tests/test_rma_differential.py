"""Differential tests: rendezvous-over-RDMA vs the packetized path.

The ``rdma`` toggle on :class:`ClusterConfig` selects the machinery
underneath an unchanged program — large IB messages either take the
zero-copy RDMA write path (request/ack/one RDMA write) or the classic
ch_mad packet state machine.  The contract tested here: the toggle may
change *timing and packets*, never *bytes or statuses*.
"""

from __future__ import annotations

import pytest

from repro.check.fuzz import run_workload
from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.faults import lossy_plan
from repro.sim.engine import EngineConfig

#: Sizes straddling the 16 KiB IB switch point: eager, boundary, and
#: deep rendezvous territory.
SIZES = (0, 64, 4096, 16_383, 16_384, 16_385, 60_000, 200_000)


def _ib_pair(rdma: bool, fault_plan=None) -> ClusterConfig:
    return ClusterConfig(
        nodes=[NodeSpec("n0", networks=("ib",)),
               NodeSpec("n1", networks=("ib",))],
        rdma=rdma, fault_plan=fault_plan)


def _pingpong(mpi):
    comm = mpi.comm_world
    me, peer = comm.rank, 1 - comm.rank
    out = []
    for size in SIZES:
        payload = bytes([(size + me) % 256]) * size
        if me == 0:
            yield from comm.send(payload, dest=peer, tag=7, size=size)
            data, status = yield from comm.recv(source=peer, tag=7, size=size)
        else:
            data, status = yield from comm.recv(source=peer, tag=7, size=size)
            yield from comm.send(payload, dest=peer, tag=7, size=size)
        out.append((size, data, status.source, status.tag, status.count))
    return tuple(out)


def test_rdma_vs_packetized_byte_identical():
    """Same program, both machineries: identical payloads and statuses."""
    runs = {}
    for rdma in (True, False):
        world = MPIWorld(_ib_pair(rdma),
                         engine_config=EngineConfig(checker=True))
        runs[rdma] = world.run(_pingpong)
        assert world.engine.checker.violations == []
    assert runs[True] == runs[False]
    # Sanity: payloads actually round-tripped.
    for size, data, source, _tag, count in runs[True][0]:
        assert (len(data) if data else 0) == size == count
        assert source == 1


def test_rdma_packets_replace_rndv_above_threshold():
    """RDMA on: large messages use the REQ/ACK/DATA RDMA packets and no
    MAD_RNDV_PKT body packets; RDMA off: the classic handshake."""
    seen = {}
    for rdma in (True, False):
        world = MPIWorld(_ib_pair(rdma),
                         engine_config=EngineConfig(checker=True))
        world.run(_pingpong)
        seen[rdma] = world.engine.checker.packets_seen
    rdma_big = sum(1 for s in SIZES if s > 16_384) * 2  # both directions
    # 16_384 itself is eager (threshold is "size <= threshold -> eager").
    assert seen[True]["MAD_RDMA_REQ_PKT"] == rdma_big
    assert seen[True]["MAD_RDMA_ACK_PKT"] == rdma_big
    assert seen[True]["MAD_RDMA_DATA_PKT"] == rdma_big
    assert "MAD_RNDV_PKT" not in seen[True]
    assert "MAD_REQUEST_PKT" not in seen[True]
    assert seen[False]["MAD_REQUEST_PKT"] == rdma_big
    assert seen[False]["MAD_RNDV_PKT"] >= rdma_big
    assert "MAD_RDMA_REQ_PKT" not in seen[False]
    # The eager sizes are identical either way.
    assert seen[True]["MAD_SHORT_PKT"] == seen[False]["MAD_SHORT_PKT"]


def test_rdma_rendezvous_survives_lossy_ib():
    """Drops on the IB fabric hit RDMA writes, acks and control packets;
    the RC retransmission model must make the loss invisible."""
    world = MPIWorld(
        _ib_pair(True, fault_plan=lossy_plan(0.08, fabrics=("ib",), seed=3)),
        engine_config=EngineConfig(checker=True))
    results = world.run(_pingpong)
    assert world.engine.checker.violations == []
    for rank_result in results:
        for size, data, _source, _tag, count in rank_result:
            assert (len(data) if data else 0) == size == count


@pytest.mark.parametrize("op", ["put", "get"])
def test_window_traffic_rdma_vs_packetized(op):
    """One-sided put/get round trips are byte-identical under both
    machineries (the get additionally swaps agent-reply for rdma_read)."""

    def program(mpi):
        comm = mpi.comm_world
        me, peer = comm.rank, 1 - comm.rank
        win = yield from comm.win_create(70_000)
        win.buffer[:] = (me + 1)
        yield from win.fence()
        if op == "put":
            yield from win.put(peer, 100, bytes([0xC0 + me]) * 60_000)
            yield from win.fence()
            got = bytes(win.buffer[100:60_100])
        else:
            result = yield from win.get(peer, 0, 60_000)
            yield from win.fence()
            got = result.data
        yield from win.free()
        return got

    runs = {}
    for rdma in (True, False):
        world = MPIWorld(_ib_pair(rdma),
                         engine_config=EngineConfig(checker=True))
        runs[rdma] = world.run(program)
        assert world.engine.checker.violations == []
    assert runs[True] == runs[False]
    expected = {
        "put": [bytes([0xC1]) * 60_000, bytes([0xC0]) * 60_000],
        "get": [bytes([2]) * 60_000, bytes([1]) * 60_000],
    }[op]
    assert runs[True] == expected


def test_rma_storm_same_seed_bit_deterministic():
    """Two same-seed rma_storm runs produce identical trace digests and
    identical results (the PR's bit-determinism acceptance criterion)."""
    first = run_workload("rma_storm", fuzz_seed=11, workload_seed=2)
    second = run_workload("rma_storm", fuzz_seed=11, workload_seed=2)
    assert first.ok and second.ok
    assert first.digest == second.digest
    assert first.results == second.results
