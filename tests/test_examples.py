"""Smoke tests: every example must run end-to-end and self-verify.

The examples contain their own assertions (serial-reference checks,
topology checks), so importing and running main() is a meaningful
integration test of the whole stack.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "per-rank results: [0, 1]" in out


def test_heat_diffusion(capsys):
    run_example("heat_diffusion.py")
    out = capsys.readouterr().out
    assert "max |parallel - serial| = 0.00e+00" in out
    assert "all three networks" in out


def test_parallel_matvec(capsys):
    run_example("parallel_matvec.py")
    out = capsys.readouterr().out
    assert "max |parallel - serial|" in out


def test_master_worker(capsys):
    run_example("master_worker.py")
    out = capsys.readouterr().out
    assert "verified against the serial reference" in out


def test_observability_demo(capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    run_example("observability_demo.py", ["--out", str(out_file)])
    out = capsys.readouterr().out
    assert "Metrics: multi-protocol TCP+SCI run" in out
    assert "chmad.packets" in out
    assert "MAD_SHORT_PKT" in out
    assert "Chrome trace:" in out
    assert out_file.exists()


def test_pingpong_cli(capsys):
    run_example("pingpong.py", ["--network", "sisci", "--sizes", "4", "1024",
                                "--reps", "3"])
    out = capsys.readouterr().out
    assert "ch_mad over sisci" in out
    assert "1024" in out


def test_pingpong_cli_raw(capsys):
    run_example("pingpong.py", ["--raw", "--network", "bip",
                                "--sizes", "4", "--reps", "2"])
    out = capsys.readouterr().out
    assert "raw Madeleine over bip" in out


def test_pingpong_cli_secondary(capsys):
    run_example("pingpong.py", ["--network", "sisci", "--secondary", "tcp",
                                "--sizes", "4", "--reps", "2"])
    out = capsys.readouterr().out
    assert "(+tcp polling thread)" in out


@pytest.mark.slow
def test_cluster_of_clusters(capsys):
    run_example("cluster_of_clusters.py")
    out = capsys.readouterr().out
    assert "elected eager/rendezvous switch point: 8192 bytes" in out


@pytest.mark.slow
def test_reproduce_paper_tables(capsys):
    run_example("reproduce_paper.py", ["tables"])
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out
    assert "DEVIATES" not in out


def test_fault_tolerance_demo(capsys):
    run_example("fault_tolerance_demo.py")
    out = capsys.readouterr().out
    assert "the whole SCI fabric dies" in out
    assert "channel failover events" in out
    assert "byte-identical" in out


def test_shrink_and_continue_demo(capsys):
    run_example("shrink_and_continue_demo.py")
    out = capsys.readouterr().out
    assert "what the rank death cost" in out
    assert "every survivor saw ERR_PROC_FAILED(failed=2)" in out
    assert "recovery is deterministic" in out


def test_trace_analysis(capsys):
    run_example("trace_analysis.py")
    out = capsys.readouterr().out
    assert "CPU attribution" in out
    assert "MAD_RNDV_PKT" in out


def test_heat2d_cart(capsys):
    run_example("heat2d_cart.py")
    out = capsys.readouterr().out
    assert "max |parallel - serial| = 0.00e+00" in out


def test_ml_training_demo(capsys):
    run_example("ml_training_demo.py")
    out = capsys.readouterr().out
    assert "all three variants agree on every per-step checksum" in out
    assert "speedup over naive" in out


def test_cfd_halo_demo(capsys):
    run_example("cfd_halo_demo.py")
    out = capsys.readouterr().out
    assert "RDMA-sized" in out
    assert "deterministic: seed 3 reproduces digest" in out
