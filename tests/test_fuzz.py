"""Schedule fuzzer: determinism, divergence, and the sweep harness.

The contract under test:

- one fuzz seed is one schedule — re-running ``(workload, seed)``
  reproduces the trace digest bit for bit (that's what makes the
  one-line repro command trustworthy);
- different fuzz seeds genuinely explore different interleavings
  (digests diverge) while user-visible results stay identical;
- the sweep harness catches both checker violations and
  schedule-dependent results, and prints the repro command.
"""

from repro.check import fuzz as fuzz_mod
from repro.check import workloads as workloads_mod
from repro.check.fuzz import ScheduleFuzz, install_fuzz, run_sweep, run_workload
from repro.check.workloads import WORKLOADS, Workload
from repro.cluster import ClusterConfig, NodeSpec
from repro.sim import Engine


# ---------------------------------------------------------------------------
# the fuzzer itself
# ---------------------------------------------------------------------------

def test_install_fuzz_attaches_to_engine():
    engine = Engine()
    assert engine.fuzz is None
    fuzz = install_fuzz(engine, 7)
    assert engine.fuzz is fuzz
    assert fuzz.seed == 7
    assert fuzz.decisions == 0


def test_fuzz_draws_are_seed_deterministic():
    draws = []
    for _ in range(2):
        fuzz = ScheduleFuzz(Engine(), 11)
        draws.append(([fuzz.spawn_jitter() for _ in range(20)],
                      [fuzz.poller_phase("tcp@0") for _ in range(3)]))
    assert draws[0] == draws[1]
    other = ScheduleFuzz(Engine(), 12)
    assert [other.spawn_jitter() for _ in range(20)] != draws[0][0]


def test_poller_phase_is_per_name():
    fuzz = ScheduleFuzz(Engine(), 3)
    # Drawn from per-name namespaces: construction order cannot shift
    # one poller's phase by creating another first.
    first = fuzz.poller_phase("sci@0")
    fuzz.poller_phase("tcp@0")
    assert ScheduleFuzz(Engine(), 3).poller_phase("sci@0") == first


def test_ready_rotation_applies_at_configured_rate():
    from collections import deque
    fuzz = ScheduleFuzz(Engine(), 5, ready_rate=1.0)
    ready = deque(["a", "b", "c"])
    fuzz.perturb_ready(ready)
    assert list(ready) == ["b", "c", "a"]
    assert fuzz.decisions == 1
    never = ScheduleFuzz(Engine(), 5, ready_rate=0.0)
    ready = deque(["a", "b", "c"])
    never.perturb_ready(ready)
    assert list(ready) == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# seed-sweep determinism on the bundled workloads
# ---------------------------------------------------------------------------

def test_same_seed_reproduces_the_trace_bit_for_bit():
    first = run_workload("mixed", fuzz_seed=5)
    second = run_workload("mixed", fuzz_seed=5)
    assert first.ok and second.ok
    assert first.digest == second.digest
    assert first.results == second.results
    assert first.time_ns == second.time_ns
    assert first.decisions == second.decisions


def test_fuzz_seeds_change_the_schedule_not_the_results():
    runs = [run_workload("mixed", fuzz_seed=seed) for seed in range(3)]
    assert all(run.ok for run in runs)
    assert all(run.decisions > 0 for run in runs)
    # Schedules genuinely differ...
    assert len({run.digest for run in runs}) > 1
    # ...while every rank's user-visible result is identical.
    assert runs[0].results == runs[1].results == runs[2].results


def test_unfuzzed_run_is_the_deterministic_baseline():
    plain = run_workload("mixed", fuzz_seed=None)
    again = run_workload("mixed", fuzz_seed=None)
    assert plain.ok
    assert plain.decisions == 0
    assert plain.digest == again.digest
    fuzzed = run_workload("mixed", fuzz_seed=1)
    assert fuzzed.results == plain.results


def test_workloads_registry_is_complete():
    assert set(WORKLOADS) == {"pingpong", "collectives", "hier_collectives",
                              "multilane", "mixed", "lossy", "rank_death",
                              "rma_storm", "ml_training", "cfd_halo"}
    for workload in WORKLOADS.values():
        assert workload.description
        assert "fuzz" in workload.tags  # every bundled workload is fuzzable


# ---------------------------------------------------------------------------
# the sweep harness
# ---------------------------------------------------------------------------

def test_sweep_smoke_is_clean():
    lines = []
    failures = run_sweep(["mixed"], range(3), out=lines.append)
    assert failures == []
    assert len(lines) == 3
    assert all(line.startswith("ok   mixed seed=") for line in lines)


def _leaky_build(workload_seed):
    del workload_seed
    config = ClusterConfig(
        nodes=[NodeSpec(f"n{i}", networks=("sisci",)) for i in range(2)])

    def program(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        if comm.rank == 0:
            comm.irecv(source=1, tag=2)  # leaked on purpose

    return config, program


def test_sweep_reports_violation_with_repro_line(tmp_path):
    WORKLOADS["leaky"] = Workload("leaky", "planted leak", _leaky_build)
    try:
        lines = []
        failures = run_sweep(["leaky"], [4], artifacts_dir=str(tmp_path),
                             out=lines.append)
    finally:
        del WORKLOADS["leaky"]
    assert len(failures) == 1
    failure = failures[0]
    assert failure.kind == "violation"
    assert "finalize-leak" in failure.detail
    assert failure.repro == ("python -m repro fuzz "
                             "--workload leaky --seed 4")
    assert any(line.startswith("REPRO: ") for line in lines)
    artifact = tmp_path / "leaky-seed4.txt"
    assert artifact.exists()
    content = artifact.read_text()
    assert "REPRO:" in content
    assert "trace (" in content


def _timing_leak_build(workload_seed):
    # A program whose "result" includes virtual time: schedule-dependent
    # by construction, so the sweep's cross-seed comparison must flag it.
    config, program = WORKLOADS["mixed"].build(workload_seed)

    def wrapped(mpi):
        result = yield from program(mpi)
        return (result, mpi.process.engine.now)

    return config, wrapped


def test_sweep_flags_schedule_dependent_results():
    WORKLOADS["timing"] = Workload("timing", "planted timing leak",
                                   _timing_leak_build)
    try:
        failures = run_sweep(["timing"], range(3), out=lambda _line: None)
    finally:
        del WORKLOADS["timing"]
    assert failures
    assert all(f.kind == "results-diverge" for f in failures)
    assert "changed with the schedule" in failures[0].detail


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------

def test_cli_list_and_single_seed(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["fuzz", "--list"]) == 0
    listing = capsys.readouterr().out
    for name in WORKLOADS:
        assert name in listing
    assert cli_main(["fuzz", "--workload", "mixed", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "ok   mixed seed=2" in out
    assert "all 1 runs clean" in out


def test_legacy_fuzz_module_cli_is_gone():
    # The `python -m repro.check.fuzz` shim graduated out of existence;
    # the consolidated CLI owns the subcommand now.
    assert not hasattr(fuzz_mod, "main")


def test_module_reexports_are_consistent():
    # fuzz.py resolves workloads lazily (import-cycle discipline) — make
    # sure both legacy modules and the unified registry share one object.
    assert fuzz_mod is not None
    import repro.workloads as unified
    from repro.check.workloads import WORKLOADS as again
    assert again is workloads_mod.WORKLOADS
    assert again is unified.WORKLOADS
