"""Unit tests for the CPU scheduler and coroutine tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CPU,
    Engine,
    Semaphore,
    TaskState,
    charge,
    now,
    sleep,
    wait,
    yield_cpu,
)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def cpu(engine):
    return CPU(engine, name="test-cpu")


def test_task_runs_to_completion(engine, cpu):
    seen = []

    def body():
        seen.append("start")
        yield charge(100)
        seen.append("end")

    task = cpu.spawn(body)
    engine.run()
    assert seen == ["start", "end"]
    assert task.state is TaskState.DONE
    assert engine.now == 100


def test_task_return_value(engine, cpu):
    def body():
        yield charge(1)
        return 42

    task = cpu.spawn(body)
    engine.run()
    assert task.result == 42


def test_charge_holds_the_cpu(engine, cpu):
    """While one task charges, another ready task must not run."""
    order = []

    def long_worker():
        order.append(("long-start", engine.now))
        yield charge(1000)
        order.append(("long-end", engine.now))

    def short_worker():
        order.append(("short-start", engine.now))
        yield charge(10)
        order.append(("short-end", engine.now))

    cpu.spawn(long_worker)
    cpu.spawn(short_worker)
    engine.run()
    assert order == [
        ("long-start", 0),
        ("long-end", 1000),
        ("short-start", 1000),
        ("short-end", 1010),
    ]


def test_sleep_releases_the_cpu(engine, cpu):
    order = []

    def sleeper():
        yield sleep(1000)
        order.append(("sleeper", engine.now))

    def worker():
        yield charge(10)
        order.append(("worker", engine.now))

    cpu.spawn(sleeper)
    cpu.spawn(worker)
    engine.run()
    assert order == [("worker", 10), ("sleeper", 1000)]


def test_zero_charge_is_free(engine, cpu):
    def body():
        yield charge(0)
        yield charge(0)

    cpu.spawn(body)
    engine.run()
    assert engine.now == 0


def test_get_time_syscall(engine, cpu):
    times = []

    def body():
        times.append((yield now()))
        yield charge(500)
        times.append((yield now()))

    cpu.spawn(body)
    engine.run()
    assert times == [0, 500]


def test_yield_cpu_round_robins(engine, cpu):
    order = []

    def worker(label):
        for _ in range(3):
            order.append(label)
            yield yield_cpu()

    cpu.spawn(worker("a"))
    cpu.spawn(worker("b"))
    engine.run()
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_join_returns_result(engine, cpu):
    results = []

    def child():
        yield charge(100)
        return "child-result"

    def parent():
        task = cpu.spawn(child)
        value = yield wait(task)
        results.append((value, engine.now))

    cpu.spawn(parent)
    engine.run()
    assert results == [("child-result", 100)]


def test_join_already_finished_task(engine, cpu):
    results = []

    def child():
        yield charge(1)
        return "early"

    child_task = cpu.spawn(child)

    def parent():
        yield sleep(1000)
        value = yield wait(child_task)
        results.append(value)

    cpu.spawn(parent)
    engine.run()
    assert results == ["early"]


def test_task_exception_propagates_to_run(engine, cpu):
    def body():
        yield charge(1)
        raise ValueError("boom")

    task = cpu.spawn(body)
    with pytest.raises(ValueError, match="boom"):
        engine.run()
    assert task.state is TaskState.FAILED
    assert isinstance(task.exception, ValueError)


def test_spawn_rejects_non_generator(engine, cpu):
    with pytest.raises(SimulationError, match="generator"):
        cpu.spawn(lambda: 42)


def test_kill_blocked_task(engine, cpu):
    sem = Semaphore(0)

    def body():
        yield wait(sem)

    task = cpu.spawn(body)
    engine.run()
    assert task.state is TaskState.BLOCKED
    task.kill()
    assert task.state is TaskState.KILLED
    # Releasing afterwards must not wake the corpse.
    sem.release()
    engine.run()
    assert task.state is TaskState.KILLED


def test_switch_cost_charged_between_tasks(engine):
    cpu = CPU(engine, switch_cost=50)
    order = []

    def worker(label):
        order.append((label, engine.now))
        yield charge(100)

    cpu.spawn(worker("a"))
    cpu.spawn(worker("b"))
    engine.run()
    # a starts after one switch (50), b after a's charge plus another switch.
    assert order == [("a", 50), ("b", 200)]


def test_no_switch_cost_when_resuming_same_task(engine):
    cpu = CPU(engine, switch_cost=50)

    def body():
        yield charge(100)
        yield charge(100)

    cpu.spawn(body)
    engine.run()
    assert engine.now == 250  # one switch + two charges


def test_busy_time_accounting(engine, cpu):
    def body():
        yield charge(300)
        yield sleep(1000)
        yield charge(200)

    cpu.spawn(body)
    engine.run()
    assert cpu.busy_time == 500


def test_daemon_flag_and_live_tasks(engine, cpu):
    sem = Semaphore(0)

    def poller():
        while True:
            yield wait(sem)

    def main():
        yield charge(10)

    daemon_task = cpu.spawn(poller, daemon=True)
    cpu.spawn(main)
    engine.run()
    assert daemon_task in cpu.live_tasks()
    assert cpu.blocked_nondaemon_tasks() == []


def test_nested_generators_with_yield_from(engine, cpu):
    trace = []

    def helper():
        yield charge(10)
        trace.append(("helper", engine.now))
        return "inner"

    def body():
        value = yield from helper()
        trace.append((value, engine.now))

    cpu.spawn(body)
    engine.run()
    assert trace == [("helper", 10), ("inner", 10)]


def test_two_cpus_run_concurrently(engine):
    cpu_a = CPU(engine, name="a")
    cpu_b = CPU(engine, name="b")
    order = []

    def worker(label):
        yield charge(100)
        order.append((label, engine.now))

    cpu_a.spawn(worker("a"))
    cpu_b.spawn(worker("b"))
    engine.run()
    # Both finish at t=100: they do not contend with each other.
    assert sorted(order) == [("a", 100), ("b", 100)]


# ---------------------------------------------------------------------------
# Task shell recycling (the PR-8 free-list)
# ---------------------------------------------------------------------------

def _noop():
    return "ok"
    yield  # pragma: no cover - generator marker


def test_recyclable_shell_is_pooled_and_reused(engine, cpu):
    first = cpu.spawn(_noop, name="temp", recyclable=True)
    engine.run()
    assert first.state is TaskState.DONE
    cpu._compact_tasks()  # normally threshold-triggered
    assert first not in cpu.tasks()
    assert len(cpu._task_pool) == 1
    second = cpu.spawn(_noop, name="temp2", recyclable=True)
    assert second is first  # same shell, fresh identity
    assert second.state is TaskState.READY  # enqueued like a fresh spawn
    assert second.name == "temp2"
    assert not second.finished
    engine.run()
    assert second.result == "ok"


def test_non_recyclable_spawns_never_pool(engine, cpu):
    task = cpu.spawn(_noop, name="keep")
    engine.run()
    cpu._compact_tasks()
    assert task in cpu.tasks()  # stays on the roster for joins
    assert len(cpu._task_pool) == 0


def test_killed_recyclable_shell_is_never_pooled(engine, cpu):
    def victim():
        yield wait(Semaphore(0, name="never"))

    blocked = cpu.spawn(victim(), name="victim", recyclable=True)
    engine.run()
    blocked.kill()
    cpu._compact_tasks()
    assert len(cpu._task_pool) == 0, (
        "KILLED shells may linger in waiter deques; recycling one would "
        "allow a spurious wake of its next identity")


def test_compaction_triggers_at_threshold(engine, cpu):
    from repro.sim.cpu import _TASK_COMPACT_MIN

    for _ in range(_TASK_COMPACT_MIN):
        cpu.spawn(_noop, recyclable=True)
    engine.run()
    # The threshold-th finish compacted the roster automatically.
    assert cpu._finished_recyclable < _TASK_COMPACT_MIN
    assert len(cpu._task_pool) > 0
    assert all(not (t.finished and t.recyclable) for t in cpu.tasks())


def test_recycled_identity_charges_switch_cost(engine):
    cpu = CPU(engine, name="switchy", switch_cost=150)

    def worker():
        yield charge(100)

    task = cpu.spawn(worker(), recyclable=True)
    engine.run()
    cpu._compact_tasks()
    busy_before = cpu.busy_time
    again = cpu.spawn(worker(), recyclable=True)
    assert again is task
    engine.run()
    # A recycled shell is a *new* thread: it pays the context switch a
    # fresh Task object would (150) plus its own work (100).
    assert cpu.busy_time - busy_before == 250


def test_retire_pools_clears_and_disables(engine, cpu):
    fired = []
    cpu.on_retire_pools(lambda: fired.append(True))
    done = cpu.spawn(_noop, recyclable=True)
    engine.run()
    cpu._compact_tasks()
    assert len(cpu._task_pool) == 1
    cpu.retire_pools()
    assert fired == [True]
    assert cpu.pools_retired
    assert len(cpu._task_pool) == 0
    fresh = cpu.spawn(_noop, recyclable=True)
    assert fresh is not done
    assert not fresh.recyclable  # retired CPUs mint plain tasks only
