"""Differential fault testing for the structured collective families.

The PR-6 hierarchical (node-aware) and multi-lane collective algorithms
run their sub-collectives on hidden subcommunicators and temporary
threads — exactly the machinery most likely to misbehave when the
reliable transport is busy absorbing network faults underneath.  Each
test here runs the same collective program twice on the same cluster —
once clean, once under a PR-2 fault plan (probabilistic drops or a
transient link-down window; **no rank deaths**) — and requires the
MPI-level results to be identical: faults below MPI must be invisible
above it.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, EngineConfig, MPIWorld, NodeSpec
from repro.faults import FabricFaults, FaultPlan, LinkDown
from repro.mpi.reduce_ops import MAX, SUM
from repro.units import us

#: Fault plans exercised against every (family, fabric) combination.
PLANS = {
    "drops": lambda fabric: FaultPlan(
        fabrics={fabric: FabricFaults(drop_rate=0.03)}, seed=5),
    "linkdown": lambda fabric: FaultPlan(
        fabrics={fabric: FabricFaults(
            downs=(LinkDown(at=us(150), duration=us(400)),))}, seed=5),
}


def _hier_program(mpi):
    comm = mpi.comm_world
    me = comm.rank
    out = []
    total = yield from comm.allreduce(me + 1, SUM, algorithm="hier")
    out.append(("allreduce", total))
    value = yield from comm.bcast(("blob", 2) if me == 2 else None,
                                  root=2, algorithm="hier")
    out.append(("bcast", value))
    gathered = yield from comm.allgather(me * 3, algorithm="hier")
    out.append(("allgather", tuple(gathered)))
    peak = yield from comm.reduce(me, MAX, root=1, algorithm="hier")
    out.append(("reduce", peak))
    yield from comm.barrier(algorithm="hier")
    return tuple(out)


def _multilane_program(mpi):
    comm = mpi.comm_world
    me = comm.rank
    out = []
    data = np.arange(48, dtype=np.float64) * (me + 1)
    total = yield from comm.allreduce(data, SUM, algorithm="multilane")
    out.append(("allreduce", tuple(float(v) for v in total)))
    blob = (b"stripe" * 24) if me == 0 else None
    value = yield from comm.bcast(blob, root=0, algorithm="multilane")
    out.append(("bcast", value))
    blocks = yield from comm.allgather(bytes([65 + me]) * 7,
                                       algorithm="multilane")
    out.append(("allgather", tuple(blocks)))
    return tuple(out)


def _run(config_factory, program, fault_plan):
    config = config_factory()
    config.fault_plan = fault_plan
    config.reliable = True  # both runs use the same transport/paths
    world = MPIWorld(config, engine_config=EngineConfig(
        seed=2, checker=True))
    return world, world.run(program)


def _hier_config(networks):
    # Dual-rank SMP nodes: smp_plug inside, ch_mad across — the layering
    # the hierarchical family decomposes over.
    return lambda: ClusterConfig(nodes=[
        NodeSpec(f"smp{i}", networks=networks, processes=2)
        for i in range(3)])


def _multilane_config(rail):
    # Two rails of one protocol plus an escape fabric for failover.
    return lambda: ClusterConfig(nodes=[
        NodeSpec(f"n{i}", networks=(rail, f"{rail}#1", "tcp"))
        for i in range(4)])


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("networks,faulted", [
    (("sisci", "tcp"), "sisci"),
    (("bip", "tcp"), "bip"),
    (("sisci", "tcp"), "tcp"),
])
class TestHierDifferential:
    def test_results_identical_under_faults(self, plan_name, networks,
                                            faulted):
        factory = _hier_config(networks)
        _w, clean = _run(factory, _hier_program, None)
        world, faulty = _run(factory, _hier_program,
                             PLANS[plan_name](faulted))
        assert faulty == clean, (
            f"hier collectives changed results under {plan_name} on "
            f"{faulted}")
        assert list(world.engine.checker.violations) == []


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("rail", ["sisci", "bip"])
class TestMultilaneDifferential:
    def test_results_identical_under_faults(self, plan_name, rail):
        factory = _multilane_config(rail)
        _w, clean = _run(factory, _multilane_program, None)
        world, faulty = _run(factory, _multilane_program,
                             PLANS[plan_name](rail))
        assert faulty == clean, (
            f"multilane collectives changed results under {plan_name} "
            f"on {rail}")
        assert list(world.engine.checker.violations) == []
