"""Unit tests for the Marcel thread runtime and polling threads."""

import pytest

from repro.marcel import MarcelRuntime, PollingThread, PollMode, PollSource
from repro.sim import Engine, Mailbox, charge, sleep
from repro.units import us


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def runtime(engine):
    return MarcelRuntime(engine, name="proc0", switch_cost=0)


def test_spawn_and_join(engine, runtime):
    results = []

    def child():
        yield charge(100)
        return "done"

    def parent():
        task = runtime.spawn(child, name="child")
        value = yield from MarcelRuntime.join(task)
        results.append((value, engine.now))

    runtime.spawn(parent, name="parent")
    engine.run()
    assert results == [("done", 100)]


def test_thread_names_are_qualified(runtime):
    task = runtime.spawn((x for x in [charge(0)]), name="worker")
    assert task.name.startswith("proc0.worker#")


def test_temporary_threads_are_daemons(runtime):
    def body():
        yield charge(1)

    task = runtime.spawn_temporary(body, name="isend")
    assert task.daemon


def test_kill_daemons(engine, runtime):
    box = Mailbox()

    def poller():
        while True:
            yield from _consume(box)

    def _consume(mailbox):
        from repro.sim import wait
        yield wait(mailbox)

    runtime.spawn(poller, name="poll", daemon=True)
    engine.run()
    assert len(runtime.live_threads()) == 1
    assert runtime.kill_daemons() == 1
    assert runtime.live_threads() == []


class TestEventPolling:
    def test_items_handled_with_cost(self, engine, runtime):
        box = Mailbox()
        handled = []

        def handler(item):
            yield charge(us(2))
            handled.append((item, engine.now))

        source = PollSource("sci", PollMode.EVENT, box, poll_cost=us(1))
        thread = PollingThread(runtime, source, handler)
        box.post("m1")
        engine.run()
        # 1 us poll cost + 2 us handler.
        assert handled == [("m1", us(3))]
        assert thread.items_handled == 1
        thread.stop()

    def test_idle_event_poller_costs_nothing(self, engine, runtime):
        box = Mailbox()

        def handler(item):
            yield charge(us(1))

        PollingThread(runtime, PollSource("sci", PollMode.EVENT, box, poll_cost=us(1)), handler)
        engine.run()
        assert runtime.cpu.busy_time == 0

    def test_back_to_back_items_drain_in_order(self, engine, runtime):
        box = Mailbox()
        handled = []

        def handler(item):
            yield charge(us(1))
            handled.append(item)

        PollingThread(runtime, PollSource("bip", PollMode.EVENT, box, poll_cost=0), handler)
        for i in range(5):
            box.post(i)
        engine.run()
        assert handled == [0, 1, 2, 3, 4]


class TestPeriodicPolling:
    def test_idle_periodic_poller_burns_cpu(self, engine, runtime):
        box = Mailbox()

        def handler(item):
            yield charge(0)

        source = PollSource("tcp", PollMode.PERIODIC, box,
                            poll_cost=us(5), period=us(45))
        thread = PollingThread(runtime, source, handler)
        engine.run(until=us(499))
        # Each cycle is 5 us poll + 45 us sleep = 50 us -> 10 polls
        # (ticks at t=0, 50, ..., 450) before t=499.
        assert thread.polls == 10
        assert runtime.cpu.busy_time == us(50)
        thread.stop()

    def test_arrival_detected_at_next_poll_tick(self, engine, runtime):
        box = Mailbox()
        handled = []

        def handler(item):
            yield charge(0)
            handled.append((item, engine.now))

        source = PollSource("tcp", PollMode.PERIODIC, box,
                            poll_cost=us(5), period=us(95))
        thread = PollingThread(runtime, source, handler)
        # Post mid-sleep: poll ticks start at 0; cycle = poll(5)+sleep(95).
        engine.schedule(us(30), box.post, "pkt")
        engine.run(until=us(300))
        # Next tick begins at t=100, pays 5 us select, handles at 105.
        assert handled == [("pkt", us(105))]
        thread.stop()

    def test_periodic_source_requires_period(self):
        with pytest.raises(ValueError):
            PollSource("tcp", PollMode.PERIODIC, Mailbox(), poll_cost=1, period=0)


def test_periodic_poller_steals_cpu_from_worker(engine, runtime):
    """The Figure-9 mechanism in miniature: a periodic poller slows a
    compute-bound thread by its duty cycle."""
    box = Mailbox()

    def handler(item):
        yield charge(0)

    source = PollSource("tcp", PollMode.PERIODIC, box, poll_cost=us(10), period=us(90))
    PollingThread(runtime, source, handler)

    finish = []

    def worker():
        for _ in range(100):
            yield charge(us(10))
        finish.append(engine.now)

    runtime.spawn(worker, name="worker")
    engine.run(until=us(5000))
    # Pure compute is 1000 us; the poller steals ~10 us per 100 us cycle.
    assert finish, "worker did not finish"
    assert finish[0] > us(1000)
    assert finish[0] < us(1300)
