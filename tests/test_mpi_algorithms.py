"""Equivalence tests for the alternative collective algorithms.

The implementations live in the registry (:mod:`repro.mpi.coll`); the
old :mod:`repro.mpi.algorithms` free functions are removal errors, which
the last test pins.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.mpi import coll
from repro.mpi.reduce_ops import MAX, SUM, user_op
from tests.helpers import run_ranks

bcast_linear = coll.get("bcast", "linear").fn
bcast_binomial = coll.get("bcast", "binomial").fn
allreduce_recursive_doubling = coll.get("allreduce", "recursive_doubling").fn
allgather_bruck = coll.get("allgather", "bruck").fn

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("nranks", SIZES)
class TestBcastLinear:
    def test_matches_default(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            obj = "payload" if comm.rank == min(1, comm.size - 1) else None
            result = yield from bcast_linear(comm, obj,
                                             root=min(1, comm.size - 1))
            return result

        assert run_ranks(program, nranks=nranks) == ["payload"] * nranks


@pytest.mark.parametrize("nranks", SIZES)
class TestRecursiveDoubling:
    def test_sum_matches_reference(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from allreduce_recursive_doubling(
                comm, comm.rank + 1, SUM)
            return result

        expected = sum(range(1, nranks + 1))
        assert run_ranks(program, nranks=nranks) == [expected] * nranks

    def test_max(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from allreduce_recursive_doubling(
                comm, (comm.rank * 13) % 7, MAX)
            return result

        expected = max((r * 13) % 7 for r in range(nranks))
        assert run_ranks(program, nranks=nranks) == [expected] * nranks

    def test_noncommutative_falls_back(self, nranks):
        concat = user_op(lambda a, b: a + b, commutative=False)

        def program(mpi):
            comm = mpi.comm_world
            result = yield from allreduce_recursive_doubling(
                comm, [comm.rank], concat)
            return result

        expected = list(range(nranks))
        assert run_ranks(program, nranks=nranks) == [expected] * nranks


@pytest.mark.parametrize("nranks", SIZES)
class TestBruckAllgather:
    def test_matches_ring(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from allgather_bruck(comm, comm.rank * 11)
            return result

        expected = [r * 11 for r in range(nranks)]
        assert run_ranks(program, nranks=nranks) == [expected] * nranks


class TestAlgorithmCosts:
    def test_binomial_beats_linear_for_large_worlds(self):
        """On SCI with 8 ranks, the binomial tree must finish sooner."""
        def timed(algorithm):
            def program(mpi):
                from repro.sim.coroutines import now
                comm = mpi.comm_world
                obj = b"\x00" * 1 if comm.rank == 0 else None
                yield from comm.barrier()
                t0 = yield now()
                yield from algorithm(comm, obj, 0)
                yield from comm.barrier()
                t1 = yield now()
                return t1 - t0

            return max(run_ranks(program, nranks=8))

        linear_time = timed(bcast_linear)
        binomial_time = timed(bcast_binomial)
        assert binomial_time < linear_time

    @given(st.integers(2, 8), st.integers(0, 7))
    @settings(max_examples=10, deadline=None)
    def test_recursive_doubling_equivalence_property(self, nranks, seed):
        root_values = [(r * 7 + seed) % 11 for r in range(nranks)]

        def program(mpi):
            comm = mpi.comm_world
            mine = root_values[comm.rank]
            fast = yield from allreduce_recursive_doubling(comm, mine, SUM)
            slow = yield from comm.allreduce(mine, op=SUM)
            return fast == slow == sum(root_values)

        assert all(run_ranks(program, nranks=nranks))


class TestRemovedFreeFunctions:
    def test_legacy_module_functions_raise_with_replacement(self):
        from repro.mpi import algorithms as legacy

        for fn, hint in [
            (lambda: legacy.bcast_linear(None, "x"), "algorithm='linear'"),
            (lambda: legacy.bcast_binomial(None, "x"),
             "algorithm='binomial'"),
            (lambda: legacy.allreduce_recursive_doubling(None, 1, SUM),
             "algorithm='recursive_doubling'"),
            (lambda: legacy.allgather_bruck(None, 1), "algorithm='bruck'"),
        ]:
            with pytest.raises(ConfigurationError) as exc:
                fn()
            assert hint in str(exc.value)
            assert "repro.mpi.coll.get" in str(exc.value)
